"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so PEP
660 editable installs (which must build a wheel) fail.  Keeping a setup.py
lets ``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
