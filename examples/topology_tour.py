#!/usr/bin/env python3
"""A tour of the combinatorial-topology machinery behind the lower bounds.

Walks the objects of Section 4 on concrete instances:

1. the uninterpreted simplex of Figure 2's graph;
2. pseudospheres, Lemma 4.6 intersections, Lemma 4.7 connectivity measured
   by homology;
3. Lemma 4.8: the uninterpreted complex of ↑G *is* a pseudosphere;
4. Thm 4.12: (n-2)-connectivity of closed-above uninterpreted complexes;
5. shellability of Figure 4's complexes;
6. the one-round protocol complex of a model and the connectivity that
   makes k-set agreement impossible.

Run:  python examples/topology_tour.py
"""

from __future__ import annotations

from repro.analysis import render_complex, render_simplex
from repro.analysis.tables import figure4a_complex, figure4b_complex
from repro.graphs import figure2_graph, star, symmetric_closure
from repro.models import symmetric_closed_above
from repro.topology import (
    Pseudosphere,
    connectivity_of_closed_above,
    find_shelling_order,
    homological_connectivity,
    input_complex,
    one_round_protocol_complex,
    reduced_betti_numbers,
    uninterpreted_complex_of_closed_above,
    uninterpreted_simplex,
    verify_lemma_4_8,
)


def main() -> None:
    # 1 — Figure 2.
    g = figure2_graph()
    sigma = uninterpreted_simplex(g)
    print("1. Uninterpreted simplex of Fig 2's graph:")
    print(f"   {render_simplex(sigma)}\n")

    # 2 — pseudospheres.
    ps = Pseudosphere.uniform((0, 1, 2), ("a", "b"))
    complex_ = ps.to_complex()
    print("2. Pseudosphere φ(3 processes; {a,b}):")
    print(f"   facets={len(complex_)}, dim={complex_.dimension}")
    print(f"   reduced Betti numbers: {reduced_betti_numbers(complex_)}")
    print(
        f"   measured connectivity {homological_connectivity(complex_)} == "
        f"Lemma 4.7's n-2 = {ps.predicted_connectivity()}\n"
    )

    other = Pseudosphere({0: {"a"}, 1: {"a", "b"}, 2: {"a", "b"}})
    inter = ps.intersection(other)
    print("   Lemma 4.6 (symbolic intersection):")
    print(f"   {ps!r}\n   ∩ {other!r}\n   = {inter!r}\n")

    # 3 — Lemma 4.8.
    print(f"3. Lemma 4.8 machine-checked on Fig 2's graph: {verify_lemma_4_8(g)}\n")

    # 4 — Thm 4.12.
    generators = sorted(symmetric_closure([g]))
    measured = connectivity_of_closed_above(generators)
    print(
        f"4. Thm 4.12 on Sym(↑fig2): measured connectivity {measured} "
        f">= n-2 = {g.n - 2}"
    )
    complex_ = uninterpreted_complex_of_closed_above(generators)
    print(f"   {render_complex(complex_, max_facets=4)}\n")

    # 5 — Figure 4 shellability.
    order = find_shelling_order(figure4a_complex())
    print("5. Fig 4a shelling order:")
    for facet in order:
        print(f"   {render_simplex(facet)}")
    print(f"   Fig 4b shellable? {find_shelling_order(figure4b_complex()) is not None}\n")

    # 6 — a protocol complex and its obstruction.
    model = symmetric_closed_above([star(3, 0)])
    graphs = sorted(model.iter_graphs())
    inputs = input_complex(3, (0, 1, 2))
    protocol = one_round_protocol_complex(graphs, inputs)
    conn = homological_connectivity(protocol)
    print(
        "6. One-round protocol complex of Sym(↑star(3)) over Ψ(Π, {0,1,2}):"
    )
    print(f"   facets={len(protocol)}, connectivity={conn}")
    print(
        f"   {conn}-connected => {int(conn) + 1}-set agreement impossible "
        f"(Thm 6.13 with s=1: n-s = 2). The matching upper bound is "
        f"γ_eq = 3."
    )


if __name__ == "__main__":
    main()
