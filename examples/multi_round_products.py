#!/usr/bin/env python3
"""Multiple rounds: products, their pitfalls, and bound decay (Sec 6).

1. The Sec 6.1 counterexample: closure-above is not product-invariant —
   we exhibit a graph in ↑(C6 ⊗ C6) that no product of supergraphs of C6
   realises.
2. Bound decay: γ(C_n^r) shrinks with r (Thm 6.3), the covering sequences
   say when FloodMin reaches consensus (Thm 6.7), and the oblivious lower
   bounds (Thm 6.10) track from below.

Run:  python examples/multi_round_products.py
"""

from __future__ import annotations

from repro.agreement import FloodMin, KSetAgreement
from repro.analysis import render_table
from repro.bounds import (
    lower_bound_simple_multi_round,
    upper_bound_covering_sequence,
    upper_bound_simple_multi_round,
)
from repro.combinatorics import covering_sequence
from repro.graphs import cycle, graph_power
from repro.models import closure_product_gap, simple_closed_above
from repro.verification import verify_algorithm


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The product/closure gap on C6 (Sec 6.1).
    # ------------------------------------------------------------------
    c6 = cycle(6)
    witnesses = closure_product_gap(c6, c6, max_witnesses=3)
    squared = graph_power(c6, 2)
    print("Sec 6.1 — closure-above is not invariant under ⊗:")
    print(f"  C6 ⊗ C6 has proper edges {sorted(squared.proper_edges())}")
    for w in witnesses:
        extra = sorted(set(w.proper_edges()) - set(squared.proper_edges()))
        print(
            f"  adding just {extra} gives a graph in ↑(C6⊗C6) that NO "
            "product ↑C6 ⊗ ↑C6 realises"
        )
    print()

    # ------------------------------------------------------------------
    # 2. Bound decay for directed cycles.
    # ------------------------------------------------------------------
    rows = []
    for n in (5, 6, 7):
        g = cycle(n)
        for r in (1, 2, 3):
            upper = upper_bound_simple_multi_round(g, r)
            lower = lower_bound_simple_multi_round(g, r)
            rows.append([f"C{n}", r, lower.k, upper.k,
                         "tight" if upper.k == lower.k + 1 else "gap"])
    print("Thm 6.3 / 6.10 — γ(G^r) brackets per round count:")
    print(render_table(
        ["G", "r", "impossible k", "solvable k", "status"], rows
    ))
    print()

    # ------------------------------------------------------------------
    # 3. Covering sequences drive consensus (Thm 6.7), verified end-to-end.
    # ------------------------------------------------------------------
    g = cycle(5)
    seq = covering_sequence(g, 1)
    bound = upper_bound_covering_sequence(g, 1)
    print(f"covering sequence of C5 (i=1): {seq} -> consensus after "
          f"{bound.rounds} rounds")
    model = simple_closed_above(g)
    task = KSetAgreement(1, range(2))
    report = verify_algorithm(
        FloodMin(bound.rounds), model, task, superset_samples=3
    )
    print(f"FloodMin({bound.rounds}) solves consensus on ↑C5: "
          f"{'OK' if report.ok else 'FAIL'} "
          f"({report.executions} executions)")
    shorter = verify_algorithm(
        FloodMin(bound.rounds - 1), model, task, superset_samples=0,
        stop_at_first_failure=True,
    )
    print(f"FloodMin({bound.rounds - 1}) fails as predicted: "
          f"{'yes' if not shorter.ok else 'NO (unexpected)'}")


if __name__ == "__main__":
    main()
