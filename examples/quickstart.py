#!/usr/bin/env python3
"""Quickstart: bounds, algorithms and verification on one model.

We take the paper's Figure 1 (right) graph — a broadcaster plus a directed
triangle — build the symmetric closed-above model it generates, compute
every bound the paper provides, run the witnessing algorithms, and confirm
the lower bound by exhaustive search.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    FloodMin,
    KSetAgreement,
    bound_report,
    decide_one_round_solvability,
    verify_algorithm,
)
from repro.analysis import render_graph
from repro.graphs import figure1_second, symmetric_closure
from repro.models import symmetric_closed_above


def main() -> None:
    generator = figure1_second()
    print(render_graph(generator, "Figure 1 (right): wheel on 4 processes"))
    print()

    # ------------------------------------------------------------------
    # 1. The paper's bounds (Thms 3.4, 3.7, 5.4), straight from the graph.
    # ------------------------------------------------------------------
    sym = sorted(symmetric_closure([generator]))
    report = bound_report(sym)
    print(report.describe())
    print()

    # ------------------------------------------------------------------
    # 2. The upper bound is constructive: FloodMin really does it.
    # ------------------------------------------------------------------
    model = symmetric_closed_above([generator])
    k = report.best_upper.k
    task = KSetAgreement(k, range(k + 1))
    verification = verify_algorithm(
        FloodMin(rounds=1),
        model,
        task,
        superset_samples=5,
        rng=random.Random(0),
    )
    print(
        f"FloodMin achieves {k}-set agreement over "
        f"{verification.executions} adversarial executions: "
        f"{'OK' if verification.ok else 'FAILED'}"
    )

    # ------------------------------------------------------------------
    # 3. The lower bound is exact: no oblivious decision map can do k-1,
    #    already over the generator graphs alone.
    # ------------------------------------------------------------------
    search = decide_one_round_solvability(sym, k - 1)
    print(search.describe())
    print()
    print(
        f"=> {k}-set agreement is the exact one-round frontier of this "
        f"model (paper Sec 3.2: the covering bound beats γ_eq = 4)."
    )


if __name__ == "__main__":
    main()
