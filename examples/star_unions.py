#!/usr/bin/env python3
"""The paper's flagship tight family: symmetric unions of s stars (Thm 6.13).

For every (n, s) we compute γ_dist, the Thm 5.4 lower bound, the best upper
bound, confirm the closed forms n-s (impossible) / n-s+1 (solvable), and run
the FloodMin witness against random and minimal adversaries.  This sweeps
the whole tightness frontier of Sec 5's worked example.

Run:  python examples/star_unions.py [max_n]
"""

from __future__ import annotations

import random
import sys

from repro.agreement import FloodMin, KSetAgreement, random_trials
from repro.analysis import render_table
from repro.bounds import (
    best_upper_bound,
    lower_bound_general,
    lower_bound_star_unions,
)
from repro.combinatorics import (
    distributed_domination_number,
    max_covering_number,
)
from repro.graphs import symmetric_closure, union_of_stars
from repro.models import symmetric_closed_above


def sweep(max_n: int) -> tuple[list[str], list[list[object]]]:
    headers = [
        "n", "s",
        "γ_dist", "max-cov_1",
        "impossible k (Thm 5.4)", "closed form n-s",
        "solvable k (Thm 3.4)", "closed form n-s+1",
        "FloodMin trials",
    ]
    rows: list[list[object]] = []
    rng = random.Random(42)
    for n in range(3, max_n + 1):
        for s in range(1, n):
            sym = sorted(
                symmetric_closure([union_of_stars(n, tuple(range(s)))])
            )
            lower = lower_bound_general(sym)
            upper = best_upper_bound(sym)
            closed = lower_bound_star_unions(n, s)
            model = symmetric_closed_above(sym)
            task = KSetAgreement(upper.k, range(upper.k + 1))
            trials = random_trials(FloodMin(1), model, task, 25, rng)
            rows.append(
                [
                    n, s,
                    distributed_domination_number(sym),
                    max_covering_number(sym, 1),
                    lower.k, closed.k,
                    upper.k, n - s + 1,
                    "OK" if all(t.ok for t in trials) else "FAIL",
                ]
            )
    return headers, rows


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    headers, rows = sweep(max_n)
    print("Thm 6.13 — symmetric unions of s stars on n processes")
    print("(n-s)-set agreement impossible, (n-s+1)-set solvable: TIGHT\n")
    print(render_table(headers, rows))
    mismatches = [
        r for r in rows if r[4] != r[5] or r[6] != r[7] or r[8] != "OK"
    ]
    print()
    if mismatches:
        print(f"!! {len(mismatches)} row(s) deviate from the paper")
        raise SystemExit(1)
    print("All rows match the paper's closed forms.")


if __name__ == "__main__":
    main()
