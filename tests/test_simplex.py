"""Tests for colored simplexes (Def 4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import Simplex, stable_key


def simplexes(max_colors: int = 5):
    @st.composite
    def build(draw):
        colors = draw(
            st.lists(
                st.integers(0, max_colors - 1), unique=True, max_size=max_colors
            )
        )
        return Simplex((c, draw(st.sampled_from("abc"))) for c in colors)

    return build()


class TestConstruction:
    def test_dimension(self):
        assert Simplex.empty().dimension == -1
        assert Simplex([(0, "a")]).dimension == 0
        assert Simplex([(0, "a"), (1, "b")]).dimension == 1

    def test_chromatic_enforced(self):
        with pytest.raises(TopologyError):
            Simplex([(0, "a"), (0, "b")])

    def test_duplicate_vertices_collapse(self):
        s = Simplex([(0, "a"), (0, "a")])
        assert s.dimension == 0

    def test_accessors(self):
        s = Simplex([(0, "a"), (1, "b")])
        assert s.colors() == {0, 1}
        assert s.views() == {"a", "b"}
        assert s.view_of(1) == "b"
        assert s.has_color(0) and not s.has_color(2)

    def test_view_of_missing_raises(self):
        with pytest.raises(TopologyError):
            Simplex([(0, "a")]).view_of(9)


class TestFaces:
    def test_boundary_of_triangle(self):
        t = Simplex([(0, "a"), (1, "b"), (2, "c")])
        edges = list(t.boundary())
        assert len(edges) == 3
        assert all(e.dimension == 1 for e in edges)

    def test_all_faces_count(self):
        t = Simplex([(0, "a"), (1, "b"), (2, "c")])
        assert sum(1 for _ in t.faces()) == 8  # includes the empty simplex

    def test_faces_fixed_dimension(self):
        t = Simplex([(0, "a"), (1, "b"), (2, "c")])
        assert sum(1 for _ in t.faces(0)) == 3
        assert list(t.faces(5)) == []

    def test_face_relation(self):
        t = Simplex([(0, "a"), (1, "b")])
        e = Simplex([(0, "a")])
        assert e.is_face_of(t)
        assert e <= t
        assert not t.is_face_of(e)

    def test_intersection_union(self):
        a = Simplex([(0, "a"), (1, "b")])
        b = Simplex([(1, "b"), (2, "c")])
        assert a.intersection(b) == Simplex([(1, "b")])
        assert a.union(b).dimension == 2

    def test_union_conflict_rejected(self):
        a = Simplex([(0, "a")])
        b = Simplex([(0, "b")])
        with pytest.raises(TopologyError):
            a.union(b)

    def test_without_color(self):
        t = Simplex([(0, "a"), (1, "b")])
        assert t.without_color(0) == Simplex([(1, "b")])


class TestStableKey:
    def test_orders_nested_frozensets(self):
        views = [frozenset({1, 2}), frozenset({0}), frozenset()]
        assert sorted(views, key=stable_key) == [
            frozenset(),
            frozenset({0}),
            frozenset({1, 2}),
        ]

    def test_mixed_types_do_not_crash(self):
        items = [1, "a", (2, 3), frozenset({4})]
        sorted(items, key=stable_key)  # must not raise

    @given(simplexes())
    def test_iteration_is_sorted(self, s):
        listed = list(s)
        assert listed == sorted(listed, key=stable_key)

    @given(simplexes(), simplexes())
    def test_equality_and_hash(self, a, b):
        if a.vertices == b.vertices:
            assert a == b and hash(a) == hash(b)
