"""Tests for views (Def 2.5) and the k-set agreement task."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement import (
    KSetAgreement,
    flatten_view,
    full_information_round,
    initial_full_view,
    initial_oblivious_view,
    oblivious_round,
    run_full_information,
    run_oblivious,
)
from repro.errors import AlgorithmError
from repro.graphs import complete_graph, cycle, star
from tests.test_digraph import random_digraphs


class TestFullInformation:
    def test_one_round_views(self):
        g = star(3, 0)
        views = run_full_information({0: "a", 1: "b", 2: "c"}, [g])
        # Leaf 1 hears the centre and itself.
        assert views[1] == frozenset({(0, "a"), (1, "b")})

    def test_nesting_grows(self):
        g = complete_graph(2)
        views = run_full_information({0: 0, 1: 1}, [g, g])
        inner = views[0]
        assert isinstance(inner, frozenset)
        assert all(isinstance(sub, frozenset) for _, sub in inner)

    def test_needs_rounds(self):
        with pytest.raises(AlgorithmError):
            run_full_information({0: 1}, [])

    def test_input_coverage_checked(self):
        with pytest.raises(AlgorithmError):
            run_full_information({0: 1}, [complete_graph(2)])

    def test_round_size_mismatch(self):
        with pytest.raises(AlgorithmError):
            full_information_round([1, 2], complete_graph(3))

    def test_initial_full_view_is_raw(self):
        assert initial_full_view(2, "payload") == "payload"


class TestFlatten:
    def test_flatten_one_round(self):
        g = star(3, 0)
        views = run_full_information({0: "a", 1: "b", 2: "c"}, [g])
        assert flatten_view(views[2]) == frozenset({(0, "a"), (2, "c")})

    def test_flatten_rejects_raw_value(self):
        with pytest.raises(AlgorithmError):
            flatten_view("raw")

    @given(random_digraphs(4), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_flat_commutes_with_rounds(self, g, rounds):
        """Def 2.5's key property: flattening a full-information view gives
        exactly the oblivious propagation of (process, value) pairs."""
        inputs = {p: p * 10 for p in range(g.n)}
        graphs = [g] * rounds
        full = run_full_information(inputs, graphs)
        oblivious = run_oblivious(inputs, graphs)
        for p in range(g.n):
            assert flatten_view(full[p]) == oblivious[p]


class TestObliviousPropagation:
    def test_initial(self):
        assert initial_oblivious_view(1, "x") == frozenset({(1, "x")})

    def test_round_unions_in_neighbors(self):
        g = cycle(3)
        views = run_oblivious({0: "a", 1: "b", 2: "c"}, [g])
        assert views[1] == frozenset({(0, "a"), (1, "b")})

    def test_knowledge_monotone_over_rounds(self):
        g = cycle(4)
        inputs = {p: p for p in range(4)}
        one = run_oblivious(inputs, [g])
        two = run_oblivious(inputs, [g, g])
        for p in range(4):
            assert one[p] <= two[p]

    def test_mismatched_round_graph(self):
        with pytest.raises(AlgorithmError):
            run_oblivious({0: 1, 1: 2}, [complete_graph(2), complete_graph(3)])

    def test_size_mismatch(self):
        with pytest.raises(AlgorithmError):
            oblivious_round([frozenset()], complete_graph(2))


class TestKSetAgreementTask:
    def test_check_passing(self):
        task = KSetAgreement(2, (0, 1, 2))
        outcome = task.check({0: 0, 1: 1, 2: 2}, {0: 0, 1: 0, 2: 1})
        assert outcome.ok
        assert outcome.distinct_count == 2

    def test_agreement_violation(self):
        task = KSetAgreement(1, (0, 1))
        outcome = task.check({0: 0, 1: 1}, {0: 0, 1: 1})
        assert not outcome.agreement
        assert not outcome.ok

    def test_validity_violation(self):
        task = KSetAgreement(2, (0, 1, 9))
        outcome = task.check({0: 0, 1: 1}, {0: 9, 1: 0})
        assert not outcome.valid

    def test_decision_coverage_checked(self):
        task = KSetAgreement(1, (0, 1))
        with pytest.raises(AlgorithmError):
            task.check({0: 0, 1: 1}, {0: 0})

    def test_parameter_validation(self):
        with pytest.raises(AlgorithmError):
            KSetAgreement(0, (0, 1))
        with pytest.raises(AlgorithmError):
            KSetAgreement(1, ())
        with pytest.raises(AlgorithmError):
            KSetAgreement(1, (0, 0))

    def test_interesting_inputs(self):
        task = KSetAgreement(2, (0, 1, 2))
        assert task.interesting_inputs(3)
        assert not task.interesting_inputs(2)
        assert not KSetAgreement(3, (0, 1)).interesting_inputs(5)

    def test_values_sorted(self):
        task = KSetAgreement(1, (3, 1, 2))
        assert task.values == (1, 2, 3)
