"""Tests for pseudospheres (Def 4.5, Lemmas 4.6, 4.7)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    Pseudosphere,
    homological_connectivity,
    predicted_connectivity,
    pseudosphere_complex,
    reduced_betti_numbers,
)


class TestConstruction:
    def test_empty_processes_rejected(self):
        with pytest.raises(TopologyError):
            Pseudosphere({})

    def test_uniform(self):
        ps = Pseudosphere.uniform((0, 1), ("a", "b"))
        assert ps.views_of(0) == frozenset({"a", "b"})
        assert ps.facet_count() == 4

    def test_unknown_process(self):
        ps = Pseudosphere({0: {"a"}})
        with pytest.raises(TopologyError):
            ps.views_of(9)

    def test_figure3b(self):
        """Fig 3b: P1, P2 with {v1, v2}, P3 with {v}."""
        ps = Pseudosphere(
            {"P1": {"v1", "v2"}, "P2": {"v1", "v2"}, "P3": {"v"}}
        )
        c = ps.to_complex()
        assert len(c) == 4
        assert c.dimension == 2
        # One component has a single view => cone => contractible.
        assert ps.predicted_connectivity() == math.inf
        assert homological_connectivity(c) == math.inf

    def test_void(self):
        ps = Pseudosphere({0: set(), 1: set()})
        assert ps.is_void()
        assert ps.facet_count() == 0
        assert ps.to_complex().is_empty()
        assert ps.predicted_connectivity() == -2

    def test_mixed_empty_component_drops_process(self):
        ps = Pseudosphere({0: {"a", "b"}, 1: set()})
        c = ps.to_complex()
        assert c.dimension == 0
        assert len(c.vertices) == 2


class TestLemma46Intersection:
    def test_componentwise(self):
        a = Pseudosphere({0: {"a", "b"}, 1: {"x", "y"}})
        b = Pseudosphere({0: {"b", "c"}, 1: {"x"}})
        inter = a.intersection(b)
        assert inter.views_of(0) == frozenset({"b"})
        assert inter.views_of(1) == frozenset({"x"})

    def test_complexes_agree(self):
        """The symbolic Lemma 4.6 matches materialised intersection."""
        a = Pseudosphere({0: {"a", "b"}, 1: {"x", "y"}, 2: {"m", "n"}})
        b = Pseudosphere({0: {"b"}, 1: {"x", "y"}, 2: {"n", "o"}})
        assert (
            a.intersection(b).to_complex()
            == a.to_complex().intersection(b.to_complex())
        )

    def test_mismatched_processes_rejected(self):
        a = Pseudosphere({0: {"a"}})
        b = Pseudosphere({1: {"a"}})
        with pytest.raises(TopologyError):
            a.intersection(b)


class TestLemma47Connectivity:
    @pytest.mark.parametrize("n,v", [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2)])
    def test_measured_matches_prediction(self, n, v):
        """φ(n processes, v ≥ 2 views) is exactly (n-2)-connected: it is a
        join of n discrete sets, a wedge of (n-1)-spheres."""
        ps = Pseudosphere.uniform(tuple(range(n)), tuple(range(v)))
        c = ps.to_complex()
        assert ps.predicted_connectivity() == n - 2
        assert homological_connectivity(c) == n - 2
        # Top reduced Betti number of a join of discrete sets: prod(|Vi|-1).
        betti = reduced_betti_numbers(c)
        assert betti[-1] == (v - 1) ** n

    def test_helper_function(self):
        assert predicted_connectivity([{1, 2}, {1, 2}, {1, 2}]) == 1
        assert predicted_connectivity([set(), set()]) == -2

    @given(
        st.lists(
            st.sets(st.integers(0, 3), min_size=2, max_size=3),
            min_size=2,
            max_size=3,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_lemma_holds_on_random_pseudospheres(self, view_sets):
        ps = Pseudosphere({i: vs for i, vs in enumerate(view_sets)})
        c = ps.to_complex()
        assert homological_connectivity(c) >= ps.predicted_connectivity()


class TestHelpers:
    def test_pseudosphere_complex_length_mismatch(self):
        with pytest.raises(TopologyError):
            pseudosphere_complex((0, 1), [{1}])

    def test_equality_and_repr(self):
        a = Pseudosphere({0: {"a"}})
        b = Pseudosphere({0: {"a"}})
        assert a == b
        assert hash(a) == hash(b)
        assert "Pseudosphere" in repr(a)
