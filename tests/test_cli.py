"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestBounds:
    def test_wheel_symmetric(self, capsys):
        assert main(["bounds", "--family", "wheel", "--n", "4", "--symmetric"]) == 0
        out = capsys.readouterr().out
        assert "TIGHT" in out
        assert "solvable at k=3" in out

    def test_union_of_stars_with_centers(self, capsys):
        code = main(
            [
                "bounds", "--family", "union_of_stars", "--n", "5",
                "--centers", "0,1", "--symmetric",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "impossible at k=3" in out

    def test_multi_round(self, capsys):
        assert main(["bounds", "--family", "cycle", "--n", "6", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 round(s)" in out

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["bounds", "--family", "nonsense", "--n", "3"])


class TestSearch:
    def test_unsat_exit_code(self, capsys):
        code = main(["search", "--family", "cycle", "--n", "4", "--k", "1"])
        assert code == 1
        assert "IMPOSSIBLE" in capsys.readouterr().out

    def test_sat_with_note(self, capsys):
        code = main(["search", "--family", "cycle", "--n", "4", "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "solvable" in out
        assert "not disproved" in out

    def test_full_model(self, capsys):
        code = main(
            ["search", "--family", "cycle", "--n", "3", "--k", "2", "--full"]
        )
        assert code == 0
        assert "full model" in capsys.readouterr().out


class TestVerify:
    def test_passing(self, capsys):
        code = main(
            [
                "verify", "--family", "cycle", "--n", "4", "--k", "3",
                "--symmetric", "--samples", "1",
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_failing_prints_counterexample(self, capsys):
        code = main(
            [
                "verify", "--family", "cycle", "--n", "4", "--k", "1",
                "--samples", "0",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "counterexample" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "E2"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out and "p1" in out

    def test_table_footer_reports_cache_counts(self, capsys):
        assert main(["experiments", "E2"]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "misses" in out

    @staticmethod
    def _table_bodies(out: str) -> list[str]:
        """Table rows only — timings and cache footers legitimately vary."""
        return [
            line
            for line in out.splitlines()
            if line and not line.startswith(("##", "```", "[cache:", "ran "))
        ]

    def test_parallel_jobs_match_serial(self, capsys):
        assert main(["experiments", "E2", "E13"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiments", "E2", "E13", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert self._table_bodies(parallel) == self._table_bodies(serial)
        assert "2 workers" in parallel

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiments", "E99"])


class TestCacheStats:
    def test_probe_prints_speedup_and_kernels(self, capsys):
        assert main(["cache-stats", "--n", "4", "--passes", "2"]) == 0
        out = capsys.readouterr().out
        assert "pass 1 (cold)" in out
        assert "warm speedup" in out
        assert "kernel cache:" in out
        assert "domination_number" in out
