"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

import repro.store as store_pkg
from repro.__main__ import main
from repro.engine import KERNEL_CACHE


@pytest.fixture
def tmp_store(tmp_path):
    """A writable temp store for store/sweep CLI tests, restored after."""
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "cli.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


class TestBounds:
    def test_wheel_symmetric(self, capsys):
        assert main(["bounds", "--family", "wheel", "--n", "4", "--symmetric"]) == 0
        out = capsys.readouterr().out
        assert "TIGHT" in out
        assert "solvable at k=3" in out

    def test_union_of_stars_with_centers(self, capsys):
        code = main(
            [
                "bounds", "--family", "union_of_stars", "--n", "5",
                "--centers", "0,1", "--symmetric",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "impossible at k=3" in out

    def test_multi_round(self, capsys):
        assert main(["bounds", "--family", "cycle", "--n", "6", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 round(s)" in out

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["bounds", "--family", "nonsense", "--n", "3"])


class TestSearch:
    def test_unsat_exit_code(self, capsys):
        code = main(["search", "--family", "cycle", "--n", "4", "--k", "1"])
        assert code == 1
        assert "IMPOSSIBLE" in capsys.readouterr().out

    def test_sat_with_note(self, capsys):
        code = main(["search", "--family", "cycle", "--n", "4", "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "solvable" in out
        assert "not disproved" in out

    def test_full_model(self, capsys):
        code = main(
            ["search", "--family", "cycle", "--n", "3", "--k", "2", "--full"]
        )
        assert code == 0
        assert "full model" in capsys.readouterr().out


class TestVerify:
    def test_passing(self, capsys):
        code = main(
            [
                "verify", "--family", "cycle", "--n", "4", "--k", "3",
                "--symmetric", "--samples", "1",
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_failing_prints_counterexample(self, capsys):
        code = main(
            [
                "verify", "--family", "cycle", "--n", "4", "--k", "1",
                "--samples", "0",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "counterexample" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "E2"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out and "p1" in out

    def test_table_footer_reports_cache_counts(self, capsys):
        assert main(["experiments", "E2"]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "misses" in out

    @staticmethod
    def _table_bodies(out: str) -> list[str]:
        """Table rows only — timings, cache footers, and the pool/dist
        per-worker throughput footer legitimately vary."""
        return [
            line
            for line in out.splitlines()
            if line
            and not line.startswith(
                ("##", "```", "[cache:", "ran ", "dist:", "  worker ")
            )
        ]

    def test_parallel_jobs_match_serial(self, capsys):
        assert main(["experiments", "E2", "E13"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiments", "E2", "E13", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert self._table_bodies(parallel) == self._table_bodies(serial)
        assert "2 workers" in parallel

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiments", "E99"])


class TestCacheStats:
    def test_probe_prints_speedup_and_kernels(self, capsys):
        assert main(["cache-stats", "--n", "4", "--passes", "2"]) == 0
        out = capsys.readouterr().out
        assert "pass 1 (cold)" in out
        assert "warm speedup" in out
        assert "kernel cache:" in out
        assert "domination_number" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["cache-stats", "--n", "4", "--passes", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["speedup"] > 0
        assert len(payload["pass_times"]) == 2
        kernels = {row["kernel"] for row in payload["cache"]["by_kernel"]}
        assert "domination_number" in kernels


class TestSweep:
    def test_limited_sweep_prints_table(self, capsys, tmp_store):
        assert main(["sweep", "--n", "3", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "exact solvable k" in out
        assert "2/16 isomorphism classes" in out

    def test_sweep_json_reports_resume_counts(self, capsys, tmp_store):
        assert main(["sweep", "--n", "3", "--limit", "2", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["sharded"] == 2 and first["resumed"] == 0
        KERNEL_CACHE.clear()
        store_pkg.configure()  # fresh instance, same file: new process
        assert main(["sweep", "--n", "3", "--limit", "2", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["resumed"] == 2
        assert second["rows"] == first["rows"]
        assert second["store"]["hits"] >= 2

    def test_rejects_non_positive_jobs(self, tmp_store):
        with pytest.raises(SystemExit):
            main(["sweep", "--n", "3", "--jobs", "0"])

    def test_rejects_non_positive_split_threshold(self, tmp_store):
        with pytest.raises(SystemExit):
            main(["sweep", "--n", "3", "--split-threshold", "0"])

    def test_subshard_json_reports_split_decisions(self, capsys, tmp_store):
        code = main(
            ["sweep", "--n", "3", "--limit", "2", "--json",
             "--split-threshold", "1"]
        )
        assert code == 0
        split = json.loads(capsys.readouterr().out)
        assert split["split_threshold"] == 1
        assert split["subshard"] is True
        assert split["splits"] == 2
        assert split["subshards"] == 8  # bounds + k=1..3, per class
        assert len(split["classes"]) == 2
        for cls in split["classes"]:
            assert cls["split"] is True and cls["subshards"] == 4
            assert cls["elapsed"] >= 0
        # The monolithic reference (--subshard off) agrees row for row.
        KERNEL_CACHE.clear()
        store_pkg.configure()  # fresh instance, same file: new process
        assert main(
            ["sweep", "--n", "3", "--limit", "2", "--json",
             "--subshard", "off"]
        ) == 0
        mono = json.loads(capsys.readouterr().out)
        assert mono["rows"] == split["rows"]
        assert mono["splits"] == 0 and mono["subshards"] == 0
        # The split run banked the merged verdicts: the monolithic
        # rerun resumed every class without a CSP search.
        assert mono["resumed"] == 2

    def test_sweep_text_mentions_splits(self, capsys, tmp_store):
        assert main(
            ["sweep", "--n", "3", "--limit", "2", "--split-threshold", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 class(es) split into 8 sub-shards" in out


class TestStoreCLI:
    def test_stats_on_missing_file_is_empty(self, capsys, tmp_path):
        path = str(tmp_path / "absent.sqlite")
        try:
            assert main(["store", "stats", "--path", path, "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["db"]["entries"] == 0
            assert payload["db"]["exists"] is False
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")

    def test_probe_then_stats_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "probe.sqlite")
        try:
            code = main(
                ["store", "probe", "--path", path, "--n", "4", "--json"]
            )
            assert code == 0
            probe = json.loads(capsys.readouterr().out)
            assert probe["store"]["writes"] > 0
            assert probe["store"]["hits"] > 0
            assert main(["store", "stats", "--path", path, "--json"]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["db"]["entries"] > 0
            kernels = {row["kernel"] for row in stats["db"]["kernels"]}
            assert "domination_number" in kernels
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
            KERNEL_CACHE.clear()

    def test_vacuum_clear_export_integrity(self, capsys, tmp_path):
        path = str(tmp_path / "mgmt.sqlite")
        out_path = str(tmp_path / "backup.sqlite")
        try:
            main(["store", "probe", "--path", path, "--n", "4"])
            capsys.readouterr()
            assert main(["store", "integrity", "--path", path]) == 0
            assert "OK" in capsys.readouterr().out
            assert main(["store", "vacuum", "--path", path]) == 0
            assert "vacuum:" in capsys.readouterr().out
            assert main(
                ["store", "export", "--path", path, "--out", out_path]
            ) == 0
            assert "copied" in capsys.readouterr().out
            assert main(["store", "clear", "--path", path]) == 0
            assert "removed" in capsys.readouterr().out
            assert main(["store", "stats", "--path", path, "--json"]) == 0
            assert json.loads(capsys.readouterr().out)["db"]["entries"] == 0
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
            KERNEL_CACHE.clear()

    def test_export_requires_out(self, tmp_path):
        from repro.store import ResultStore

        path = tmp_path / "x.sqlite"
        seed = ResultStore(path, mode="rw")
        seed.save("k", "1", "a", 1)
        seed.close()
        try:
            with pytest.raises(SystemExit, match="--out"):
                main(["store", "export", "--path", str(path)])
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")

    def test_export_refuses_missing_file(self, tmp_path):
        missing = tmp_path / "absent.sqlite"
        try:
            with pytest.raises(SystemExit, match="no store file"):
                main(["store", "export", "--path", str(missing), "--out",
                      str(tmp_path / "o.sqlite")])
            assert not missing.exists()
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
