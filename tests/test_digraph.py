"""Unit and property tests for repro.graphs.digraph."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bitops import full_mask, mask_of, popcount
from repro.errors import GraphError, ProcessMismatchError
from repro.graphs import Digraph


def random_digraphs(max_n: int = 5):
    """Hypothesis strategy for digraphs with arbitrary proper edges."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_n))
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=n * n,
            )
        )
        return Digraph.from_edges(n, edges)

    return build()


class TestConstruction:
    def test_self_loops_forced(self):
        g = Digraph(3, [0, 0, 0])
        assert all(g.has_edge(p, p) for p in range(3))

    def test_from_edges(self):
        g = Digraph.from_edges(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_zero_processes_rejected(self):
        with pytest.raises(GraphError):
            Digraph(0, [])

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(GraphError):
            Digraph(3, [0, 0])

    def test_row_out_of_universe_rejected(self):
        with pytest.raises(GraphError):
            Digraph(2, [0b100, 0])

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Digraph.from_edges(2, [(0, 2)])

    def test_empty_and_complete(self):
        e = Digraph.empty(3)
        c = Digraph.complete(3)
        assert e.proper_edge_count == 0
        assert c.proper_edge_count == 6
        assert e.is_subgraph_of(c)


class TestAccessors:
    def test_in_out_duality(self):
        g = Digraph.from_edges(3, [(0, 1), (2, 1)])
        assert g.in_neighbors(1) == (0, 1, 2)
        assert g.out_neighbors(0) == (0, 1)

    def test_edges_include_loops(self):
        g = Digraph.empty(2)
        assert sorted(g.edges()) == [(0, 0), (1, 1)]
        assert list(g.proper_edges()) == []

    def test_edge_count(self):
        g = Digraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.edge_count == 5
        assert g.proper_edge_count == 2

    def test_out_of_set_contains_members(self):
        g = Digraph.from_edges(4, [(0, 1)])
        members = mask_of([0, 2])
        assert g.out_of_set(members) & members == members

    def test_dominates(self):
        g = Digraph.from_edges(3, [(0, 1), (0, 2)])
        assert g.dominates(mask_of([0]))
        assert not g.dominates(mask_of([1]))


class TestDerived:
    def test_with_without_edges(self):
        g = Digraph.empty(3)
        h = g.with_edges([(0, 1)])
        assert h.has_edge(0, 1)
        assert h.without_edges([(0, 1)]) == g

    def test_without_edges_keeps_loops(self):
        g = Digraph.empty(2)
        assert g.without_edges([(0, 0)]) == g

    def test_reverse_involution(self):
        g = Digraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.reverse().reverse() == g

    def test_permute_identity(self):
        g = Digraph.from_edges(3, [(0, 1)])
        assert g.permute([0, 1, 2]) == g

    def test_permute_moves_edges(self):
        g = Digraph.from_edges(3, [(0, 1)])
        h = g.permute([1, 2, 0])
        assert h.has_edge(1, 2)

    def test_permute_rejects_non_permutation(self):
        g = Digraph.empty(3)
        with pytest.raises(GraphError):
            g.permute([0, 0, 1])

    def test_subgraph_mismatch_rejected(self):
        with pytest.raises(ProcessMismatchError):
            Digraph.empty(2).is_subgraph_of(Digraph.empty(3))


class TestInterop:
    def test_networkx_roundtrip(self):
        g = Digraph.from_edges(4, [(0, 1), (2, 3), (3, 0)])
        assert Digraph.from_networkx(g.to_networkx()) == g

    def test_from_networkx_bad_nodes(self):
        import networkx as nx

        h = nx.DiGraph()
        h.add_node(5)
        with pytest.raises(GraphError):
            Digraph.from_networkx(h)


class TestPropertyBased:
    @given(random_digraphs())
    def test_in_out_consistency(self, g):
        for u in g.processes():
            for v in g.processes():
                assert g.has_edge(u, v) == bool(g.in_mask(v) >> u & 1)

    @given(random_digraphs())
    def test_edge_count_is_sum_of_degrees(self, g):
        assert g.edge_count == sum(popcount(g.in_mask(v)) for v in g.processes())

    @given(random_digraphs())
    def test_reverse_preserves_edge_count(self, g):
        assert g.reverse().edge_count == g.edge_count

    @given(random_digraphs())
    def test_full_set_always_dominates(self, g):
        assert g.dominates(full_mask(g.n))

    @given(random_digraphs())
    def test_hash_equals_on_equal(self, g):
        h = Digraph(g.n, g.out_rows)
        assert g == h
        assert hash(g) == hash(h)
