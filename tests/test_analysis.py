"""Tests for the analysis package: renderers and (fast) experiment tables."""

from __future__ import annotations

import pytest

from repro.analysis import (
    e01_figure1_table,
    e02_figure2_report,
    e04_shellability_table,
    e06_star_union_table,
    e07_product_closure_report,
    e13_lemma48_table,
    figure4a_complex,
    figure4b_complex,
    render_complex,
    render_graph,
    render_simplex,
    render_table,
)
from repro.graphs import figure2_graph, star
from repro.topology import Simplex, SimplicialComplex, uninterpreted_simplex


class TestRender:
    def test_render_graph(self):
        out = render_graph(star(3, 0), "star")
        assert "star:" in out
        assert "p1 -> [p2, p3]" in out

    def test_render_simplex_uninterpreted(self):
        sigma = uninterpreted_simplex(figure2_graph())
        out = render_simplex(sigma)
        assert "(p1, " in out and "(p3, " in out

    def test_render_simplex_interpreted_pairs(self):
        s = Simplex([(0, frozenset({(1, "x")}))])
        out = render_simplex(s)
        assert "p2=x" in out

    def test_render_complex_truncates(self):
        c = SimplicialComplex.from_simplices(
            Simplex([(i, "v")]) for i in range(20)
        )
        out = render_complex(c, max_facets=3)
        assert "more facets" in out

    def test_render_table_alignment(self):
        out = render_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2


class TestFigure4Complexes:
    def test_4a_shape(self):
        c = figure4a_complex()
        assert c.dimension == 2 and len(c) == 2 and c.is_pure()

    def test_4b_shape(self):
        c = figure4b_complex()
        assert c.dimension == 2 and len(c) == 2
        assert len(c.vertices) == 5


class TestFastTables:
    """The cheap experiment builders run in-tests; the heavy ones are
    exercised by their benchmarks."""

    def test_e01(self):
        headers, rows = e01_figure1_table()
        assert len(rows) == 2
        assert all(row[-1] for row in rows)  # both tight

    def test_e02(self):
        _, rows = e02_figure2_report()
        assert all(row[-1] for row in rows)

    def test_e04(self):
        _, rows = e04_shellability_table()
        assert all(row[-1] for row in rows)

    def test_e06_small(self):
        _, rows = e06_star_union_table([(4, 2), (5, 3)])
        assert all(row[-1] for row in rows)

    def test_e07(self):
        _, rows = e07_product_closure_report()
        values = {r[0]: r[1] for r in rows}
        assert values["gap witness found"] is True

    def test_e13(self):
        _, rows = e13_lemma48_table(samples=2)
        assert all(row[-1] for row in rows)
