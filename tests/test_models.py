"""Tests for communication models (Defs 2.1-2.4) and adversaries."""

from __future__ import annotations

import random

import pytest

from repro.errors import ModelError
from repro.graphs import (
    Digraph,
    complete_graph,
    cycle,
    has_nonempty_kernel,
    is_non_split,
    is_tournament,
    star,
    union_of_stars,
    wheel,
)
from repro.models import (
    ClosedAboveModel,
    ExplicitObliviousModel,
    FixedSequenceAdversary,
    MinimalGraphAdversary,
    NonSplitModel,
    RandomAdversary,
    TournamentModel,
    nonempty_kernel_model,
    simple_closed_above,
    symmetric_closed_above,
    tournament_closed_above,
)


class TestExplicitOblivious:
    def test_membership(self):
        m = ExplicitObliviousModel([cycle(3), complete_graph(3)])
        assert m.allows_graph(cycle(3))
        assert not m.allows_graph(star(3, 0))

    def test_round_independence(self):
        m = ExplicitObliviousModel([cycle(3)])
        assert m.allows(cycle(3), 0) and m.allows(cycle(3), 99)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            ExplicitObliviousModel([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ModelError):
            ExplicitObliviousModel([cycle(3), cycle(4)])

    def test_sampling(self, rng):
        m = ExplicitObliviousModel([cycle(3), complete_graph(3)])
        for _ in range(10):
            assert m.allows_graph(m.sample_graph(rng))

    def test_sample_execution(self, rng):
        m = ExplicitObliviousModel([cycle(3)])
        seq = m.sample_execution(5, rng)
        assert len(seq) == 5
        assert m.admits_sequence(seq)

    def test_negative_rounds_rejected(self, rng):
        m = ExplicitObliviousModel([cycle(3)])
        with pytest.raises(ModelError):
            m.sample_execution(-1, rng)


class TestClosedAbove:
    def test_simple(self, wheel4):
        m = simple_closed_above(wheel4)
        assert m.is_simple
        assert m.generator == wheel4
        assert m.allows_graph(wheel4)
        assert m.allows_graph(complete_graph(4))
        assert not m.allows_graph(Digraph.empty(4))

    def test_generators_normalised(self):
        g = cycle(4)
        bigger = g.with_edges([(0, 2)])
        m = ClosedAboveModel([g, bigger])
        assert m.generators == frozenset({g})
        assert m.is_simple

    def test_generator_property_guard(self):
        m = symmetric_closed_above([star(3, 0)])
        assert not m.is_simple
        with pytest.raises(ModelError):
            _ = m.generator

    def test_symmetric(self):
        m = symmetric_closed_above([star(4, 0)])
        assert m.is_symmetric()
        assert len(m.generators) == 4

    def test_symmetrized(self):
        m = simple_closed_above(star(4, 1))
        sym = m.symmetrized()
        assert sym.is_symmetric()
        assert m.generators < sym.generators

    def test_wrong_size_graph_not_allowed(self):
        m = simple_closed_above(cycle(3))
        assert not m.allows_graph(cycle(4))

    def test_sampling_stays_in_model(self, rng):
        m = symmetric_closed_above([cycle(4)])
        for _ in range(25):
            assert m.allows_graph(m.sample_graph(rng))

    def test_minimal_sampling(self, rng):
        m = symmetric_closed_above([cycle(4)])
        for _ in range(10):
            assert m.sample_minimal_graph(rng) in m.generators

    def test_iter_graphs_small(self):
        m = simple_closed_above(cycle(3))
        graphs = list(m.iter_graphs())
        assert len(graphs) == 8
        assert all(m.allows_graph(g) for g in graphs)


class TestHeardOf:
    def test_kernel_model_graphs_have_kernels(self, rng):
        m = nonempty_kernel_model(4)
        for _ in range(10):
            assert has_nonempty_kernel(m.sample_graph(rng))

    def test_kernel_model_membership(self):
        m = nonempty_kernel_model(4)
        assert m.allows_graph(star(4, 2))
        assert not m.allows_graph(cycle(4))

    def test_non_split_model(self, rng):
        m = NonSplitModel(4)
        assert m.allows_graph(star(4, 0))
        assert not m.allows_graph(Digraph.empty(4))
        for _ in range(5):
            assert is_non_split(m.sample_graph(rng))

    def test_tournament_model(self, rng):
        m = TournamentModel(4)
        assert m.allows_graph(cycle(3).with_edges([])) is False  # wrong n
        for _ in range(5):
            assert is_tournament(m.sample_graph(rng))

    def test_tournament_antichain_not_closed_above(self):
        m = TournamentModel(3)
        t = cycle(3)  # a 3-cycle is a tournament
        assert m.allows_graph(t)
        assert not m.allows_graph(complete_graph(3))

    def test_tournament_closed_above_relaxation(self):
        m = tournament_closed_above(3)
        assert m.allows_graph(cycle(3))
        assert m.allows_graph(complete_graph(3))

    def test_tournament_closed_above_validation(self):
        with pytest.raises(ModelError):
            tournament_closed_above(1)


class TestAdversaries:
    def test_fixed_sequence(self):
        adv = FixedSequenceAdversary([cycle(3), complete_graph(3)])
        assert adv.graph_for_round(0) == cycle(3)
        assert adv.graph_for_round(1) == complete_graph(3)
        assert adv.graph_for_round(7) == complete_graph(3)  # repeats last

    def test_fixed_sequence_validated_against_model(self):
        m = simple_closed_above(star(3, 0))
        with pytest.raises(ModelError):
            FixedSequenceAdversary([cycle(3)], model=m)

    def test_fixed_sequence_empty_rejected(self):
        with pytest.raises(ModelError):
            FixedSequenceAdversary([])

    def test_random_adversary(self, rng):
        m = symmetric_closed_above([star(3, 0)])
        adv = RandomAdversary(m, rng)
        for r in range(5):
            assert m.allows_graph(adv.graph_for_round(r))

    def test_minimal_adversary(self, rng):
        m = symmetric_closed_above([union_of_stars(4, (0, 1))])
        adv = MinimalGraphAdversary(m, rng)
        for r in range(5):
            assert adv.graph_for_round(r) in m.generators
