"""Tests for worst-case adversary analysis and colored solvability."""

from __future__ import annotations

import pytest

from repro.agreement import FloodMin, MinOfDominatingSet
from repro.errors import VerificationError
from repro.graphs import cycle, star, symmetric_closure, wheel
from repro.models import simple_closed_above, symmetric_closed_above
from repro.verification import (
    achieved_k,
    decide_one_round_solvability,
    decide_one_round_solvability_colored,
    worst_case_decisions,
)


class TestWorstCase:
    def test_floodmin_achieves_gamma_eq_exactly(self):
        """On Sym(↑C4): FloodMin's worst case is exactly γ_eq = 3 — the
        Thm 3.4 analysis is not conservative for this model."""
        model = symmetric_closed_above([cycle(4)])
        assert achieved_k(FloodMin(1), model) == 3

    def test_min_dominating_achieves_gamma(self):
        model = simple_closed_above(wheel(4))
        assert achieved_k(MinOfDominatingSet(wheel(4)), model) == 1

    def test_min_dominating_on_cycle(self):
        g = cycle(4)
        model = simple_closed_above(g)
        assert achieved_k(MinOfDominatingSet(g), model) == 2

    def test_witness_carried(self):
        model = symmetric_closed_above([cycle(4)])
        worst = worst_case_decisions(FloodMin(1), model, values=(0, 1, 2, 3))
        assert worst.distinct == 3
        assert len(set(worst.witness.decisions.values())) == 3
        assert "worst case" in worst.describe()

    def test_exhaustive_closure_option(self):
        model = simple_closed_above(cycle(3))
        worst = worst_case_decisions(
            FloodMin(1), model, values=(0, 1, 2), exhaustive_closure=True
        )
        assert worst.distinct == 2

    def test_superset_samples_never_reduce(self):
        model = symmetric_closed_above([cycle(4)])
        base = worst_case_decisions(FloodMin(1), model, values=(0, 1, 2, 3))
        sampled = worst_case_decisions(
            FloodMin(1), model, values=(0, 1, 2, 3), superset_samples=3
        )
        assert sampled.distinct >= base.distinct

    def test_validation(self):
        model = simple_closed_above(cycle(3))
        with pytest.raises(VerificationError):
            worst_case_decisions(FloodMin(1), model, values=())


class TestColoredSolvability:
    def test_generators_colored_strictly_stronger(self):
        """On the *generator subset* of Sym(star(3)) identity helps: the
        colored map can branch on "am I a centre?", the oblivious one
        cannot."""
        generators = sorted(symmetric_closure([star(3, 0)]))
        assert not decide_one_round_solvability(generators, 1).solvable
        assert decide_one_round_solvability_colored(generators, 1).solvable

    @pytest.mark.parametrize("k", [1, 2])
    def test_full_model_equivalence_star(self, k):
        """The paper's Sec 5 remark, machine-checked: over the *full*
        closed-above model, colored and oblivious one-round solvability
        coincide."""
        model = symmetric_closed_above([star(3, 0)])
        full = sorted(model.iter_graphs())
        oblivious = decide_one_round_solvability(full, k).solvable
        colored = decide_one_round_solvability_colored(full, k).solvable
        assert oblivious == colored

    @pytest.mark.parametrize("k", [1, 2])
    def test_full_model_equivalence_cycle(self, k):
        model = simple_closed_above(cycle(3))
        full = sorted(model.iter_graphs())
        oblivious = decide_one_round_solvability(full, k).solvable
        colored = decide_one_round_solvability_colored(full, k).solvable
        assert oblivious == colored

    def test_colored_validation(self):
        with pytest.raises(VerificationError):
            decide_one_round_solvability_colored([], 1)
        with pytest.raises(VerificationError):
            decide_one_round_solvability_colored([cycle(3)], 0)
        with pytest.raises(VerificationError):
            decide_one_round_solvability_colored([cycle(3)], 1, values=(1,))
        with pytest.raises(VerificationError):
            decide_one_round_solvability_colored([cycle(3), cycle(4)], 1)

    def test_colored_never_weaker(self):
        """Every oblivious map is a colored map: SAT(oblivious) ⟹
        SAT(colored), on arbitrary graph subsets."""
        for g in (cycle(3), wheel(4)):
            gens = sorted(symmetric_closure([g]))
            for k in (1, 2):
                if decide_one_round_solvability(gens, k).solvable:
                    assert decide_one_round_solvability_colored(
                        gens, k
                    ).solvable
