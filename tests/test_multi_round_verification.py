"""Tests for multi-round solvability, decision-map algorithms, tightness."""

from __future__ import annotations

import pytest

from repro.agreement import DecisionMapAlgorithm, KSetAgreement, execute
from repro.errors import AlgorithmError, VerificationError
from repro.graphs import complete_graph, cycle, graph_power, star, symmetric_closure
from repro.models import simple_closed_above, symmetric_closed_above
from repro.verification import (
    analyze_tightness,
    decide_multi_round_solvability,
    decide_one_round_solvability,
    exact_one_round_frontier,
)


class TestMultiRoundSolvability:
    def test_matches_one_round_at_r1(self):
        for g in (cycle(3), star(3, 0)):
            one = decide_one_round_solvability([g], 2)
            multi = decide_multi_round_solvability([g], 1, 2)
            assert one.solvable == multi.solvable

    def test_thm610_consensus_on_c4_two_rounds(self):
        """γ(C4²) = 2: consensus stays impossible after two rounds."""
        assert graph_power(cycle(4), 2).proper_edge_count == 8
        result = decide_multi_round_solvability([cycle(4)], 2, 1)
        assert not result.solvable
        assert result.rounds == 2
        assert "2 rounds" in result.describe()

    def test_two_set_on_c4_two_rounds_sat(self):
        """γ(C4²) = 2: 2-set agreement becomes solvable."""
        assert decide_multi_round_solvability([cycle(4)], 2, 2).solvable

    def test_consensus_eventually_solvable_on_fixed_cycle(self):
        """After n-1 rounds of C3 everyone heard everyone."""
        result = decide_multi_round_solvability([cycle(3)], 2, 1)
        assert result.solvable

    def test_star_model_multi_round_stuck(self):
        """Sym(stars, s=1, n=3): 2-set agreement impossible at r = 1 and 2
        over the full allowed set — Thm 6.13 is round-independent.

        The full model has 37 graphs; two rounds already cost 37² graph
        sequences, so this is the practical ceiling of the instrument.
        """
        model = symmetric_closed_above([star(3, 0)])
        full = sorted(model.iter_graphs())
        assert len(full) == 37
        assert not decide_multi_round_solvability(full, 1, 2).solvable
        assert not decide_multi_round_solvability(full, 2, 2).solvable

    def test_validation(self):
        with pytest.raises(VerificationError):
            decide_multi_round_solvability([], 1, 1)
        with pytest.raises(VerificationError):
            decide_multi_round_solvability([cycle(3)], 0, 1)
        with pytest.raises(VerificationError):
            decide_multi_round_solvability([cycle(3)], 1, 0)
        with pytest.raises(VerificationError):
            decide_multi_round_solvability([cycle(3), cycle(4)], 1, 1)
        with pytest.raises(VerificationError):
            decide_multi_round_solvability([cycle(3)], 1, 1, values=(7,))


class TestDecisionMapAlgorithm:
    def test_witness_map_replays(self):
        """SAT certificate -> runnable algorithm -> verified execution."""
        graphs = sorted(symmetric_closure([cycle(3)]))
        result = decide_one_round_solvability(graphs, 2)
        assert result.solvable
        algorithm = DecisionMapAlgorithm(result.decision_map)
        task = KSetAgreement(2, (0, 1, 2))
        for g in graphs:
            outcome = execute(algorithm, {0: 0, 1: 1, 2: 2}, [g], task)
            assert outcome.ok

    def test_validity_enforced(self):
        bad = {frozenset({(0, 1)}): 99}
        with pytest.raises(AlgorithmError):
            DecisionMapAlgorithm(bad)
        DecisionMapAlgorithm(bad, enforce_validity=False)  # opt-out works

    def test_empty_map_rejected(self):
        with pytest.raises(AlgorithmError):
            DecisionMapAlgorithm({})

    def test_uncovered_view_raises(self):
        algorithm = DecisionMapAlgorithm({frozenset({(0, 1)}): 1})
        with pytest.raises(AlgorithmError):
            algorithm.decide(frozenset({(0, 2)}))

    def test_metadata(self):
        algorithm = DecisionMapAlgorithm({frozenset({(0, 1)}): 1})
        assert algorithm.size == 1
        assert "rounds=1" in algorithm.name()


class TestTightnessAnalysis:
    def test_cycle3_tight_both_sides(self):
        analysis = analyze_tightness(simple_closed_above(cycle(3)))
        assert analysis.exact_k == 2
        assert analysis.lower_tight and analysis.upper_tight
        assert "tight" in analysis.describe()

    def test_clique_model(self):
        analysis = analyze_tightness(simple_closed_above(complete_graph(3)))
        assert analysis.exact_k == 1
        assert analysis.upper_tight

    def test_star_model(self):
        analysis = analyze_tightness(symmetric_closed_above([star(3, 0)]))
        assert analysis.exact_k == 3
        assert analysis.lower_sound and analysis.upper_sound

    def test_frontier_guard(self):
        model = simple_closed_above(cycle(5))  # ↑C5 has 2^15 graphs
        with pytest.raises(Exception):
            exact_one_round_frontier(model, max_graphs=16)
