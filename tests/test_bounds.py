"""Tests for the bounds engine: every theorem's executable form."""

from __future__ import annotations

import pytest

from repro.bounds import (
    Bound,
    BoundKind,
    all_covering_upper_bounds,
    best_lower_bound,
    best_upper_bound,
    bound_report,
    lower_bound_general,
    lower_bound_general_multi_round,
    lower_bound_simple,
    lower_bound_simple_multi_round,
    lower_bound_star_unions,
    lower_bound_symmetric,
    upper_bound_covering,
    upper_bound_covering_multi_round,
    upper_bound_covering_sequence,
    upper_bound_covering_sequence_of_set,
    upper_bound_gamma_eq,
    upper_bound_gamma_eq_multi_round,
    upper_bound_simple,
    upper_bound_simple_multi_round,
)
from repro.errors import GraphError
from repro.graphs import (
    complete_graph,
    cycle,
    star,
    symmetric_closure,
    union_of_stars,
    wheel,
)


class TestBoundRecord:
    def test_describe(self):
        b = Bound(BoundKind.UPPER, 2, 1, "3.2")
        assert "solvable" in b.describe()
        b = Bound(BoundKind.LOWER, 2, 1, "5.4")
        assert "impossible" in b.describe()

    def test_vacuous(self):
        assert Bound(BoundKind.LOWER, 0, 1, "5.1").vacuous
        assert "no impossibility" in Bound(BoundKind.LOWER, 0, 1, "5.1").describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            Bound(BoundKind.UPPER, -1, 1, "x")
        with pytest.raises(ValueError):
            Bound(BoundKind.UPPER, 1, 0, "x")

    def test_oblivious_flag_in_description(self):
        b = Bound(BoundKind.LOWER, 1, 2, "6.10", oblivious_only=True)
        assert "oblivious" in b.describe()


class TestOneRoundUppers:
    def test_thm32_star(self):
        b = upper_bound_simple(star(5, 0))
        assert b.k == 1 and b.theorem == "3.2"
        assert b.details["dominating_set"] == (0,)

    def test_thm32_cycle(self):
        assert upper_bound_simple(cycle(6)).k == 3

    def test_thm34(self):
        sym = sorted(symmetric_closure([wheel(4)]))
        b = upper_bound_gamma_eq(sym)
        assert b.k == 4 and b.theorem == "3.4"

    def test_thm37_fig1_model(self):
        """Sec 3.2: covering bound gives 3-set on Sym(fig1-right)."""
        sym = sorted(symmetric_closure([wheel(4)]))
        b = upper_bound_covering(sym, 2)
        assert b.k == 3
        assert b.details["cov_i"] == 3

    def test_thm37_star_no_gain(self):
        """Sec 3.2: on Sym(star) the covering bound never beats γ_eq."""
        sym = sorted(symmetric_closure([star(4, 0)]))
        gamma_eq = upper_bound_gamma_eq(sym).k
        for b in all_covering_upper_bounds(sym):
            assert b.k >= gamma_eq

    def test_thm37_range_validation(self):
        sym = sorted(symmetric_closure([wheel(4)]))
        with pytest.raises(GraphError):
            upper_bound_covering(sym, 0)
        with pytest.raises(GraphError):
            upper_bound_covering(sym, 4)  # == γ_eq

    def test_best_upper_combines(self):
        sym = sorted(symmetric_closure([wheel(4)]))
        assert best_upper_bound(sym).k == 3

    def test_empty_generators(self):
        with pytest.raises(GraphError):
            upper_bound_gamma_eq([])


class TestOneRoundLowers:
    def test_thm51(self):
        b = lower_bound_simple(cycle(6))
        assert b.k == 2  # γ - 1
        assert b.theorem == "5.1"

    def test_thm51_vacuous_for_star(self):
        assert lower_bound_simple(star(4, 0)).vacuous

    def test_thm54_star_unions(self):
        """Sec 5's flagship computation: l + 1 = n - s."""
        for n, s in ((4, 1), (4, 2), (5, 2), (5, 3)):
            sym = sorted(
                symmetric_closure([union_of_stars(n, tuple(range(s)))])
            )
            b = lower_bound_general(sym)
            assert b.k == n - s, (n, s, b.details)

    def test_thm54_matches_closed_form(self):
        for n, s in ((4, 2), (5, 2), (5, 3)):
            sym = sorted(
                symmetric_closure([union_of_stars(n, tuple(range(s)))])
            )
            assert lower_bound_general(sym).k == lower_bound_star_unions(n, s).k

    def test_cor55_equals_general_on_sym(self):
        g = wheel(4)
        direct = lower_bound_general(sorted(symmetric_closure([g])))
        cor = lower_bound_symmetric(g)
        assert cor.k == direct.k
        assert cor.theorem == "5.5"

    def test_star_unions_validation(self):
        with pytest.raises(GraphError):
            lower_bound_star_unions(4, 0)
        with pytest.raises(GraphError):
            lower_bound_star_unions(4, 5)


class TestMultiRound:
    def test_thm63_cycle_decay(self):
        assert upper_bound_simple_multi_round(cycle(6), 1).k == 3
        assert upper_bound_simple_multi_round(cycle(6), 2).k == 2
        assert upper_bound_simple_multi_round(cycle(6), 5).k == 1

    def test_thm64(self):
        sym = sorted(symmetric_closure([cycle(4)]))
        b = upper_bound_gamma_eq_multi_round(sym, 2)
        assert b.theorem == "6.4"
        assert b.k <= upper_bound_gamma_eq(sym).k

    def test_thm65_range(self):
        sym = sorted(symmetric_closure([cycle(4)]))
        b = upper_bound_covering_multi_round(sym, 2, 1)
        assert b.rounds == 2

    def test_thm67_cycle(self):
        b = upper_bound_covering_sequence(cycle(5), 1)
        assert b is not None
        assert b.k == 1 and b.rounds == 4

    def test_thm67_stalls_on_star(self):
        assert upper_bound_covering_sequence(star(4, 0), 1) is None

    def test_thm69_set(self):
        sym = sorted(symmetric_closure([cycle(4)]))
        b = upper_bound_covering_sequence_of_set(sym, 1)
        assert b is not None and b.k == 1

    def test_thm610_uses_power(self):
        """The erratum: 6.10 must track γ(G^r), else it contradicts 6.3."""
        lower = lower_bound_simple_multi_round(cycle(6), 2)
        upper = upper_bound_simple_multi_round(cycle(6), 2)
        assert lower.k == upper.k - 1  # tight, no contradiction
        assert lower.oblivious_only

    def test_thm611(self):
        sym = sorted(symmetric_closure([union_of_stars(4, (0, 1))]))
        b = lower_bound_general_multi_round(sym, 2)
        assert b.theorem == "6.11"
        assert b.k == 4 - 2  # Thm 6.13: n - s at every round count

    def test_thm613_stable_across_rounds(self):
        """Appendix G: star products are idempotent, the bound persists."""
        sym = sorted(symmetric_closure([union_of_stars(4, (0, 1))]))
        for r in (1, 2, 3):
            assert lower_bound_general_multi_round(sym, r).k == 2

    def test_rounds_validation(self):
        with pytest.raises(GraphError):
            upper_bound_simple_multi_round(cycle(4), 0)
        with pytest.raises(GraphError):
            lower_bound_general_multi_round([cycle(4)], 0)


class TestBoundReport:
    def test_tight_on_fig1_model(self):
        sym = sorted(symmetric_closure([wheel(4)]))
        report = bound_report(sym)
        assert report.best_upper.k == 3
        assert report.best_lower.k == 2
        assert report.tight
        assert "TIGHT" in report.describe()

    def test_simple_model_report(self):
        report = bound_report([cycle(6)])
        assert report.best_upper.k == 3
        assert report.best_lower.k == 2
        assert report.tight

    def test_multi_round_report_surfaces_erratum(self):
        """Reproduction finding: Thm 5.4's formula on ↑C6² claims 2-set
        impossibility, but Thm 3.2's MinOfDominatingSet({0,3}) provably
        solves 2-set agreement there (every graph above C6² delivers p0's
        value to {0,1,2} and p3's to {3,4,5}).  The report must flag the
        contradiction instead of calling it tight."""
        report = bound_report([cycle(6)], rounds=2)
        assert report.rounds == 2
        assert report.best_upper.k == 2
        assert not report.consistent
        assert not report.tight
        assert "INCONSISTENT" in report.describe()
        # Thm 6.10 alone (drop the overclaiming 6.11 record) is tight.
        thm_610 = [b for b in report.lower_bounds if b.theorem == "6.10"]
        assert thm_610 and thm_610[0].k == 1

    def test_best_bounds_helpers(self):
        sym = sorted(symmetric_closure([union_of_stars(5, (0, 1))]))
        assert best_lower_bound(sym).k == 3
        assert best_upper_bound(sym).k == 4

    def test_report_empty_rejected(self):
        with pytest.raises(GraphError):
            bound_report([])
