"""Tests for multi-round product models (Sec 6.1, Lemma 6.2)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ModelError
from repro.graphs import (
    cycle,
    graph_power,
    in_upward_closure,
    path_product,
    sample_superset,
    star,
)
from repro.models import (
    closure_product_gap,
    is_realisable_product,
    product_model,
    round_product_generators,
    simple_closed_above,
    symmetric_closed_above,
)


class TestProductModel:
    def test_simple_power(self):
        m = simple_closed_above(cycle(4))
        m2 = product_model(m, 2)
        assert m2.is_simple
        assert m2.generator == graph_power(cycle(4), 2)

    def test_round_validation(self):
        m = simple_closed_above(cycle(4))
        with pytest.raises(ModelError):
            product_model(m, 0)

    def test_generators_of_symmetric_power(self):
        m = symmetric_closed_above([star(3, 0)])
        gens = round_product_generators(m.generators, 2)
        # Star products collapse: star ⊗ star' covers everything from the
        # first star's centre, so the set stays small.
        assert all(g.n == 3 for g in gens)

    def test_lemma_6_2_inclusion(self):
        """↑G ⊗ ↑H ⊆ ↑(G ⊗ H), checked by sampling."""
        rng = random.Random(3)
        g, h = cycle(5), cycle(5)
        target = path_product(g, h)
        for _ in range(25):
            gp = sample_superset(g, rng)
            hp = sample_superset(h, rng)
            assert in_upward_closure(path_product(gp, hp), target)


class TestClosureProductGap:
    def test_cycle6_gap_exists(self):
        """Sec 6.1: ↑C6 ⊗ ↑C6 ⊊ ↑(C6 ⊗ C6)."""
        witnesses = closure_product_gap(cycle(6), cycle(6), max_witnesses=1)
        assert witnesses
        target = witnesses[0]
        squared = graph_power(cycle(6), 2)
        assert in_upward_closure(target, squared)
        assert not is_realisable_product(target, cycle(6), cycle(6))

    def test_product_itself_realisable(self):
        g = cycle(4)
        assert is_realisable_product(graph_power(g, 2), g, g)

    def test_no_gap_for_cliques(self):
        from repro.graphs import complete_graph

        k = complete_graph(3)
        assert closure_product_gap(k, k) == []
