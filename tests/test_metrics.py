"""Tests for graph distance metrics and their link to flooding rounds."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.combinatorics import rounds_to_reach_all
from repro.errors import GraphError
from repro.graphs import (
    Digraph,
    bidirectional_cycle,
    complete_graph,
    cycle,
    diameter,
    distance,
    distances_from,
    eccentricity,
    flooding_rounds,
    graph_power,
    path,
    radius,
    star,
    transitive_closure,
)
from tests.test_digraph import random_digraphs


class TestDistances:
    def test_cycle(self):
        g = cycle(5)
        assert distances_from(g, 0) == [0, 1, 2, 3, 4]
        assert distance(g, 0, 3) == 3

    def test_unreachable(self):
        g = path(3)
        assert distance(g, 2, 0) is None
        assert distances_from(g, 2) == [None, None, 0]

    def test_self_distance_zero(self):
        assert distance(complete_graph(4), 2, 2) == 0

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            distances_from(cycle(3), 5)
        with pytest.raises(GraphError):
            distance(cycle(3), 0, 5)


class TestEccentricityRadiusDiameter:
    def test_star_radius_one(self):
        g = star(5, 2)
        assert eccentricity(g, 2) == 1
        assert radius(g) == 1
        assert diameter(g) is None  # leaves reach nobody

    def test_cycle_diameter(self):
        assert diameter(cycle(6)) == 5
        assert radius(cycle(6)) == 5

    def test_bidirectional_cycle(self):
        assert diameter(bidirectional_cycle(6)) == 3

    def test_clique(self):
        assert diameter(complete_graph(4)) == 1
        assert flooding_rounds(complete_graph(4)) == 1


class TestFloodingConnection:
    def test_power_at_diameter_is_clique(self):
        for g in (cycle(5), bidirectional_cycle(7)):
            d = diameter(g)
            assert graph_power(g, d) == complete_graph(g.n)
            assert graph_power(g, d - 1) != complete_graph(g.n)

    def test_covering_sequence_bounded_by_diameter(self):
        """rounds_to_reach_all(G, 1) equals the worst single-source
        flooding time when finite — i.e. the diameter."""
        for g in (cycle(4), cycle(6), bidirectional_cycle(6)):
            assert rounds_to_reach_all(g, 1) == diameter(g)

    @given(random_digraphs(5))
    def test_distances_consistent_with_powers(self, g):
        tc = transitive_closure(g)
        for u in g.processes():
            dists = distances_from(g, u)
            for v in g.processes():
                reachable = tc.has_edge(u, v)
                assert (dists[v] is not None) == reachable
                if dists[v] is not None and dists[v] > 0:
                    assert graph_power(g, dists[v]).has_edge(u, v)
                    if dists[v] > 1:
                        assert not graph_power(g, dists[v] - 1).has_edge(u, v)

    @given(random_digraphs(5))
    def test_radius_le_diameter(self, g):
        r, d = radius(g), diameter(g)
        if r is not None and d is not None:
            assert r <= d
