"""Tests for the verification harness — and, through it, the theorems.

These are the integration tests that close the loop: the paper's upper
bounds are replayed by exhaustive execution, and its lower bounds are
confirmed by the exact solvability search (UNSAT on a model subset implies
impossibility on the model).
"""

from __future__ import annotations

import random

import pytest

from repro.agreement import FloodMin, KSetAgreement, MinOfDominatingSet
from repro.errors import VerificationError
from repro.graphs import (
    complete_graph,
    cycle,
    domination_number,
    star,
    symmetric_closure,
    union_of_stars,
    wheel,
)
from repro.models import simple_closed_above, symmetric_closed_above
from repro.verification import (
    SolvabilitySearch,
    decide_one_round_solvability,
    exhaustive_inputs,
    find_violation,
    tightness_certificate,
    verify_algorithm,
)


class TestExhaustiveInputs:
    def test_count(self):
        assert len(list(exhaustive_inputs(3, (0, 1)))) == 8

    def test_coverage(self):
        for inputs in exhaustive_inputs(2, (0, 1)):
            assert set(inputs) == {0, 1}

    def test_empty_values_rejected(self):
        with pytest.raises(VerificationError):
            list(exhaustive_inputs(2, ()))


class TestVerifyAlgorithm:
    def test_thm32_verified_on_families(self):
        """Thm 3.2: MinOfDominatingSet solves γ(G)-set agreement on ↑G."""
        for g in (star(4, 0), cycle(4), wheel(4), union_of_stars(4, (0, 1))):
            gamma = domination_number(g)
            model = simple_closed_above(g)
            task = KSetAgreement(gamma, range(gamma + 1))
            report = verify_algorithm(
                MinOfDominatingSet(g), model, task, superset_samples=5
            )
            assert report.ok, (g, report.failures[:1])

    def test_thm32_exhaustive_closure(self):
        """Full-closure check (no sampling gap) on a small instance."""
        g = cycle(3)
        model = simple_closed_above(g)
        task = KSetAgreement(domination_number(g), range(3))
        report = verify_algorithm(
            MinOfDominatingSet(g), model, task, exhaustive_closure=True
        )
        assert report.ok
        assert report.executions == 8 * 27

    def test_thm34_verified(self):
        """Thm 3.4: FloodMin solves γ_eq(S)-set agreement."""
        sym = symmetric_closed_above([cycle(4)])
        task = KSetAgreement(3, range(4))  # γ_eq(C4) = 3
        report = verify_algorithm(FloodMin(1), sym, task, superset_samples=3)
        assert report.ok

    def test_thm37_verified_on_fig1_model(self):
        """Thm 3.7: the covering bound's 3-set agreement on Sym(wheel4)."""
        sym = symmetric_closed_above([wheel(4)])
        task = KSetAgreement(3, range(4))
        report = verify_algorithm(FloodMin(1), sym, task, superset_samples=3)
        assert report.ok

    def test_thm69_multi_round_verified(self):
        """Thm 6.9: FloodMin solves 1-set agreement once the covering
        sequence floods — 3 rounds for Sym(C4)."""
        sym = symmetric_closed_above([cycle(4)])
        task = KSetAgreement(1, range(2))
        report = verify_algorithm(FloodMin(3), sym, task, superset_samples=1)
        assert report.ok

    def test_failure_detected(self):
        """FloodMin(1) cannot solve consensus on Sym(C4): the report must
        carry a counterexample."""
        sym = symmetric_closed_above([cycle(4)])
        task = KSetAgreement(1, range(2))
        report = verify_algorithm(
            FloodMin(1), sym, task, superset_samples=0,
            stop_at_first_failure=True,
        )
        assert not report.ok
        failure = report.failures[0]
        assert len(set(failure.decisions.values())) > 1


class TestSolvabilitySearch:
    def test_validation(self):
        with pytest.raises(VerificationError):
            SolvabilitySearch([], 1, (0, 1))
        with pytest.raises(VerificationError):
            SolvabilitySearch([cycle(3)], 0, (0, 1))
        with pytest.raises(VerificationError):
            SolvabilitySearch([cycle(3)], 1, (0,))
        with pytest.raises(VerificationError):
            SolvabilitySearch([cycle(3), cycle(4)], 1, (0, 1))

    def test_consensus_possible_on_clique_model(self):
        result = decide_one_round_solvability([complete_graph(3)], 1)
        assert result.solvable
        assert result.decision_map is not None

    def test_witness_map_is_consistent(self):
        """Replay the witness decision map against every execution."""
        from itertools import product as iproduct

        graphs = [complete_graph(3), star(3, 0)]
        result = decide_one_round_solvability(graphs, 1)
        assert result.solvable
        delta = result.decision_map
        for g in graphs:
            for assignment in iproduct((0, 1), repeat=3):
                decided = set()
                for p in range(3):
                    view = frozenset(
                        (q, assignment[q]) for q in g.in_neighbors(p)
                    )
                    value = delta[view]
                    assert value in {v for _, v in view}  # validity
                    decided.add(value)
                assert len(decided) <= 1

    def test_thm51_star_consensus(self):
        """γ(star) = 1: consensus solvable even on the fixed star graph."""
        assert decide_one_round_solvability([star(3, 0)], 1).solvable

    def test_thm51_cycle_impossibility(self):
        """γ(C4) = 2: consensus is impossible on the fixed C4 — and a
        fortiori on ↑C4 (Thm 5.1)."""
        result = decide_one_round_solvability([cycle(4)], 1)
        assert not result.solvable

    def test_thm54_star_impossibility_needs_full_model(self):
        """Thm 5.4 / 6.13 with (n, s) = (3, 1): 2-set agreement is
        impossible on Sym(↑star(3)).

        Instructive subtlety: the generator subset alone is SAT (star views
        are tiny, leaving the decision map slack) — the impossibility only
        materialises over the full allowed graph set, which is exactly why
        Thm 5.4's proof works with the pseudospheres of ``↑G`` rather than
        the generators' uninterpreted simplexes."""
        model = symmetric_closed_above([star(3, 0)])
        generators = sorted(model.generators)
        assert decide_one_round_solvability(generators, 2).solvable
        full = sorted(model.iter_graphs())
        result = decide_one_round_solvability(full, 2)
        assert not result.solvable

    def test_thm54_wheel_two_set_impossibility(self):
        """The Fig 1 model: 2-set agreement UNSAT on Sym(wheel4)'s
        generators, confirming the lower bound side of the tight k=3."""
        generators = sorted(symmetric_closure([wheel(4)]))
        result = decide_one_round_solvability(generators, 2)
        assert not result.solvable

    def test_sat_on_full_small_model(self):
        """2-set agreement on the full ↑C3 model: γ(C3) = 2, so SAT."""
        model = simple_closed_above(cycle(3))
        graphs = sorted(model.iter_graphs())
        assert decide_one_round_solvability(graphs, 2).solvable

    def test_unsat_on_full_small_model(self):
        """Consensus on full ↑C3: γ = 2 says impossible; exact search
        over the complete allowed set settles it."""
        model = simple_closed_above(cycle(3))
        graphs = sorted(model.iter_graphs())
        assert not decide_one_round_solvability(graphs, 1).solvable


class TestCertificates:
    def test_flood_min_violation_found(self):
        sym = symmetric_closed_above([cycle(4)])
        violation = find_violation(FloodMin(1), sym, 1, superset_samples=0)
        assert violation is not None
        assert len(set(violation.decisions.values())) >= 2

    def test_no_violation_for_true_guarantee(self):
        sym = symmetric_closed_above([cycle(4)])
        assert find_violation(FloodMin(1), sym, 3, superset_samples=2) is None

    def test_tightness_certificate(self):
        """FloodMin(1) achieves exactly γ_eq = 3 on Sym(C4)."""
        sym = symmetric_closed_above([cycle(4)])
        cert = tightness_certificate(FloodMin(1), sym, 3)
        assert len(set(cert.decisions.values())) == 3

    def test_tightness_certificate_rejects_slack_claim(self):
        """MinOfDominatingSet on ↑star achieves 1; claiming 2 is slack."""
        model = simple_closed_above(star(3, 0))
        with pytest.raises(VerificationError):
            tightness_certificate(MinOfDominatingSet(star(3, 0)), model, 2)

    def test_tightness_certificate_validation(self):
        model = simple_closed_above(star(3, 0))
        with pytest.raises(VerificationError):
            tightness_certificate(MinOfDominatingSet(star(3, 0)), model, 1)
