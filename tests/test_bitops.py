"""Unit and property tests for repro._bitops."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bitops import (
    bit,
    bits_tuple,
    full_mask,
    is_subset,
    iter_bits,
    iter_subsets,
    iter_subsets_of_size,
    iter_supersets,
    lowest_bit,
    mask_of,
    popcount,
)

masks = st.integers(min_value=0, max_value=(1 << 12) - 1)


class TestBasics:
    def test_bit(self):
        assert bit(0) == 1
        assert bit(5) == 32

    def test_bit_negative_rejected(self):
        with pytest.raises(ValueError):
            bit(-1)

    def test_mask_of_roundtrip(self):
        assert mask_of([0, 2, 3]) == 0b1101

    def test_mask_of_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_of([1, -2])

    def test_full_mask(self):
        assert full_mask(0) == 0
        assert full_mask(4) == 0b1111

    def test_full_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            full_mask(-1)

    def test_lowest_bit(self):
        assert lowest_bit(0b1010) == 1

    def test_lowest_bit_empty_rejected(self):
        with pytest.raises(ValueError):
            lowest_bit(0)


class TestIteration:
    def test_iter_bits_order(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]

    def test_bits_tuple_empty(self):
        assert bits_tuple(0) == ()

    def test_iter_subsets_count(self):
        assert len(list(iter_subsets(0b101))) == 4

    def test_iter_subsets_of_size_matches_combinations(self):
        mask = 0b11011
        elements = bits_tuple(mask)
        for size in range(len(elements) + 1):
            got = sorted(iter_subsets_of_size(mask, size))
            want = sorted(mask_of(c) for c in combinations(elements, size))
            assert got == want

    def test_iter_subsets_of_size_too_big(self):
        assert list(iter_subsets_of_size(0b11, 3)) == []

    def test_iter_subsets_of_size_negative_rejected(self):
        with pytest.raises(ValueError):
            list(iter_subsets_of_size(0b11, -1))

    def test_iter_supersets(self):
        got = sorted(iter_supersets(0b001, 0b101))
        assert got == [0b001, 0b101]

    def test_iter_supersets_requires_subset(self):
        with pytest.raises(ValueError):
            list(iter_supersets(0b10, 0b01))


class TestProperties:
    @given(masks)
    def test_popcount_matches_bits(self, mask):
        assert popcount(mask) == len(list(iter_bits(mask)))

    @given(masks)
    def test_mask_of_roundtrips(self, mask):
        assert mask_of(iter_bits(mask)) == mask

    @given(masks)
    def test_subsets_are_subsets(self, mask):
        subs = list(iter_subsets(mask))
        assert len(subs) == 1 << popcount(mask)
        assert all(is_subset(s, mask) for s in subs)
        assert len(set(subs)) == len(subs)

    @given(masks, masks)
    def test_is_subset_definition(self, a, b):
        assert is_subset(a, b) == (set(iter_bits(a)) <= set(iter_bits(b)))

    @given(masks)
    def test_supersets_within_universe(self, mask):
        universe = full_mask(12)
        supers = list(iter_supersets(mask, universe))
        assert len(supers) == 1 << (12 - popcount(mask))
        assert all(is_subset(mask, s) and is_subset(s, universe) for s in supers)
