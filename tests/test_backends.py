"""Cross-check suite for the pluggable CSP compute backends.

The contract of the backends PR: every backend — ``reference`` (the
original search), ``bitset`` (the bitmask re-encoding) and ``sat`` (the
CNF encoding, when `python-sat` is installed) — returns the same verdict
with a valid witness on the same instance, and no two backends ever
share memoized rows in either cache tier.
"""

from __future__ import annotations

import random
import sqlite3
from itertools import product

import pytest

import repro.store as store_pkg
from repro.engine import KERNEL_CACHE, KERNEL_VERSION_VARIANTS
from repro.errors import VerificationError
from repro.graphs import Digraph, cycle, star
from repro.verification import (
    SolvabilitySearch,
    decide_one_round_solvability,
    resolve_backend,
    sat_available,
)
from repro.verification.backends import (
    CSP_BACKEND_VARIANTS,
    available_backends,
    witness_ok,
)
from repro.verification.backends.bitset import reduce_executions

needs_sat = pytest.mark.skipif(
    not sat_available(), reason="python-sat not installed"
)


# ----------------------------------------------------------------------
# Random instance generation
# ----------------------------------------------------------------------

def _random_instance(rng: random.Random):
    """A random (graphs, k, values) solvability instance, small enough
    that ~100 of them cross-check in seconds."""
    n = rng.choice((2, 3))
    graph_count = rng.randint(1, 4)
    graphs = []
    for _ in range(graph_count):
        rows = tuple(
            rng.randrange(1 << n) | (1 << p) for p in range(n)
        )
        graphs.append(Digraph(n, rows))
    k = rng.randint(1, n)
    if rng.random() < 0.3:
        # Non-integer values exercise the value-indexing layer.
        alphabet = ("a", "b", "c", "d", "e")
        values = alphabet[: rng.randint(2, k + 2)]
    else:
        values = tuple(range(rng.randint(2, k + 2)))
    return graphs, k, values


def _assert_valid_witness(graphs, k, values, result):
    """Replay the full model against the witness decision map."""
    assert result.solvable and result.decision_map is not None
    dm = result.decision_map
    for g in graphs:
        n = g.n
        in_neighbors = [g.in_neighbors(p) for p in range(n)]
        for assignment in product(values, repeat=n):
            decided = set()
            for p in range(n):
                view = frozenset(
                    (q, assignment[q]) for q in in_neighbors[p]
                )
                value = dm[view]
                assert value in {v for _, v in view}, "validity violated"
                decided.add(value)
            assert len(decided) <= k, "agreement violated"


def _solve(graphs, k, values, backend):
    # SolvabilitySearch.solve bypasses the kernel cache: every call here
    # really runs the named backend.
    return SolvabilitySearch(graphs, k, values).solve(backend=backend)


# ----------------------------------------------------------------------
# Randomized cross-checks
# ----------------------------------------------------------------------

class TestBitsetMatchesReference:
    def test_randomized_verdicts_and_witnesses(self):
        rng = random.Random(0xC5B)
        sat_count = 0
        for _ in range(100):
            graphs, k, values = _random_instance(rng)
            ref = _solve(graphs, k, values, "reference")
            bit = _solve(graphs, k, values, "bitset")
            assert bit.solvable == ref.solvable
            assert bit.view_count == ref.view_count
            assert bit.execution_count == ref.execution_count
            if ref.solvable:
                sat_count += 1
                _assert_valid_witness(graphs, k, values, ref)
                _assert_valid_witness(graphs, k, values, bit)
        # The generator must exercise both verdicts or the test is weak.
        assert 10 <= sat_count <= 90

    def test_identical_witnesses(self):
        # The bitset backend mirrors the reference traversal (same
        # fail-first tie-breaking, same ascending value order), so it
        # finds the *same* witness, not merely an equivalent one.  A
        # deliberate traversal change may relax this test — the verdict
        # cross-check above is the hard contract.
        rng = random.Random(7)
        for _ in range(25):
            graphs, k, values = _random_instance(rng)
            ref = _solve(graphs, k, values, "reference")
            bit = _solve(graphs, k, values, "bitset")
            assert ref == bit

    def test_check_backend_runs_clean(self):
        for k in (1, 2):
            result = _solve([cycle(3), star(3, 0)], k, (0, 1, 2), "check")
            reference = _solve([cycle(3), star(3, 0)], k, (0, 1, 2), "reference")
            assert result == reference


@needs_sat
class TestSatMatchesBitset:
    def test_randomized_verdicts(self):
        rng = random.Random(0x5A7)
        for _ in range(30):
            graphs, k, values = _random_instance(rng)
            bit = _solve(graphs, k, values, "bitset")
            sat = _solve(graphs, k, values, "sat")
            assert sat.solvable == bit.solvable
            assert sat.execution_count == bit.execution_count
            if sat.solvable:
                _assert_valid_witness(graphs, k, values, sat)

    def test_sat_in_available_backends(self):
        assert available_backends() == ("reference", "bitset", "sat")


# ----------------------------------------------------------------------
# The mask-native subsumption reduction
# ----------------------------------------------------------------------

class TestReduceExecutions:
    def test_drops_strict_subsets_keeps_order(self):
        rows = [(0, 1), (0, 1, 2), (3,), (2, 3), (0, 3)]
        assert reduce_executions(rows) == [(0, 1, 2), (2, 3), (0, 3)]

    def test_equal_rows_both_kept(self):
        # Dedup is the caller's job; incomparable rows all survive.
        rows = [(0, 1), (1, 2), (0, 2)]
        assert reduce_executions(rows) == rows

    def test_matches_reference_reduction(self):
        rng = random.Random(11)
        for _ in range(50):
            universe = rng.randint(3, 8)
            rows = list(
                dict.fromkeys(
                    tuple(
                        sorted(
                            rng.sample(
                                range(universe), rng.randint(1, universe)
                            )
                        )
                    )
                    for _ in range(rng.randint(1, 12))
                )
            )
            sets = [frozenset(r) for r in rows]
            expected = [
                rows[i]
                for i, es in enumerate(sets)
                if not any(
                    i != j and es < other for j, other in enumerate(sets)
                )
            ]
            assert reduce_executions(rows) == expected


# ----------------------------------------------------------------------
# Selection and environment plumbing
# ----------------------------------------------------------------------

class TestResolveBackend:
    def test_defaults_to_auto_bitset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CSP_BACKEND", raising=False)
        assert resolve_backend() == "bitset"
        assert resolve_backend("auto") == "bitset"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_BACKEND", "reference")
        assert resolve_backend() == "reference"
        # An explicit parameter wins over the environment.
        assert resolve_backend("bitset") == "bitset"

    def test_unknown_name_raises(self):
        with pytest.raises(VerificationError, match="unknown CSP backend"):
            resolve_backend("minisat")

    def test_sat_gated_on_import(self):
        if sat_available():
            assert resolve_backend("sat") == "sat"
        else:
            with pytest.raises(VerificationError, match="python-sat"):
                resolve_backend("sat")

    def test_variant_registry_covers_all_backends(self):
        import repro.analysis.sweeps  # noqa: F401 — registers the kernels

        assert KERNEL_VERSION_VARIANTS["one_round_solvability"] == tuple(
            f"2+{suffix}" for suffix in CSP_BACKEND_VARIANTS
        )
        for kernel in ("solvability_shard", "solvability_subshard"):
            assert KERNEL_VERSION_VARIANTS[kernel] == tuple(
                f"1+{suffix}" for suffix in CSP_BACKEND_VARIANTS
            )


# ----------------------------------------------------------------------
# Store separation: backends never share rows
# ----------------------------------------------------------------------

@pytest.fixture
def rw_store(tmp_path):
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "results.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


def _store_rows(store, kernel):
    store.flush()
    with sqlite3.connect(store.path) as conn:
        return sorted(
            conn.execute(
                "SELECT version, COUNT(*) FROM results WHERE kernel = ? "
                "GROUP BY version",
                (kernel,),
            ).fetchall()
        )


class TestStoreSeparation:
    def test_backends_get_distinct_store_rows(self, rw_store):
        pool = [cycle(3)]
        a = decide_one_round_solvability(pool, 1, backend="reference")
        b = decide_one_round_solvability(pool, 1, backend="bitset")
        assert a == b
        assert _store_rows(rw_store, "one_round_solvability") == [
            ("2+bitset", 1),
            ("2+reference", 1),
        ]

    def test_memo_tier_is_backend_scoped(self, rw_store):
        # The second backend must recompute even inside one process: a
        # kernel-cache hit across backends would make every cross-check
        # vacuous.
        pool = [cycle(3)]
        decide_one_round_solvability(pool, 1, backend="reference")
        before = KERNEL_CACHE.stats()
        decide_one_round_solvability(pool, 1, backend="bitset")
        delta = KERNEL_CACHE.stats().delta_since(before)
        rows = {name: (h, m) for name, h, m in delta.by_kernel}
        assert rows["one_round_solvability"] == (0, 1)

    def test_same_backend_hits_warm_store(self, rw_store):
        pool = [cycle(3), star(3, 0)]
        first = decide_one_round_solvability(pool, 2, backend="bitset")
        store = store_pkg.configure(path=rw_store.path, mode=rw_store.mode)
        KERNEL_CACHE.clear()
        second = decide_one_round_solvability(pool, 2, backend="bitset")
        assert first == second
        stats = store.stats()
        rows = {name: (h, m) for name, h, m, _w in stats.by_kernel}
        assert rows["one_round_solvability"] == (1, 0)

    def test_vacuum_keeps_every_backend_variant(self, rw_store):
        pool = [cycle(3)]
        decide_one_round_solvability(pool, 1, backend="reference")
        decide_one_round_solvability(pool, 1, backend="bitset")
        rw_store.flush()
        # Plant a stale pre-backend row; vacuum must drop it and keep
        # both live variants.
        with sqlite3.connect(rw_store.path) as conn:
            conn.execute(
                "INSERT INTO results "
                "(kernel, version, key_hash, value, checksum, created) "
                "VALUES ('one_round_solvability', '1', 'deadbeef', "
                "x'00', 'bogus', 0)"
            )
            conn.commit()
        report = rw_store.vacuum()
        assert report["deleted"] == 1
        assert _store_rows(rw_store, "one_round_solvability") == [
            ("2+bitset", 1),
            ("2+reference", 1),
        ]

    def test_db_stats_marks_foreign_backend_rows_live(self, rw_store):
        pool = [cycle(3)]
        decide_one_round_solvability(pool, 1, backend="reference")
        decide_one_round_solvability(pool, 1, backend="bitset")
        info = rw_store.db_stats()
        solvability = [
            row
            for row in info["kernels"]
            if row["kernel"] == "one_round_solvability"
        ]
        assert len(solvability) == 2
        assert not any(row["stale"] for row in solvability)
        assert info["stale_entries"] == 0
