"""Tests for the engine layer: keys, interning, cache, batch driver.

The equivalence suite is the satellite guarantee of the engine PR: every
cached kernel returns byte-identical results with the cache enabled,
disabled, and across a ``run_batch`` round-trip.
"""

from __future__ import annotations

import operator
import pickle
import random

import pytest

from repro.bounds import bound_report, bound_report_many
from repro.combinatorics import (
    covering_numbers,
    distributed_domination_number,
    equal_domination_number,
    max_covering_witness,
)
from repro.engine import (
    KERNEL_CACHE,
    CacheStats,
    Job,
    JobError,
    KernelCache,
    adjacency_key,
    cache_disabled,
    cached_kernel,
    graph_set_key,
    intern_graph,
    iso_key,
    run_batch,
)
from repro.engine.diagnostics import cache_probe
from repro.graphs import (
    Digraph,
    cycle,
    diameter,
    domination_number,
    minimum_dominating_set,
    random_digraph,
    star,
    symmetric_closure,
    union_of_stars,
    wheel,
)
from repro.verification import decide_one_round_solvability


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate cache contents and statistics per test."""
    KERNEL_CACHE.clear()
    yield
    KERNEL_CACHE.clear()


def _kernel_rows(stats: CacheStats) -> dict[str, tuple[int, int]]:
    return {name: (hits, misses) for name, hits, misses in stats.by_kernel}


class TestCanonicalKeys:
    def test_adjacency_key_is_exact(self):
        g = cycle(5)
        assert adjacency_key(g) == (5, g.out_rows)
        assert adjacency_key(g) != adjacency_key(star(5, 0))

    def test_iso_key_invariant_over_orbit(self):
        g = union_of_stars(5, (0, 2))
        keys = {iso_key(h) for h in symmetric_closure([g])}
        assert keys == {iso_key(g)}

    def test_iso_key_separates_non_isomorphic(self):
        assert iso_key(cycle(4)) != iso_key(star(4, 0))
        assert iso_key(cycle(4)) != iso_key(wheel(4))

    def test_iso_key_falls_back_to_adjacency_for_large_n(self):
        g = random_digraph(9, random.Random(1), 0.3)
        assert iso_key(g) == adjacency_key(g)

    def test_graph_set_key_ignores_order_and_duplicates(self):
        graphs = [cycle(4), wheel(4), star(4, 0)]
        key = graph_set_key(graphs)
        assert key == graph_set_key(reversed(graphs))
        assert key == graph_set_key(graphs + [cycle(4)])

    def test_intern_graph_shares_one_object(self):
        a = intern_graph(cycle(6))
        b = intern_graph(Digraph(6, cycle(6).out_rows))
        assert a is b
        assert intern_graph(star(6, 0)) is not a

    def test_symmetric_closure_members_are_interned(self):
        first = sorted(symmetric_closure([cycle(4)]))
        second = sorted(symmetric_closure([cycle(4)]))
        assert all(a is b for a, b in zip(first, second))


class TestKernelCache:
    def test_hit_miss_accounting(self):
        cache = KernelCache()

        @cached_kernel(name="double", key=lambda x: x, cache=cache)
        def double(x):
            return 2 * x

        assert double(3) == 6
        assert double(3) == 6
        assert double(4) == 8
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 2)
        assert _kernel_rows(stats)["double"] == (1, 2)

    def test_lru_eviction_bounds_entries(self):
        cache = KernelCache(max_entries=2)

        @cached_kernel(name="identity", key=lambda x: x, cache=cache)
        def identity(x):
            return x

        for value in range(5):
            identity(value)
        assert len(cache) == 2
        assert cache.stats().evictions == 3
        # The most recent entries survive.
        assert identity(4) == 4
        assert cache.stats().hits == 1

    def test_disabled_cache_recomputes(self):
        cache = KernelCache()
        calls = []

        @cached_kernel(name="probe", key=lambda x: x, cache=cache)
        def probe(x):
            calls.append(x)
            return x

        probe(1)
        with cache.disabled():
            probe(1)
            probe(1)
        probe(1)
        assert calls == [1, 1, 1]  # two bypasses recompute, final call hits

    def test_stats_merge_and_delta(self):
        a = CacheStats(hits=1, misses=2, by_kernel=(("x", 1, 2),))
        b = CacheStats(hits=3, misses=1, by_kernel=(("x", 2, 0), ("y", 1, 1)))
        merged = a.merge(b)
        assert (merged.hits, merged.misses) == (4, 3)
        assert _kernel_rows(merged) == {"x": (3, 2), "y": (1, 1)}
        delta = merged.delta_since(a)
        assert (delta.hits, delta.misses) == (3, 1)
        assert _kernel_rows(delta) == {"x": (2, 0), "y": (1, 1)}

    def test_describe_mentions_kernels(self):
        domination_number(cycle(4))
        text = KERNEL_CACHE.stats().describe()
        assert "domination_number" in text and "hits" in text


class TestCachedKernelEquivalence:
    """Satellite: cached and uncached results are byte-identical."""

    @pytest.mark.parametrize("seed", range(6))
    def test_graph_kernels_match_uncached(self, seed):
        rng = random.Random(seed)
        g = random_digraph(5, rng, 0.4)
        sym = sorted(symmetric_closure([g]))

        def workload():
            return (
                domination_number(g),
                minimum_dominating_set(g),
                equal_domination_number(g),
                covering_numbers(g),
                diameter(g),
                distributed_domination_number(sym),
                max_covering_witness(sym, 1),
            )

        with cache_disabled():
            baseline = repr(workload())
        KERNEL_CACHE.clear()
        cold = repr(workload())
        warm = repr(workload())
        assert cold == baseline
        assert warm == baseline

    @pytest.mark.parametrize("seed", range(3))
    def test_solvability_verdict_matches_uncached(self, seed):
        rng = random.Random(100 + seed)
        graphs = sorted({random_digraph(3, rng, 0.5) for _ in range(3)})
        with cache_disabled():
            baseline = [
                repr(decide_one_round_solvability(graphs, k)) for k in (1, 2)
            ]
        KERNEL_CACHE.clear()
        cold = [repr(decide_one_round_solvability(graphs, k)) for k in (1, 2)]
        warm = [repr(decide_one_round_solvability(graphs, k)) for k in (1, 2)]
        assert cold == baseline
        assert warm == baseline

    def test_solvability_memoized_per_graph_set(self):
        graphs = sorted(symmetric_closure([cycle(3)]))
        first = decide_one_round_solvability(graphs, 2)
        # Reversed order and duplicates map to the same set key.
        second = decide_one_round_solvability(list(reversed(graphs)) * 2, 2)
        assert second is first

    def test_betti_numbers_shared_across_equal_complexes(self):
        from repro.analysis.tables import figure4a_complex
        from repro.topology import betti_numbers

        first = betti_numbers(figure4a_complex())
        second = betti_numbers(figure4a_complex())
        assert first == second == (1, 0, 0)
        assert _kernel_rows(KERNEL_CACHE.stats())["betti_numbers"] == (1, 1)

    def test_warm_pass_serves_from_cache(self):
        g = cycle(6)
        covering_numbers(g)
        equal_domination_number(g)
        baseline = KERNEL_CACHE.stats()
        covering_numbers(g)
        equal_domination_number(g)
        delta = KERNEL_CACHE.stats().delta_since(baseline)
        assert delta.misses == 0
        assert delta.hits >= 2


class TestRunBatch:
    def test_results_keep_submission_order(self):
        tasks = [
            Job(name=f"gamma:{n}", fn=domination_number, args=(cycle(n),))
            for n in (3, 4, 5, 6, 7)
        ]
        batch = run_batch(tasks, jobs=1)
        assert batch.jobs == 1
        assert list(batch.values) == [domination_number(cycle(n)) for n in (3, 4, 5, 6, 7)]
        assert [r.name for r in batch.results] == [t.name for t in tasks]

    def test_parallel_matches_serial(self):
        models = [
            sorted(symmetric_closure([union_of_stars(4, (0, 1))])),
            [cycle(4)],
            [wheel(5)],
            sorted(symmetric_closure([cycle(4)])),
        ]
        serial = bound_report_many(models, jobs=1)
        parallel = bound_report_many(models, jobs=3)
        assert [r.describe() for r in parallel] == [r.describe() for r in serial]
        assert parallel == serial

    def test_parallel_merges_worker_stats(self):
        tasks = [
            Job(name=f"geq:{i}", fn=equal_domination_number, args=(cycle(5),))
            for i in range(4)
        ]
        batch = run_batch(tasks, jobs=2)
        assert batch.jobs == 2
        assert set(batch.values) == {equal_domination_number(cycle(5))}
        assert batch.stats.lookups > 0
        # The parent absorbed the workers' activity.
        assert KERNEL_CACHE.stats().lookups >= batch.stats.lookups

    def test_failing_job_raises_job_error(self):
        tasks = [
            Job(name="ok", fn=domination_number, args=(cycle(4),)),
            Job(name="boom", fn=domination_number, args=(None,)),
        ]
        with pytest.raises(JobError, match="boom"):
            run_batch(tasks, jobs=1)

    def test_multi_failure_batches_name_every_failed_job(self):
        """Regression: only the first JobError used to be surfaced."""
        tasks = [
            Job(name="boom-a", fn=operator.truediv, args=(1, 0)),
            Job(name="ok", fn=operator.mul, args=(6, 7)),
            Job(name="boom-b", fn=operator.truediv, args=(2, 0)),
        ]
        with pytest.raises(JobError) as excinfo:
            run_batch(tasks, jobs=1)
        error = excinfo.value
        assert [f.name for f in error.failures] == ["boom-a", "boom-b"]
        assert [f.index for f in error.failures] == [0, 2]
        assert "boom-a" in str(error) and "boom-b" in str(error)
        assert isinstance(error.__cause__, ZeroDivisionError)

    def test_collect_mode_returns_failures_in_batch_result(self):
        tasks = [
            Job(name="boom", fn=operator.truediv, args=(1, 0)),
            Job(name="ok", fn=operator.mul, args=(6, 7)),
        ]
        batch = run_batch(tasks, jobs=1, on_error="collect")
        assert batch.values == (42,)
        (failure,) = batch.failures
        assert failure.name == "boom"
        assert failure.index == 0
        assert "ZeroDivisionError" in failure.message

    def test_collect_mode_matches_across_serial_and_pool(self):
        tasks = [
            Job(name=f"job{i}", fn=operator.truediv, args=(i, i % 2))
            for i in range(6)
        ]
        serial = run_batch(tasks, jobs=1, on_error="collect")
        pool = run_batch(tasks, jobs=3, on_error="collect")
        assert serial.values == pool.values
        assert [f.name for f in serial.failures] == [
            f.name for f in pool.failures
        ]
        assert [f.index for f in serial.failures] == [0, 2, 4]

    def test_successes_complete_before_the_batch_raises(self):
        """A failure must not discard the other jobs' finished work."""
        tasks = [
            Job(name="boom", fn=operator.truediv, args=(1, 0)),
            Job(name="gamma", fn=domination_number, args=(cycle(6),)),
        ]
        KERNEL_CACHE.clear()
        with pytest.raises(JobError, match="boom"):
            run_batch(tasks, jobs=1)

        def _domination_hits() -> int:
            rows = {n: h for n, h, _m in KERNEL_CACHE.stats().by_kernel}
            return rows.get("domination_number", 0)

        # The successful job's kernel result is already cached.
        hits_before = _domination_hits()
        domination_number(cycle(6))
        assert _domination_hits() == hits_before + 1

    def test_rejects_non_positive_jobs(self):
        with pytest.raises(Exception, match="jobs"):
            run_batch([], jobs=0)

    def test_warmup_runs_before_jobs(self):
        batch = run_batch(
            [Job(name="geq", fn=equal_domination_number, args=(cycle(4),))],
            jobs=1,
            warmup=_warm_cycle4,
        )
        # The warmup primed the cache, so the job itself only hits.
        assert batch.results[0].stats.misses == 0
        assert batch.results[0].stats.hits >= 1

    def test_digraph_pickle_round_trip(self):
        g = random_digraph(6, random.Random(3), 0.4)
        clone = pickle.loads(pickle.dumps(g))
        assert clone == g and hash(clone) == hash(g)


def _warm_cycle4():
    equal_domination_number(cycle(4))


class TestDiagnostics:
    def test_cache_probe_reports_warm_hits(self):
        report = cache_probe(n=4, passes=2)
        assert len(report.pass_times) == 2
        assert report.stats.hits > 0
        assert report.speedup > 0
        assert "warm speedup" in report.describe()

    def test_cache_probe_rejects_single_pass(self):
        with pytest.raises(ValueError):
            cache_probe(n=4, passes=1)
