"""Tests for the distributed executor (repro.dist).

Covers the wire protocol, the executor protocol equivalence
(serial == pool == dist), at-least-once delivery (requeue on worker
death and on lease expiry), the coordinator-only SQLite write invariant,
and a full coordinator + worker-subprocesses integration run of the
sweep machinery.
"""

from __future__ import annotations

import operator
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro.store as store_pkg
from repro.analysis.sweeps import solvability_sweep
from repro.dist import (
    CheckpointWriter,
    Coordinator,
    DistExecutor,
    PoolExecutor,
    SerialExecutor,
    Supervisor,
    load_checkpoint,
    make_executor,
    parse_address,
    probe_status,
    resolve_spawn,
)
from repro.dist import protocol as protocol_module
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    request,
    send_message,
)
from repro.dist.worker import run_worker
from repro.engine import (
    KERNEL_CACHE,
    Job,
    JobFailure,
    JobResult,
    Reduction,
    execute_job,
)
from repro.errors import DistError


def _mul_jobs(count: int = 6) -> list[Job]:
    """Trivial picklable jobs with distinct, order-revealing values."""
    return [Job(f"mul[{i}]", operator.mul, (i, 7)) for i in range(count)]


@pytest.fixture
def fresh_cache():
    KERNEL_CACHE.clear()
    yield
    KERNEL_CACHE.clear()


@pytest.fixture
def tmp_store(tmp_path):
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "dist.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


class _FakeWorker:
    """A raw protocol client: lets tests drive (and abuse) the wire."""

    def __init__(self, address, name="fake"):
        self.sock = socket.create_connection(address, timeout=10.0)
        self.name = name

    def handshake(self, version=PROTOCOL_VERSION, **extra):
        hello = {"version": version, "worker": self.name, **extra}
        return request(self.sock, "hello", hello)

    def drain_seed(self) -> int:
        """Read the handshake's seed stream; returns total rows shipped."""
        rows = 0
        while True:
            kind, payload = recv_message(self.sock)
            assert kind == "store_seed", kind
            rows += len(payload.get("rows") or ())
            if payload.get("done"):
                return rows

    def next_job(self):
        return request(self.sock, "next", {})

    def request_bye(self):
        send_message(self.sock, "bye", {})

    def finish(self, index, job):
        outcome = execute_job(job)
        if isinstance(outcome, JobFailure):
            outcome = outcome.sanitized()
        return request(self.sock, "result", {"index": index, "outcome": outcome})

    def close(self):
        self.sock.close()


class TestProtocol:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, "job", {"index": 3, "payload": [1, 2, 3]})
            kind, payload = recv_message(b)
            assert kind == "job"
            assert payload == {"index": 3, "payload": [1, 2, 3]}
        finally:
            a.close()
            b.close()

    def test_eof_is_none_and_torn_frame_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")  # half a length header, then EOF
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_version_mismatch_rejected_by_coordinator(self):
        with Coordinator(_mul_jobs(1)) as coord:
            client = _FakeWorker(coord.address)
            try:
                kind, payload = client.handshake(version=999)
                assert kind == "reject"
                assert "999" in payload["reason"]
            finally:
                client.close()


class TestParseAddress:
    def test_forms(self):
        assert parse_address("1.2.3.4:9000") == ("1.2.3.4", 9000)
        assert parse_address(":7071") == ("127.0.0.1", 7071)
        assert parse_address("7071") == ("127.0.0.1", 7071)

    def test_rejects_garbage_and_bad_ports(self):
        with pytest.raises(DistError):
            parse_address("host:notaport")
        with pytest.raises(DistError):
            parse_address("host:70000")


class TestMakeExecutor:
    def test_selection(self):
        assert isinstance(make_executor(jobs=1), SerialExecutor)
        assert isinstance(make_executor(jobs=3), PoolExecutor)
        dist = make_executor(jobs=3, distributed=":0")
        assert isinstance(dist, DistExecutor)
        assert (dist.host, dist.port) == ("127.0.0.1", 0)


def _serve_with_local_worker(tasks, *, on_error="raise", **coord_kwargs):
    """Run a batch through a Coordinator served by one in-thread worker."""
    coord = Coordinator(tasks, **coord_kwargs)
    host, port = coord.start()
    thread = threading.Thread(
        target=run_worker, args=(host, port), daemon=True
    )
    thread.start()
    result = coord.serve(on_error=on_error)
    thread.join(timeout=10.0)
    return result


class TestEquivalence:
    def test_serial_pool_dist_identical_values(self, fresh_cache):
        tasks = _mul_jobs(8)
        serial = SerialExecutor().run(tasks)
        pool = PoolExecutor(2).run(tasks)
        dist = _serve_with_local_worker(tasks)
        assert serial.values == pool.values == dist.values
        assert [r.name for r in dist.results] == [t.name for t in tasks]

    def test_dist_executor_on_bound_and_counters(self, fresh_cache):
        tasks = _mul_jobs(5)
        bound = {}

        def launch(address):
            bound["address"] = address
            threading.Thread(
                target=run_worker, args=address, daemon=True
            ).start()

        executor = DistExecutor(":0", on_bound=launch)
        result = executor.run(tasks)
        assert result.values == tuple(i * 7 for i in range(5))
        assert executor.bound_address == bound["address"]
        assert executor.last_workers == 1
        assert executor.last_requeues == 0

    def test_dist_failures_surface_with_job_names(self, fresh_cache):
        tasks = [
            Job("ok", operator.mul, (3, 7)),
            Job("boom", operator.truediv, (1, 0)),
        ]
        result = _serve_with_local_worker(tasks, on_error="collect")
        assert result.values == (21,)
        (failure,) = result.failures
        assert failure.name == "boom"
        assert failure.index == 1
        assert "ZeroDivisionError" in failure.message
        assert "division by zero" in failure.traceback


def _sum_values(values):
    return sum(values)


def _sum_values_pid(values):
    return (sum(values), os.getpid())


class TestCoordinatorReductions:
    """Two-phase plans through the distributed executor."""

    def test_reductions_fire_on_the_coordinator(self, fresh_cache):
        tasks = _mul_jobs(6)
        reductions = [
            Reduction("sum:low", _sum_values_pid, over=(0, 1, 2)),
            Reduction("sum:high", _sum_values_pid, over=(3, 4, 5)),
        ]
        coord = Coordinator(tasks, reductions=reductions)
        host, port = coord.start()
        thread = threading.Thread(
            target=run_worker, args=(host, port), daemon=True
        )
        thread.start()
        result = coord.serve()
        thread.join(timeout=10.0)
        assert result.values == tuple(i * 7 for i in range(6))
        assert [r.value for r in result.reduction_results] == [
            (0 + 7 + 14, os.getpid()),  # reductions ran in *this* process
            (21 + 28 + 35, os.getpid()),
        ]
        snapshot = coord.status_snapshot()
        assert snapshot["reductions_total"] == 2
        assert snapshot["reductions_done"] == 2

    def test_dist_reductions_match_serial(self, fresh_cache):
        tasks = _mul_jobs(4)
        reductions = [Reduction("sum", _sum_values, over=(0, 1, 2, 3))]
        serial = SerialExecutor().run(tasks, reductions=reductions)
        dist = _serve_with_local_worker(tasks, reductions=reductions)
        assert serial.values == dist.values
        assert [r.value for r in serial.reduction_results] == [
            r.value for r in dist.reduction_results
        ]

    def test_reduction_failure_surfaces_in_collect_mode(self, fresh_cache):
        tasks = [
            Job("ok", operator.mul, (3, 7)),
            Job("boom", operator.truediv, (1, 0)),
        ]
        reductions = [Reduction("sum", _sum_values, over=(0, 1))]
        result = _serve_with_local_worker(
            tasks, on_error="collect", reductions=reductions
        )
        assert {f.name for f in result.failures} == {"boom", "sum"}
        assert result.reduction_results == (None,)  # slot kept, not fired


class TestDistMetricsInBatchResult:
    """Coordinator-side metrics threaded onto the batch result."""

    def test_serial_has_no_dist_metrics(self, fresh_cache):
        tasks = _mul_jobs(3)
        assert SerialExecutor().run(tasks).dist_metrics is None

    def test_pool_fills_dist_metrics_in_coordinator_shape(self, fresh_cache):
        """Pool runs report per-worker-process metrics like dist runs do."""
        metrics = PoolExecutor(2).run(_mul_jobs(5)).dist_metrics
        assert metrics is not None
        assert metrics["requeues"] == 0
        assert metrics["rows_seeded"] == 0
        assert metrics["loads_served"] == 0
        assert sum(w["completed"] for w in metrics["workers"]) == 5
        for snapshot in metrics["workers"]:
            assert {
                "worker",
                "completed",
                "failed",
                "seeded_rows",
                "loads_served",
                "elapsed",
                "jobs_per_minute",
                "idle",
            } <= set(snapshot)

    def test_dist_metrics_report_per_worker_throughput(self, fresh_cache):
        tasks = _mul_jobs(5)
        executor = DistExecutor(
            ":0",
            on_bound=lambda address: threading.Thread(
                target=run_worker, args=address, daemon=True
            ).start(),
        )
        result = executor.run(tasks)
        metrics = result.dist_metrics
        assert metrics is not None
        assert metrics["requeues"] == executor.last_requeues == 0
        assert metrics["rows_seeded"] == executor.last_rows_seeded
        assert metrics["loads_served"] == executor.last_loads_served
        assert executor.last_metrics is metrics
        (worker,) = metrics["workers"]
        assert worker["completed"] == len(tasks)
        assert worker["failed"] == 0
        assert worker["jobs_per_minute"] > 0

    def test_seeded_run_metrics_count_rows_seeded(self, tmp_store):
        graphs = _warm_domination_store(tmp_store)
        from repro.combinatorics.domination import domination_number

        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        coord = Coordinator(tasks)
        address = coord.start()
        worker = _spawn_cli_worker(address, _storeless_worker_env())
        result = coord.serve()
        worker.communicate(timeout=30)
        metrics = result.dist_metrics
        assert metrics["rows_seeded"] >= len(graphs)
        (worker_row,) = metrics["workers"]
        assert worker_row["seeded_rows"] == metrics["rows_seeded"]


class TestAtLeastOnce:
    def test_requeue_when_worker_dies_holding_a_job(self, fresh_cache):
        tasks = _mul_jobs(3)
        with Coordinator(tasks, wait_delay=0.05) as coord:
            doomed = _FakeWorker(coord.address, name="doomed")
            kind, _ = doomed.handshake()
            assert kind == "welcome"
            kind, payload = doomed.next_job()
            assert kind == "job"
            held_index = payload["index"]
            doomed.close()  # dies mid-job: the lease must be requeued

            deadline = time.monotonic() + 5.0
            while coord.requeues == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert coord.requeues == 1

            # A healthy worker now completes everything, including the
            # requeued job the dead worker took down with it.
            host, port = coord.address
            threading.Thread(
                target=run_worker, args=(host, port), daemon=True
            ).start()
            result = coord.serve()
        assert result.values == tuple(i * 7 for i in range(3))
        assert held_index in range(3)

    def test_requeue_when_lease_expires_without_heartbeat(self, fresh_cache):
        tasks = _mul_jobs(2)
        with Coordinator(tasks, lease_timeout=0.3, wait_delay=0.05) as coord:
            silent = _FakeWorker(coord.address, name="silent")
            silent.handshake()
            kind, payload = silent.next_job()
            assert kind == "job"
            taken = payload["index"]
            try:
                # Stay connected but never heartbeat or answer: a wedged
                # worker.  The monitor must reclaim the job.
                deadline = time.monotonic() + 5.0
                while coord.requeues == 0 and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert coord.requeues == 1

                rescuer = _FakeWorker(coord.address, name="rescuer")
                rescuer.handshake()
                seen = set()
                reply = rescuer.next_job()
                for _ in range(10):
                    kind, payload = reply
                    if kind == "done":
                        break
                    if kind == "wait":
                        time.sleep(payload["delay"])
                        reply = rescuer.next_job()
                        continue
                    index = payload["index"]
                    seen.add(index)
                    # result replies piggyback the next directive
                    reply = rescuer.finish(index, tasks[index])
                rescuer.close()
                assert taken in seen  # the reclaimed job really was re-served
            finally:
                silent.close()
            result = coord.serve()
        assert result.values == (0, 7)

    def test_duplicate_result_ignored(self, fresh_cache):
        tasks = _mul_jobs(1)
        with Coordinator(tasks, lease_timeout=0.2, wait_delay=0.05) as coord:
            slow = _FakeWorker(coord.address, name="slow")
            slow.handshake()
            kind, payload = slow.next_job()
            assert kind == "job"
            index = payload["index"]
            # Let the lease expire, get the job requeued and completed by
            # someone else, then deliver the stale duplicate.
            deadline = time.monotonic() + 5.0
            while coord.requeues == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            fast = _FakeWorker(coord.address, name="fast")
            fast.handshake()
            kind, payload2 = fast.next_job()
            assert kind == "job" and payload2["index"] == index
            fast.finish(index, tasks[index])
            fast.close()
            kind, _ = slow.finish(index, tasks[index])  # late duplicate
            assert kind == "done"
            slow.close()
            # The dropped duplicate must not inflate the status probe's
            # per-worker throughput: only the winning result counts.
            per_worker = {
                w["worker"]: w["completed"]
                for w in coord.status_snapshot()["workers"]
            }
            assert per_worker == {"fast": 1, "slow": 0}
            result = coord.serve()
        assert result.values == (0,)


class TestStoreInvariant:
    def test_worker_mode_defers_all_writes(self, tmp_store):
        tmp_store.worker_mode = True
        tmp_store.save("k", "1", ("key",), 42)
        assert tmp_store.flush() == 0
        assert not os.path.exists(tmp_store.path)  # nothing ever hit SQLite
        delta = tmp_store.export_delta()
        assert len(delta.rows) == 1
        assert delta.stats.writes == 1
        tmp_store.worker_mode = False
        tmp_store.import_delta(delta)
        assert os.path.exists(tmp_store.path)
        assert tmp_store.load("k", "1", ("key",)) == 42

    def test_in_thread_worker_with_rw_store_loses_nothing(self, tmp_store):
        """Regression: a worker thread sharing the coordinator's process
        must not flip the shared store into deferred-write mode — rows
        have to reach SQLite and the farewell exchange must complete."""
        from repro.combinatorics.domination import domination_number
        from repro.graphs.families import cycle, star, wheel

        graphs = [cycle(5), star(5), wheel(5)]
        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        coord = Coordinator(tasks)
        host, port = coord.start()
        outcome = {}
        thread = threading.Thread(
            target=lambda: outcome.update(report=run_worker(host, port)),
            daemon=True,
        )
        thread.start()
        result = coord.serve()
        thread.join(timeout=10.0)
        assert result.store_stats is not None
        assert result.store_stats.writes >= 3
        assert outcome["report"].clean, "farewell exchange did not complete"
        assert not tmp_store.worker_mode
        # Local-worker activity must not be absorbed twice: the store's
        # totals equal the batch's per-job deltas, not double them.
        assert tmp_store.stats().writes == result.store_stats.writes
        assert KERNEL_CACHE.stats().lookups == result.stats.lookups
        # The rows are genuinely in SQLite, not stranded in a buffer.
        fresh = store_pkg.ResultStore(tmp_store.path, mode="ro")
        version = domination_number.kernel_version
        from repro.engine import iso_key

        assert (
            fresh.load("domination_number", version, iso_key(cycle(5)))
            is not store_pkg.MISS
        )
        fresh.close()

    def test_coordinator_is_the_only_writer(self, tmp_store):
        """A dist batch against an rw store: a real worker subprocess
        computes, but the rows land only via the coordinator's flushes."""
        from repro.combinatorics.domination import domination_number
        from repro.graphs.families import cycle, star, wheel

        graphs = [cycle(5), star(5), wheel(5)]
        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["REPRO_STORE"] = "rw"
        env["REPRO_STORE_PATH"] = tmp_store.path
        coord = Coordinator(tasks)
        address = coord.start()
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"{address[0]}:{address[1]}", "--retry", "30",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        result = coord.serve()
        out, _ = worker.communicate(timeout=30)
        assert worker.returncode == 0, out
        assert result.values == tuple(
            domination_number.__wrapped__(g) for g in graphs
        )
        assert result.store_stats is not None
        assert result.store_stats.writes >= 3
        info = tmp_store.db_stats()
        kernels = {row["kernel"] for row in info["kernels"]}
        assert "domination_number" in kernels


class TestWorkerSubprocesses:
    """Coordinator + real `python -m repro worker` subprocesses."""

    @staticmethod
    def _spawn_worker(address, env, jobs=1):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"{address[0]}:{address[1]}",
                "--retry", "30", "--jobs", str(jobs),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_sweep_distributed_matches_serial(self, tmp_path, fresh_cache):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["REPRO_STORE"] = "off"
        with store_pkg.RESULT_STORE.disabled():
            serial = solvability_sweep(3, limit=6, executor=SerialExecutor())
            KERNEL_CACHE.clear()

            workers = []
            executor = DistExecutor(
                ":0",
                on_bound=lambda address: workers.extend(
                    self._spawn_worker(address, env) for _ in range(2)
                ),
            )
            dist = solvability_sweep(3, limit=6, executor=executor)
        try:
            assert dist.rows == serial.rows
            assert dist.headers == serial.headers
            served = 0
            for worker in workers:
                out, _ = worker.communicate(timeout=30)
                assert worker.returncode == 0, out
                match = re.search(r"(\d+) job\(s\) completed", out)
                assert match, f"worker never reported: {out}"
                served += int(match.group(1))
            # Every shard ran remotely (>= because requeues may replay).
            assert served >= 6
            assert executor.last_workers == 2
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()

    def test_killed_worker_subprocess_requeues(self, fresh_cache):
        """Kill -9 a real worker mid-job; the batch must still finish."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["REPRO_STORE"] = "off"
        tasks = [Job("nap", time.sleep, (30.0,))] + _mul_jobs(2)
        coord = Coordinator(tasks, wait_delay=0.05)
        address = coord.start()
        victim = self._spawn_worker(address, env)
        # The victim takes the 30s nap job first (submission order).
        deadline = time.monotonic() + 20.0
        while not coord._leases and time.monotonic() < deadline:
            time.sleep(0.05)
        assert coord._leases, "victim never leased a job"
        victim.kill()
        deadline = time.monotonic() + 10.0
        while coord.requeues == 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert coord.requeues >= 1
        # Replace the nap with an instant job so the rescuer finishes:
        # at-least-once semantics let us swap the *task list* only because
        # nothing completed yet and the index is the identity.
        coord._tasks[0] = Job("nap", operator.mul, (6, 7))
        host, port = address
        threading.Thread(
            target=run_worker, args=(host, port), daemon=True
        ).start()
        result = coord.serve()
        victim.communicate(timeout=10)
        assert result.values == (42, 0, 7)


class TestProtocolFraming:
    """Framing edge cases, exercised directly rather than via clients."""

    def test_send_refuses_oversized_frame(self, monkeypatch):
        monkeypatch.setattr(protocol_module, "MAX_FRAME", 64)
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError, match="refusing to send"):
                send_message(a, "blob", bytes(1024))
            # Nothing reached the wire: the peer sees a clean idle socket.
            b.setblocking(False)
            with pytest.raises(BlockingIOError):
                b.recv(1)
        finally:
            a.close()
            b.close()

    def test_truncated_payload_raises(self):
        a, b = socket.socketpair()
        try:
            # Header promises 100 bytes; only 4 arrive before EOF.
            a.sendall((100).to_bytes(4, "big") + b"torn")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_header_without_payload_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall((100).to_bytes(4, "big"))
            a.close()
            with pytest.raises(
                ProtocolError, match="between header and payload"
            ):
                recv_message(b)
        finally:
            b.close()

    def test_undecodable_payload_raises(self):
        a, b = socket.socketpair()
        try:
            garbage = b"\x93not a pickle"
            a.sendall(len(garbage).to_bytes(4, "big") + garbage)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_pair_pickle_raises(self):
        import pickle

        a, b = socket.socketpair()
        try:
            blob = pickle.dumps((1, 2, 3))  # not a (kind, payload) pair
            a.sendall(len(blob).to_bytes(4, "big") + blob)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_string_kind_raises(self):
        import pickle

        a, b = socket.socketpair()
        try:
            blob = pickle.dumps((42, {}))
            a.sendall(len(blob).to_bytes(4, "big") + blob)
            with pytest.raises(ProtocolError, match="kind must be a string"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_worker_refuses_on_version_mismatch(self, monkeypatch):
        """run_worker itself (not just the fake client) must surface a
        coordinator's version rejection as a DistError."""
        import repro.dist.worker as worker_module

        monkeypatch.setattr(worker_module, "PROTOCOL_VERSION", 999)
        with Coordinator(_mul_jobs(1)) as coord:
            host, port = coord.address
            with pytest.raises(DistError, match="999"):
                run_worker(host, port, retry=5.0)

    def test_status_probe_version_mismatch_rejected(self, monkeypatch):
        import repro.dist.executor as executor_module

        with Coordinator(_mul_jobs(1)) as coord:
            monkeypatch.setattr(executor_module, "PROTOCOL_VERSION", 999)
            with pytest.raises(DistError, match="rejected"):
                probe_status(coord.address)


def _warm_domination_store(store):
    """Compute three domination kernels into ``store``; returns graphs."""
    from repro.combinatorics.domination import domination_number
    from repro.graphs.families import cycle, star, wheel

    graphs = [cycle(5), star(5), wheel(5)]
    for g in graphs:
        domination_number(g)
    store.flush()
    KERNEL_CACHE.clear()
    return graphs


def _storeless_worker_env() -> dict:
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src)
    env["REPRO_STORE"] = "off"
    return env


def _spawn_cli_worker(address, env):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"{address[0]}:{address[1]}", "--retry", "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


class TestNetworkWarmStart:
    """Store seeding, remote loads, and the status probe (PR 4)."""

    def test_seeded_worker_recomputes_nothing(self, tmp_store):
        """A worker with an *empty* local store, seeded at handshake,
        serves every kernel from the seed tier: zero misses, zero
        writes, identical values."""
        from repro.combinatorics.domination import domination_number

        graphs = _warm_domination_store(tmp_store)
        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        coord = Coordinator(tasks)
        address = coord.start()
        worker = _spawn_cli_worker(address, _storeless_worker_env())
        result = coord.serve()
        out, _ = worker.communicate(timeout=30)
        assert worker.returncode == 0, out
        assert "store row(s) seeded" in out
        assert result.values == tuple(
            domination_number.__wrapped__(g) for g in graphs
        )
        stats = result.store_stats
        assert stats is not None
        assert stats.seed_hits >= 1
        assert stats.misses == 0  # nothing recomputed
        assert stats.writes == 0  # nothing recomputed, so nothing to bank
        assert stats.hits == stats.seed_hits
        assert coord.rows_seeded >= len(graphs)

    def test_remote_loads_serve_unseeded_misses(self, tmp_store):
        """With seeding off but remote loads on, worker store misses are
        answered by the coordinator's store over the wire."""
        from repro.combinatorics.domination import domination_number

        graphs = _warm_domination_store(tmp_store)
        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        coord = Coordinator(tasks, seed_store=False, remote_loads=True)
        address = coord.start()
        worker = _spawn_cli_worker(address, _storeless_worker_env())
        result = coord.serve()
        out, _ = worker.communicate(timeout=30)
        assert worker.returncode == 0, out
        stats = result.store_stats
        assert stats.remote_hits >= 1
        assert stats.seed_hits == 0
        assert stats.misses == 0
        assert coord.rows_seeded == 0
        assert coord.loads_served == stats.remote_hits

    def test_seeding_skipped_for_in_process_worker(self, tmp_store):
        """An in-process worker reads the coordinator's store directly;
        streaming it a copy would only duplicate memory."""
        from repro.combinatorics.domination import domination_number

        graphs = _warm_domination_store(tmp_store)
        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        result = _serve_with_local_worker(tasks)
        assert result.values == tuple(
            domination_number.__wrapped__(g) for g in graphs
        )
        assert result.store_stats.seed_hits == 0
        assert result.store_stats.remote_hits == 0
        assert not tmp_store.worker_mode
        assert tmp_store.remote_tier is None
        assert tmp_store.seed_rows == 0

    def test_status_probe_reports_queue_and_seed_counters(self, tmp_store):
        graphs = _warm_domination_store(tmp_store)
        from repro.combinatorics.domination import domination_number

        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        coord = Coordinator(tasks)
        address = coord.start()
        try:
            status = probe_status(address)
            assert status["jobs"] == len(tasks)
            assert status["queue_depth"] == len(tasks)
            assert status["completed"] == 0
            assert status["leases"] == 0
            assert status["seed_store"] is True
            assert status["workers"] == []
            worker = _spawn_cli_worker(address, _storeless_worker_env())
            result = coord.serve()
            worker.communicate(timeout=30)
            snapshot = coord.status_snapshot()
            assert snapshot["completed"] == len(tasks)
            assert snapshot["queue_depth"] == 0
            assert snapshot["rows_seeded"] >= len(graphs)
            (worker_row,) = snapshot["workers"]
            assert worker_row["completed"] == len(tasks)
            assert worker_row["seeded_rows"] == snapshot["rows_seeded"]
            assert worker_row["jobs_per_minute"] > 0
            assert result.values == tuple(
                domination_number.__wrapped__(g) for g in graphs
            )
        finally:
            coord.close()

    def test_status_probe_dead_port_raises(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(DistError, match="no coordinator"):
            probe_status(("127.0.0.1", port), timeout=1.0)

    def test_cli_dist_status(self, tmp_store, capsys):
        from repro.__main__ import main

        with Coordinator(_mul_jobs(4)) as coord:
            host, port = coord.address
            assert main(["dist", "status", f"{host}:{port}"]) == 0
            out = capsys.readouterr().out
            assert "0/4 jobs done" in out
            assert "queue depth 4" in out
            assert main(["dist", "status", f"{host}:{port}", "--json"]) == 0
            payload = __import__("json").loads(capsys.readouterr().out)
            assert payload["queue_depth"] == 4

    def test_seeded_sweep_cold_remote_equals_warm(self, tmp_store):
        """Acceptance: workers with empty local stores, seeded from the
        coordinator's warm store, reproduce the serial E10-style sweep
        with >=1 seeded hit and zero recomputation of seeded kernels."""
        serial = solvability_sweep(3, limit=6, executor=SerialExecutor())
        tmp_store.flush()
        KERNEL_CACHE.clear()

        env = _storeless_worker_env()
        workers = []
        executor = DistExecutor(
            ":0",
            on_bound=lambda address: workers.extend(
                _spawn_cli_worker(address, env) for _ in range(2)
            ),
        )
        dist = solvability_sweep(3, limit=6, executor=executor)
        try:
            assert dist.rows == serial.rows
            assert dist.headers == serial.headers
            stats = dist.batch.store_stats
            assert stats is not None
            assert stats.seed_hits >= 1
            shard = {
                name: (h, m, w)
                for name, h, m, w in stats.by_kernel
            }["solvability_shard"]
            hits, misses, writes = shard
            assert hits == 6  # every shard answered warm
            assert misses == 0  # zero recomputation of seeded kernels
            assert writes == 0
            assert executor.last_rows_seeded >= 1
            assert dist.resumed == dist.sharded == 6
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()
                else:
                    worker.communicate(timeout=10)


class TestIncrementalSeeding:
    """Reconnecting workers advertise a per-kernel seed-tier digest at
    handshake; tiers whose content matches the coordinator's are skipped
    by the seed stream — only new rows travel (PR 9)."""

    def test_seed_digest_shape_and_content_sensitivity(self, tmp_store):
        from repro.combinatorics.domination import domination_number
        from repro.graphs.families import path

        assert tmp_store.seed_digest() == {}  # empty tiers are omitted
        _warm_domination_store(tmp_store)
        digest = tmp_store.seed_digest()
        assert digest, "warm store must advertise at least one tier"
        for (kernel, version), value in digest.items():
            assert isinstance(kernel, str) and isinstance(version, str)
            count, _, content = value.partition(":")
            assert int(count) >= 1
            assert re.fullmatch(r"[0-9a-f]{16}", content)
        # Same logical content, same digest.
        assert tmp_store.seed_digest() == digest
        # One new row moves exactly that kernel's tier.
        domination_number(path(5))
        tmp_store.flush()
        KERNEL_CACHE.clear()
        after = tmp_store.seed_digest()
        assert after != digest
        changed = {pair for pair in digest if after[pair] != digest[pair]}
        # The new graph lands in domination_number plus its helper
        # kernels (iso_key, the certificate) — never anything else.
        assert "domination_number" in {kernel for kernel, _ in changed}
        for pair in changed:
            before_count = int(digest[pair].partition(":")[0])
            after_count = int(after[pair].partition(":")[0])
            assert after_count > before_count

    def test_fresh_worker_without_digest_gets_full_stream(self, tmp_store):
        graphs = _warm_domination_store(tmp_store)
        with Coordinator([], persistent=True) as coord:
            worker = _FakeWorker(coord.address)
            try:
                kind, welcome = worker.handshake()
                assert kind == "welcome"
                assert welcome["seed"]["enabled"]
                assert worker.drain_seed() >= len(graphs)
                worker.request_bye()
            finally:
                worker.close()
            assert coord.rows_seeded >= len(graphs)

    def test_matching_digest_skips_every_tier(self, tmp_store):
        _warm_domination_store(tmp_store)
        digest = tmp_store.seed_digest()
        with Coordinator([], persistent=True) as coord:
            worker = _FakeWorker(coord.address)
            try:
                kind, welcome = worker.handshake(seed_digest=digest)
                assert kind == "welcome"
                assert welcome["seed"]["enabled"]
                assert worker.drain_seed() == 0  # nothing new: zero rows
                worker.request_bye()
            finally:
                worker.close()
            assert coord.rows_seeded == 0

    def test_stale_tier_streams_in_full_others_skipped(self, tmp_store):
        graphs = _warm_domination_store(tmp_store)
        digest = dict(tmp_store.seed_digest())
        # Pretend the worker's domination tier is out of date: the
        # coordinator must re-stream that tier (dedup on the worker
        # makes over-sending harmless) and still skip the rest.
        stale = next(
            pair for pair in digest if pair[0] == "domination_number"
        )
        digest[stale] = "0:" + "0" * 16
        with Coordinator([], persistent=True) as coord:
            worker = _FakeWorker(coord.address)
            try:
                worker.handshake(seed_digest=digest)
                rows = worker.drain_seed()
            finally:
                worker.request_bye()
                worker.close()
            assert rows >= len(graphs)
            tier_count = int(
                tmp_store.seed_digest()[stale].partition(":")[0]
            )
            assert rows == tier_count  # exactly the stale tier, no more


def _crash_once(sentinel: str, value: int) -> int:
    """Kill the executing worker the first time, succeed ever after.

    The sentinel file is the cross-generation memory: generation 1
    creates it and SIGKILLs itself mid-job (no report, no farewell —
    exactly the crash the supervisor must detect), generation 2 finds it
    and completes normally.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 7


def _crash_always(value: int) -> int:
    """Kill the executing worker unconditionally (budget-exhaustion)."""
    os.kill(os.getpid(), signal.SIGKILL)
    return value  # pragma: no cover - never reached


class TestCostScaledLeases:
    """Leases scale with the planner's per-job cost estimate (PR 10)."""

    def _costed_tasks(self):
        return [
            Job("cheap", operator.mul, (1, 7), cost=1.0),
            Job("heavy-a", operator.mul, (2, 7), cost=9.0),
            Job("heavy-b", operator.mul, (3, 7), cost=9.0),
            Job("heavy-c", operator.mul, (4, 7), cost=9.0),
        ]

    def test_lease_scales_with_cost_and_clamps(self):
        with Coordinator(self._costed_tasks(), lease_timeout=4.0) as coord:
            assert coord.status_snapshot()["lease_scaling"] is True
            with coord._lock:
                cheap = coord._lease_timeout_for(0)
                heavy = coord._lease_timeout_for(1)
            # cost 1 vs median 9 hits the 0.25x clamp; the median-cost
            # jobs keep the base timeout.
            assert cheap == pytest.approx(4.0 * 0.25)
            assert heavy == pytest.approx(4.0)
            assert cheap >= 3 * coord._heartbeat  # heartbeats fit inside

    def test_costless_batch_keeps_fixed_leases(self):
        with Coordinator(_mul_jobs(2), lease_timeout=4.0) as coord:
            assert coord.status_snapshot()["lease_scaling"] is False
            with coord._lock:
                assert coord._lease_timeout_for(0) == pytest.approx(4.0)
                assert coord._lease_timeout_for(1) == pytest.approx(4.0)

    def test_wedged_worker_on_cheap_job_requeues_early(self, fresh_cache):
        """A silent worker holding a *cheap* job loses its lease on the
        cost-scaled deadline (1s here) — well before the old fixed
        timeout (4s) would have reclaimed it."""
        tasks = self._costed_tasks()
        with Coordinator(
            tasks, lease_timeout=4.0, wait_delay=0.05
        ) as coord:
            silent = _FakeWorker(coord.address, name="silent")
            silent.handshake()
            kind, payload = silent.next_job()
            assert kind == "job"
            assert payload["index"] == 0  # FIFO: the cheap job
            start = time.monotonic()
            try:
                deadline = start + 3.5
                while coord.requeues == 0 and time.monotonic() < deadline:
                    time.sleep(0.02)
                elapsed = time.monotonic() - start
                assert coord.requeues >= 1
                assert elapsed < 3.5  # reclaimed before the base timeout
            finally:
                silent.close()


class TestDistCheckpoint:
    """Coordinator-side checkpoint recording and completed-job replay."""

    def test_completed_jobs_replay_in_parent_not_redispatch(
        self, fresh_cache
    ):
        tasks = _mul_jobs(4)
        result = _serve_with_local_worker(tasks, completed=[0, 2])
        assert result.values == (0, 7, 14, 21)
        metrics = result.dist_metrics
        assert metrics["replayed"] == 2
        # The worker only ever saw the two non-replayed jobs.
        assert sum(w["completed"] for w in metrics["workers"]) == 2

    def test_serve_records_checkpoint_completions(
        self, fresh_cache, tmp_path
    ):
        tasks = _mul_jobs(4)
        path = tmp_path / "dist.ckpt"
        writer = CheckpointWriter(
            path=path,
            fingerprint="fp",
            tasks=tuple(t.name for t in tasks),
            interval=0.0,
        )
        result = _serve_with_local_worker(tasks, checkpoint=writer)
        assert result.values == (0, 7, 14, 21)
        state = load_checkpoint(path)
        assert state.fingerprint == "fp"
        assert set(state.completed) == {t.name for t in tasks}
        assert state.remaining == ()

    def test_persistent_coordinator_rejects_completed(self):
        with pytest.raises(DistError, match="batch-mode"):
            Coordinator([], persistent=True, completed=[0])

    def test_out_of_range_completed_rejected(self):
        with pytest.raises(DistError, match="completed"):
            Coordinator(_mul_jobs(2), completed=[5])


class TestSupervisor:
    """Worker supervision: crash detection, respawn, warm reconnect."""

    def test_resolve_spawn(self):
        assert resolve_spawn("auto") >= 1
        assert resolve_spawn("3") == 3
        assert resolve_spawn(2) == 2
        with pytest.raises(DistError, match="--spawn"):
            resolve_spawn("many")
        with pytest.raises(DistError, match="positive"):
            resolve_spawn("0")

    def _supervise_while_serving(self, coord, **kwargs):
        """Run a Supervisor against ``coord`` while serving its batch."""
        host, port = coord.address
        holder = {}

        def supervise():
            holder["report"] = Supervisor(
                host, port, retry=15.0, backoff=0.05, **kwargs
            ).run()

        thread = threading.Thread(target=supervise, daemon=True)
        thread.start()
        result = coord.serve()
        thread.join(timeout=30.0)
        assert "report" in holder, "supervisor did not finish"
        return result, holder["report"]

    def test_crashed_worker_respawns_and_batch_completes(
        self, fresh_cache, tmp_path
    ):
        sentinel = str(tmp_path / "crashed-once")
        tasks = [Job("crash", _crash_once, (sentinel, 3))] + _mul_jobs(3)
        with Coordinator(tasks, wait_delay=0.05) as coord:
            result, report = self._supervise_while_serving(
                coord, workers=1
            )
            assert coord.respawns == 1  # generation 2 announced itself
            snapshot = coord.status_snapshot()
        assert result.values == (21, 0, 7, 14)
        assert report.clean, report.errors
        assert report.respawns == 1
        assert report.launched == 2
        assert snapshot["respawns"] == 1

    def test_respawn_budget_exhaustion_reports_error(
        self, fresh_cache, tmp_path
    ):
        tasks = [Job("fatal", _crash_always, (1,))]
        with Coordinator(tasks, wait_delay=0.05) as coord:
            host, port = coord.address
            report = Supervisor(
                host, port, workers=1, retry=15.0, backoff=0.05,
                max_respawns=0,
            ).run()
        assert not report.clean
        assert report.respawns == 0
        assert "respawn budget exhausted" in report.errors[0]

    def test_respawned_worker_reconnects_warm(self, tmp_store, tmp_path):
        """Both generations of a supervised worker share the machine's
        store, so their hello digests match the coordinator's tiers and
        the respawn re-seeds zero rows (PR 9 incremental seeding)."""
        from repro.combinatorics.domination import domination_number

        graphs = _warm_domination_store(tmp_store)
        sentinel = str(tmp_path / "crashed-once")
        tasks = [Job("crash", _crash_once, (sentinel, 3))] + [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        with Coordinator(tasks, wait_delay=0.05) as coord:
            result, report = self._supervise_while_serving(
                coord, workers=1
            )
            assert coord.respawns == 1
            assert coord.rows_seeded == 0  # both generations came warm
        assert report.clean and report.respawns == 1
        assert result.values[1:] == tuple(
            domination_number.__wrapped__(g) for g in graphs
        )
