"""Tests for the distributed executor (repro.dist).

Covers the wire protocol, the executor protocol equivalence
(serial == pool == dist), at-least-once delivery (requeue on worker
death and on lease expiry), the coordinator-only SQLite write invariant,
and a full coordinator + worker-subprocesses integration run of the
sweep machinery.
"""

from __future__ import annotations

import operator
import os
import re
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro.store as store_pkg
from repro.analysis.sweeps import solvability_sweep
from repro.dist import (
    Coordinator,
    DistExecutor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
    parse_address,
)
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    request,
    send_message,
)
from repro.dist.worker import run_worker
from repro.engine import KERNEL_CACHE, Job, JobFailure, JobResult, execute_job
from repro.errors import DistError


def _mul_jobs(count: int = 6) -> list[Job]:
    """Trivial picklable jobs with distinct, order-revealing values."""
    return [Job(f"mul[{i}]", operator.mul, (i, 7)) for i in range(count)]


@pytest.fixture
def fresh_cache():
    KERNEL_CACHE.clear()
    yield
    KERNEL_CACHE.clear()


@pytest.fixture
def tmp_store(tmp_path):
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "dist.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


class _FakeWorker:
    """A raw protocol client: lets tests drive (and abuse) the wire."""

    def __init__(self, address, name="fake"):
        self.sock = socket.create_connection(address, timeout=10.0)
        self.name = name

    def handshake(self, version=PROTOCOL_VERSION):
        return request(
            self.sock, "hello", {"version": version, "worker": self.name}
        )

    def next_job(self):
        return request(self.sock, "next", {})

    def finish(self, index, job):
        outcome = execute_job(job)
        if isinstance(outcome, JobFailure):
            outcome = outcome.sanitized()
        return request(self.sock, "result", {"index": index, "outcome": outcome})

    def close(self):
        self.sock.close()


class TestProtocol:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, "job", {"index": 3, "payload": [1, 2, 3]})
            kind, payload = recv_message(b)
            assert kind == "job"
            assert payload == {"index": 3, "payload": [1, 2, 3]}
        finally:
            a.close()
            b.close()

    def test_eof_is_none_and_torn_frame_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")  # half a length header, then EOF
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_version_mismatch_rejected_by_coordinator(self):
        with Coordinator(_mul_jobs(1)) as coord:
            client = _FakeWorker(coord.address)
            try:
                kind, payload = client.handshake(version=999)
                assert kind == "reject"
                assert "999" in payload["reason"]
            finally:
                client.close()


class TestParseAddress:
    def test_forms(self):
        assert parse_address("1.2.3.4:9000") == ("1.2.3.4", 9000)
        assert parse_address(":7071") == ("127.0.0.1", 7071)
        assert parse_address("7071") == ("127.0.0.1", 7071)

    def test_rejects_garbage_and_bad_ports(self):
        with pytest.raises(DistError):
            parse_address("host:notaport")
        with pytest.raises(DistError):
            parse_address("host:70000")


class TestMakeExecutor:
    def test_selection(self):
        assert isinstance(make_executor(jobs=1), SerialExecutor)
        assert isinstance(make_executor(jobs=3), PoolExecutor)
        dist = make_executor(jobs=3, distributed=":0")
        assert isinstance(dist, DistExecutor)
        assert (dist.host, dist.port) == ("127.0.0.1", 0)


def _serve_with_local_worker(tasks, *, on_error="raise", **coord_kwargs):
    """Run a batch through a Coordinator served by one in-thread worker."""
    coord = Coordinator(tasks, **coord_kwargs)
    host, port = coord.start()
    thread = threading.Thread(
        target=run_worker, args=(host, port), daemon=True
    )
    thread.start()
    result = coord.serve(on_error=on_error)
    thread.join(timeout=10.0)
    return result


class TestEquivalence:
    def test_serial_pool_dist_identical_values(self, fresh_cache):
        tasks = _mul_jobs(8)
        serial = SerialExecutor().run(tasks)
        pool = PoolExecutor(2).run(tasks)
        dist = _serve_with_local_worker(tasks)
        assert serial.values == pool.values == dist.values
        assert [r.name for r in dist.results] == [t.name for t in tasks]

    def test_dist_executor_on_bound_and_counters(self, fresh_cache):
        tasks = _mul_jobs(5)
        bound = {}

        def launch(address):
            bound["address"] = address
            threading.Thread(
                target=run_worker, args=address, daemon=True
            ).start()

        executor = DistExecutor(":0", on_bound=launch)
        result = executor.run(tasks)
        assert result.values == tuple(i * 7 for i in range(5))
        assert executor.bound_address == bound["address"]
        assert executor.last_workers == 1
        assert executor.last_requeues == 0

    def test_dist_failures_surface_with_job_names(self, fresh_cache):
        tasks = [
            Job("ok", operator.mul, (3, 7)),
            Job("boom", operator.truediv, (1, 0)),
        ]
        result = _serve_with_local_worker(tasks, on_error="collect")
        assert result.values == (21,)
        (failure,) = result.failures
        assert failure.name == "boom"
        assert failure.index == 1
        assert "ZeroDivisionError" in failure.message
        assert "division by zero" in failure.traceback


class TestAtLeastOnce:
    def test_requeue_when_worker_dies_holding_a_job(self, fresh_cache):
        tasks = _mul_jobs(3)
        with Coordinator(tasks, wait_delay=0.05) as coord:
            doomed = _FakeWorker(coord.address, name="doomed")
            kind, _ = doomed.handshake()
            assert kind == "welcome"
            kind, payload = doomed.next_job()
            assert kind == "job"
            held_index = payload["index"]
            doomed.close()  # dies mid-job: the lease must be requeued

            deadline = time.monotonic() + 5.0
            while coord.requeues == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert coord.requeues == 1

            # A healthy worker now completes everything, including the
            # requeued job the dead worker took down with it.
            host, port = coord.address
            threading.Thread(
                target=run_worker, args=(host, port), daemon=True
            ).start()
            result = coord.serve()
        assert result.values == tuple(i * 7 for i in range(3))
        assert held_index in range(3)

    def test_requeue_when_lease_expires_without_heartbeat(self, fresh_cache):
        tasks = _mul_jobs(2)
        with Coordinator(tasks, lease_timeout=0.3, wait_delay=0.05) as coord:
            silent = _FakeWorker(coord.address, name="silent")
            silent.handshake()
            kind, payload = silent.next_job()
            assert kind == "job"
            taken = payload["index"]
            try:
                # Stay connected but never heartbeat or answer: a wedged
                # worker.  The monitor must reclaim the job.
                deadline = time.monotonic() + 5.0
                while coord.requeues == 0 and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert coord.requeues == 1

                rescuer = _FakeWorker(coord.address, name="rescuer")
                rescuer.handshake()
                seen = set()
                reply = rescuer.next_job()
                for _ in range(10):
                    kind, payload = reply
                    if kind == "done":
                        break
                    if kind == "wait":
                        time.sleep(payload["delay"])
                        reply = rescuer.next_job()
                        continue
                    index = payload["index"]
                    seen.add(index)
                    # result replies piggyback the next directive
                    reply = rescuer.finish(index, tasks[index])
                rescuer.close()
                assert taken in seen  # the reclaimed job really was re-served
            finally:
                silent.close()
            result = coord.serve()
        assert result.values == (0, 7)

    def test_duplicate_result_ignored(self, fresh_cache):
        tasks = _mul_jobs(1)
        with Coordinator(tasks, lease_timeout=0.2, wait_delay=0.05) as coord:
            slow = _FakeWorker(coord.address, name="slow")
            slow.handshake()
            kind, payload = slow.next_job()
            assert kind == "job"
            index = payload["index"]
            # Let the lease expire, get the job requeued and completed by
            # someone else, then deliver the stale duplicate.
            deadline = time.monotonic() + 5.0
            while coord.requeues == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            fast = _FakeWorker(coord.address, name="fast")
            fast.handshake()
            kind, payload2 = fast.next_job()
            assert kind == "job" and payload2["index"] == index
            fast.finish(index, tasks[index])
            fast.close()
            kind, _ = slow.finish(index, tasks[index])  # late duplicate
            assert kind == "done"
            slow.close()
            result = coord.serve()
        assert result.values == (0,)


class TestStoreInvariant:
    def test_worker_mode_defers_all_writes(self, tmp_store):
        tmp_store.worker_mode = True
        tmp_store.save("k", "1", ("key",), 42)
        assert tmp_store.flush() == 0
        assert not os.path.exists(tmp_store.path)  # nothing ever hit SQLite
        delta = tmp_store.export_delta()
        assert len(delta.rows) == 1
        assert delta.stats.writes == 1
        tmp_store.worker_mode = False
        tmp_store.import_delta(delta)
        assert os.path.exists(tmp_store.path)
        assert tmp_store.load("k", "1", ("key",)) == 42

    def test_in_thread_worker_with_rw_store_loses_nothing(self, tmp_store):
        """Regression: a worker thread sharing the coordinator's process
        must not flip the shared store into deferred-write mode — rows
        have to reach SQLite and the farewell exchange must complete."""
        from repro.combinatorics.domination import domination_number
        from repro.graphs.families import cycle, star, wheel

        graphs = [cycle(5), star(5), wheel(5)]
        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        coord = Coordinator(tasks)
        host, port = coord.start()
        outcome = {}
        thread = threading.Thread(
            target=lambda: outcome.update(report=run_worker(host, port)),
            daemon=True,
        )
        thread.start()
        result = coord.serve()
        thread.join(timeout=10.0)
        assert result.store_stats is not None
        assert result.store_stats.writes >= 3
        assert outcome["report"].clean, "farewell exchange did not complete"
        assert not tmp_store.worker_mode
        # Local-worker activity must not be absorbed twice: the store's
        # totals equal the batch's per-job deltas, not double them.
        assert tmp_store.stats().writes == result.store_stats.writes
        assert KERNEL_CACHE.stats().lookups == result.stats.lookups
        # The rows are genuinely in SQLite, not stranded in a buffer.
        fresh = store_pkg.ResultStore(tmp_store.path, mode="ro")
        version = domination_number.kernel_version
        from repro.engine import iso_key

        assert (
            fresh.load("domination_number", version, iso_key(cycle(5)))
            is not store_pkg.MISS
        )
        fresh.close()

    def test_coordinator_is_the_only_writer(self, tmp_store):
        """A dist batch against an rw store: a real worker subprocess
        computes, but the rows land only via the coordinator's flushes."""
        from repro.combinatorics.domination import domination_number
        from repro.graphs.families import cycle, star, wheel

        graphs = [cycle(5), star(5), wheel(5)]
        tasks = [
            Job(f"dom[{i}]", domination_number, (g,))
            for i, g in enumerate(graphs)
        ]
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["REPRO_STORE"] = "rw"
        env["REPRO_STORE_PATH"] = tmp_store.path
        coord = Coordinator(tasks)
        address = coord.start()
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"{address[0]}:{address[1]}", "--retry", "30",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        result = coord.serve()
        out, _ = worker.communicate(timeout=30)
        assert worker.returncode == 0, out
        assert result.values == tuple(
            domination_number.__wrapped__(g) for g in graphs
        )
        assert result.store_stats is not None
        assert result.store_stats.writes >= 3
        info = tmp_store.db_stats()
        kernels = {row["kernel"] for row in info["kernels"]}
        assert "domination_number" in kernels


class TestWorkerSubprocesses:
    """Coordinator + real `python -m repro worker` subprocesses."""

    @staticmethod
    def _spawn_worker(address, env, jobs=1):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"{address[0]}:{address[1]}",
                "--retry", "30", "--jobs", str(jobs),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_sweep_distributed_matches_serial(self, tmp_path, fresh_cache):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["REPRO_STORE"] = "off"
        with store_pkg.RESULT_STORE.disabled():
            serial = solvability_sweep(3, limit=6, executor=SerialExecutor())
            KERNEL_CACHE.clear()

            workers = []
            executor = DistExecutor(
                ":0",
                on_bound=lambda address: workers.extend(
                    self._spawn_worker(address, env) for _ in range(2)
                ),
            )
            dist = solvability_sweep(3, limit=6, executor=executor)
        try:
            assert dist.rows == serial.rows
            assert dist.headers == serial.headers
            served = 0
            for worker in workers:
                out, _ = worker.communicate(timeout=30)
                assert worker.returncode == 0, out
                match = re.search(r"(\d+) job\(s\) completed", out)
                assert match, f"worker never reported: {out}"
                served += int(match.group(1))
            # Every shard ran remotely (>= because requeues may replay).
            assert served >= 6
            assert executor.last_workers == 2
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()

    def test_killed_worker_subprocess_requeues(self, fresh_cache):
        """Kill -9 a real worker mid-job; the batch must still finish."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["REPRO_STORE"] = "off"
        tasks = [Job("nap", time.sleep, (30.0,))] + _mul_jobs(2)
        coord = Coordinator(tasks, wait_delay=0.05)
        address = coord.start()
        victim = self._spawn_worker(address, env)
        # The victim takes the 30s nap job first (submission order).
        deadline = time.monotonic() + 20.0
        while not coord._leases and time.monotonic() < deadline:
            time.sleep(0.05)
        assert coord._leases, "victim never leased a job"
        victim.kill()
        deadline = time.monotonic() + 10.0
        while coord.requeues == 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert coord.requeues >= 1
        # Replace the nap with an instant job so the rescuer finishes:
        # at-least-once semantics let us swap the *task list* only because
        # nothing completed yet and the index is the identity.
        coord._tasks[0] = Job("nap", operator.mul, (6, 7))
        host, port = address
        threading.Thread(
            target=run_worker, args=(host, port), daemon=True
        ).start()
        result = coord.serve()
        victim.communicate(timeout=10)
        assert result.values == (42, 0, 7)
