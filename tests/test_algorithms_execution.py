"""Tests for the oblivious algorithms (Thms 3.2/3.4/3.7/6.7) and executor."""

from __future__ import annotations

import random

import pytest

from repro.agreement import (
    ExecutionResult,
    FloodMin,
    KSetAgreement,
    MinOfDominatingSet,
    execute,
    execute_with_adversary,
    random_trials,
)
from repro.errors import AlgorithmError
from repro.graphs import (
    complete_graph,
    cycle,
    domination_number,
    star,
    union_of_stars,
    wheel,
)
from repro.models import (
    FixedSequenceAdversary,
    simple_closed_above,
    symmetric_closed_above,
)


class TestMinOfDominatingSet:
    def test_dominating_set_computed(self, wheel4):
        alg = MinOfDominatingSet(wheel4)
        assert alg.dominating_set == (0,)
        assert alg.guarantee == 1
        assert alg.rounds == 1

    def test_explicit_dominating_set_validated(self, wheel4):
        with pytest.raises(AlgorithmError):
            MinOfDominatingSet(wheel4, dominating_set=[1])
        alg = MinOfDominatingSet(wheel4, dominating_set=[0])
        assert alg.dominating_set == (0,)

    def test_out_of_range_member(self, wheel4):
        with pytest.raises(AlgorithmError):
            MinOfDominatingSet(wheel4, dominating_set=[9])

    def test_decides_min_of_dominators(self, wheel4):
        alg = MinOfDominatingSet(wheel4, dominating_set=[0])
        view = frozenset({(0, 5), (1, 1)})
        assert alg.decide(view) == 5  # value 1 is not from the dominator

    def test_missing_dominator_raises(self, wheel4):
        alg = MinOfDominatingSet(wheel4, dominating_set=[0])
        with pytest.raises(AlgorithmError):
            alg.decide(frozenset({(1, 1)}))

    def test_solves_gamma_on_execution(self, wheel4):
        alg = MinOfDominatingSet(wheel4)
        task = KSetAgreement(1, range(4))
        result = execute(alg, {p: p for p in range(4)}, [wheel4], task)
        assert result.ok
        assert set(result.decisions.values()) == {0}


class TestFloodMin:
    def test_basic(self):
        alg = FloodMin(1)
        assert alg.decide(frozenset({(0, 3), (1, 1)})) == 1

    def test_empty_view_rejected(self):
        with pytest.raises(AlgorithmError):
            FloodMin(1).decide(frozenset())

    def test_rounds_validation(self):
        with pytest.raises(AlgorithmError):
            FloodMin(0)

    def test_name_mentions_rounds(self):
        assert "2" in FloodMin(2).name()

    def test_multi_round_floods_cycle(self):
        """After n-1 rounds of C_n everyone knows the global minimum."""
        g = cycle(4)
        alg = FloodMin(3)
        task = KSetAgreement(1, range(4))
        result = execute(alg, {p: p for p in range(4)}, [g] * 3, task)
        assert result.ok
        assert set(result.decisions.values()) == {0}

    def test_one_round_achieves_gamma_eq(self):
        """Thm 3.4 on a concrete run: at most γ_eq values decided."""
        g = cycle(4)  # γ_eq = 3
        alg = FloodMin(1)
        task = KSetAgreement(3, range(4))
        result = execute(alg, {p: p for p in range(4)}, [g], task)
        assert result.ok


class TestExecutor:
    def test_round_count_enforced(self):
        with pytest.raises(AlgorithmError):
            execute(FloodMin(2), {0: 0, 1: 1}, [complete_graph(2)])

    def test_result_fields(self):
        result = execute(FloodMin(1), {0: 0, 1: 1}, [complete_graph(2)])
        assert isinstance(result, ExecutionResult)
        assert result.outcome is None
        assert not result.ok  # unchecked executions are not "ok"
        assert result.decisions == {0: 0, 1: 0}

    def test_with_adversary(self):
        adv = FixedSequenceAdversary([cycle(3)])
        task = KSetAgreement(2, range(3))
        result = execute_with_adversary(
            FloodMin(1), {0: 0, 1: 1, 2: 2}, adv, task
        )
        assert result.graphs == (cycle(3),)
        assert result.ok

    def test_random_trials(self, rng):
        model = symmetric_closed_above([star(4, 0)])
        task = KSetAgreement(2, range(3))
        results = random_trials(FloodMin(1), model, task, 20, rng)
        assert len(results) == 20
        assert all(r.ok for r in results)

    def test_random_trials_validation(self, rng):
        model = simple_closed_above(cycle(3))
        task = KSetAgreement(1, range(2))
        with pytest.raises(AlgorithmError):
            random_trials(FloodMin(1), model, task, 0, rng)


class TestPaperGuarantees:
    """Spot checks of the headline guarantees on adversarial executions."""

    def test_thm32_star(self):
        g = star(4, 2)
        alg = MinOfDominatingSet(g)
        task = KSetAgreement(domination_number(g), range(5))
        # Worst case: the generator itself.
        result = execute(alg, {0: 4, 1: 3, 2: 2, 3: 1}, [g], task)
        assert result.ok
        assert set(result.decisions.values()) == {2}  # the centre's value

    def test_thm34_union_of_stars(self):
        g = union_of_stars(5, (0, 1))
        model = symmetric_closed_above([g])
        task = KSetAgreement(4, range(5))  # γ_eq = n - s + 1 = 4
        rng = random.Random(1)
        results = random_trials(FloodMin(1), model, task, 30, rng)
        assert all(r.ok for r in results)
