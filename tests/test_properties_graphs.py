"""Tests for structural graph predicates (Sec 2.1 example models)."""

from __future__ import annotations

from repro.graphs import (
    Digraph,
    bidirectional_cycle,
    complete_graph,
    contains_spanning_star,
    cycle,
    has_nonempty_kernel,
    is_non_split,
    is_strongly_connected,
    is_tournament,
    is_weakly_connected,
    kernel,
    min_in_degree,
    min_out_degree,
    path,
    sink_processes,
    source_processes,
    star,
    tournament,
    union_of_stars,
)


class TestKernel:
    def test_star_kernel(self):
        assert kernel(star(4, 2)) == 1 << 2
        assert has_nonempty_kernel(star(4, 2))
        assert contains_spanning_star(star(4, 2))

    def test_cycle_has_no_kernel(self):
        assert kernel(cycle(4)) == 0
        assert not has_nonempty_kernel(cycle(4))

    def test_union_of_stars_kernel_members(self):
        g = union_of_stars(5, (0, 4))
        assert kernel(g) == (1 << 0) | (1 << 4)


class TestNonSplit:
    def test_star_is_non_split(self):
        # Every pair hears the centre.
        assert is_non_split(star(5, 0))

    def test_empty_graph_is_split(self):
        assert not is_non_split(Digraph.empty(3))

    def test_clique_is_non_split(self):
        assert is_non_split(complete_graph(4))

    def test_cycle_is_split(self):
        # In C4, processes 0 and 2 hear {3,0} and {1,2}: disjoint.
        assert not is_non_split(cycle(4))


class TestTournament:
    def test_canonical_tournament(self):
        assert is_tournament(tournament(5))

    def test_cycle3_is_tournament(self):
        assert is_tournament(cycle(3))

    def test_cycle4_is_not(self):
        assert not is_tournament(cycle(4))

    def test_clique_is_not(self):
        assert not is_tournament(complete_graph(3))


class TestConnectivity:
    def test_cycle_strong(self):
        assert is_strongly_connected(cycle(5))

    def test_path_weak_only(self):
        assert not is_strongly_connected(path(4))
        assert is_weakly_connected(path(4))

    def test_disconnected(self):
        g = Digraph.from_edges(4, [(0, 1), (2, 3)])
        assert not is_weakly_connected(g)

    def test_bidirectional_cycle(self):
        assert is_strongly_connected(bidirectional_cycle(5))


class TestDegreesAndSources:
    def test_sources_and_sinks(self):
        g = Digraph.from_edges(3, [(0, 1), (0, 2)])
        assert source_processes(g) == 1 << 0  # 0 hears only itself
        assert sink_processes(g) == (1 << 1) | (1 << 2)

    def test_min_degrees(self):
        g = star(4, 0)
        assert min_out_degree(g) == 1  # leaves reach only themselves
        assert min_in_degree(g) == 1  # the centre hears only itself
        assert min_in_degree(complete_graph(3)) == 3
