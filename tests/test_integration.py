"""Cross-module integration tests: the theorems against each other.

These tests tie the whole pipeline together on randomly drawn models:
bounds from graph numbers, algorithms from the bounds, executions from the
models, exact searches as ground truth — all mutually consistent.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement import FloodMin, KSetAgreement, MinOfDominatingSet
from repro.bounds import bound_report, lower_bound_simple, upper_bound_simple
from repro.combinatorics import (
    covering_number,
    distributed_domination_number,
    equal_domination_number,
    equal_domination_number_of_set,
)
from repro.graphs import (
    Digraph,
    domination_number,
    graph_power,
    random_digraph,
    symmetric_closure,
)
from repro.models import simple_closed_above, symmetric_closed_above
from repro.topology import (
    homological_connectivity,
    input_complex,
    one_round_protocol_complex,
)
from repro.verification import (
    analyze_tightness,
    decide_one_round_solvability,
    verify_algorithm,
)


def seeded_graphs(n: int, count: int, p: float = 0.4) -> list[Digraph]:
    rng = random.Random(987)
    return [random_digraph(n, rng, p) for _ in range(count)]


class TestNumberHierarchy:
    """γ ≤ γ_dist ≤ γ_eq and friends, on random graphs."""

    @pytest.mark.parametrize("g", seeded_graphs(5, 8))
    def test_gamma_chain(self, g):
        gamma = domination_number(g)
        gamma_eq = equal_domination_number(g)
        assert gamma <= gamma_eq
        sym = sorted(symmetric_closure([g]))
        gamma_dist = distributed_domination_number(sym)
        assert gamma_dist <= equal_domination_number_of_set(sym)

    @pytest.mark.parametrize("g", seeded_graphs(5, 8))
    def test_covering_bounded_by_out_degrees(self, g):
        for i in (1, 2):
            cov = covering_number(g, i)
            assert i <= cov <= g.n


class TestBoundsVsExactSearch:
    """The paper's interval must contain the exact frontier (n = 3)."""

    @pytest.mark.parametrize("g", seeded_graphs(3, 10, p=0.35))
    def test_interval_brackets_exact(self, g):
        model = symmetric_closed_above([g])
        analysis = analyze_tightness(model)
        assert analysis.upper_sound, analysis.describe()
        assert analysis.lower_sound, analysis.describe()

    @pytest.mark.parametrize("g", seeded_graphs(3, 6, p=0.5))
    def test_simple_models_thm32_51_tight(self, g):
        """For simple closed-above models the γ(G) bracket is exact."""
        gamma = domination_number(g)
        upper = upper_bound_simple(g)
        lower = lower_bound_simple(g)
        assert upper.k == gamma and lower.k == gamma - 1
        # Exact check on the full (small) closure.
        model = simple_closed_above(g)
        graphs = sorted(model.iter_graphs())
        assert decide_one_round_solvability(graphs, gamma).solvable
        if gamma > 1:
            assert not decide_one_round_solvability(graphs, gamma - 1).solvable


class TestAlgorithmsRealiseBounds:
    @pytest.mark.parametrize("g", seeded_graphs(4, 5, p=0.3))
    def test_min_dominating_achieves_gamma(self, g):
        gamma = domination_number(g)
        model = simple_closed_above(g)
        task = KSetAgreement(gamma, range(gamma + 1))
        report = verify_algorithm(
            MinOfDominatingSet(g), model, task, superset_samples=3
        )
        assert report.ok

    @pytest.mark.parametrize("g", seeded_graphs(4, 5, p=0.3))
    def test_floodmin_achieves_gamma_eq(self, g):
        sym = symmetric_closed_above([g])
        gamma_eq = equal_domination_number_of_set(sorted(sym.generators))
        if gamma_eq >= g.n:
            pytest.skip("vacuous bound: everyone may decide apart")
        task = KSetAgreement(gamma_eq, range(gamma_eq + 1))
        report = verify_algorithm(FloodMin(1), sym, task, superset_samples=2)
        assert report.ok


class TestTopologyPredictsSearch:
    """Protocol-complex connectivity and CSP impossibility must agree."""

    @pytest.mark.parametrize("g", seeded_graphs(3, 5, p=0.4))
    def test_connectivity_implies_unsat(self, g):
        model = symmetric_closed_above([g])
        graphs = sorted(model.iter_graphs())
        k_values = model.n  # n values suffice for any k < n
        inputs = input_complex(model.n, tuple(range(k_values)))
        protocol = one_round_protocol_complex(graphs, inputs)
        connectivity = homological_connectivity(protocol)
        # If the complex is c-connected, (c+1)-set agreement should be
        # unsolvable — checked against the exact search.
        if connectivity >= 0 and connectivity + 1 < model.n:
            k = int(connectivity) + 1
            result = decide_one_round_solvability(graphs, k)
            assert not result.solvable, (
                f"protocol complex {connectivity}-connected but "
                f"{k}-set agreement SAT on {sorted(g.proper_edges())}"
            )


class TestMultiRoundConsistency:
    @pytest.mark.parametrize("g", seeded_graphs(4, 4, p=0.3))
    def test_power_bounds_monotone(self, g):
        """γ(G^r) is non-increasing and the report brackets stay ordered."""
        previous = None
        for r in (1, 2, 3):
            gamma_r = domination_number(graph_power(g, r))
            if previous is not None:
                assert gamma_r <= previous
            previous = gamma_r

    @pytest.mark.parametrize("g", seeded_graphs(4, 3, p=0.4))
    def test_report_upper_at_least_one(self, g):
        report = bound_report([g], rounds=2)
        assert report.best_upper.k >= 1
