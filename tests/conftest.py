"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    cycle,
    figure1_second,
    figure1_star,
    figure2_graph,
    star,
    union_of_stars,
    wheel,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests must not depend on global random state."""
    return random.Random(12345)


@pytest.fixture
def wheel4():
    """Fig 1's right graph: broadcaster + directed triangle."""
    return figure1_second()


@pytest.fixture
def star4():
    """Fig 1's left graph: broadcast star on 4 processes."""
    return figure1_star()


@pytest.fixture
def fig2():
    """Fig 2's 3-process graph."""
    return figure2_graph()


@pytest.fixture
def cycle6():
    """The 6-cycle of the Sec 6.1 product example."""
    return cycle(6)


@pytest.fixture
def stars52():
    """Union of two stars on 5 processes (Thm 6.13 family)."""
    return union_of_stars(5, (0, 1))


@pytest.fixture(params=[3, 4, 5])
def small_n(request) -> int:
    """Process counts small enough for exhaustive machinery."""
    return request.param
