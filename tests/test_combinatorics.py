"""Tests for the combinatorial numbers (Defs 3.1, 3.3, 3.6, 5.2, 5.3)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro._bitops import full_mask, iter_subsets_of_size, popcount
from repro.combinatorics import (
    covering_number,
    covering_number_of_set,
    covering_numbers,
    distributed_domination_number,
    domination_number,
    equal_domination_number,
    equal_domination_number_of_set,
    joint_out_of_set,
    max_covering_coefficient,
    max_covering_number,
    max_covering_witness,
    worst_covered_set,
    worst_non_dominating_set,
)
from repro.errors import GraphError
from repro.graphs import (
    Digraph,
    complete_graph,
    cycle,
    star,
    symmetric_closure,
    union_of_stars,
    wheel,
)
from tests.test_digraph import random_digraphs


class TestEqualDomination:
    def test_clique(self):
        assert equal_domination_number(complete_graph(4)) == 1

    def test_star_is_n(self):
        assert equal_domination_number(star(5, 0)) == 5

    def test_cycle(self):
        # Any 3 nodes of C4 dominate; some pair does not.
        assert equal_domination_number(cycle(4)) == 3

    def test_wheel_is_n(self):
        # {1,2,3} misses the broadcaster 0 whose only in-edge is its loop.
        assert equal_domination_number(wheel(4)) == 4

    def test_set_takes_max(self):
        graphs = [complete_graph(4), star(4, 0)]
        assert equal_domination_number_of_set(graphs) == 4

    def test_set_empty_rejected(self):
        with pytest.raises(GraphError):
            equal_domination_number_of_set([])

    def test_worst_non_dominating_witness(self):
        g = star(4, 0)
        witness = worst_non_dominating_set(g, 3)
        assert witness is not None
        assert not g.dominates(witness)
        assert popcount(witness) == 3

    def test_worst_non_dominating_none_when_all_dominate(self):
        assert worst_non_dominating_set(complete_graph(3), 1) is None

    @given(random_digraphs(5))
    def test_gamma_le_gamma_eq(self, g):
        assert domination_number(g) <= equal_domination_number(g)

    @given(random_digraphs(5))
    def test_definition(self, g):
        """γ_eq is the least i with every i-set dominating."""
        geq = equal_domination_number(g)
        universe = full_mask(g.n)
        assert all(
            g.dominates(p) for p in iter_subsets_of_size(universe, geq)
        )
        if geq > 1:
            assert any(
                not g.dominates(p)
                for p in iter_subsets_of_size(universe, geq - 1)
            )


class TestCoveringNumbers:
    def test_star_profile(self):
        # cov_i of a star: i leaves reach only themselves.
        assert covering_numbers(star(4, 0)) == (1, 2, 3, 4)

    def test_wheel_profile(self):
        assert covering_numbers(wheel(4)) == (2, 3, 3, 4)

    def test_cov_ge_i(self):
        for i, cov in enumerate(covering_numbers(cycle(5)), start=1):
            assert cov >= i

    def test_set_takes_min(self):
        graphs = [star(4, 0), complete_graph(4)]
        assert covering_number_of_set(graphs, 1) == 1

    def test_bad_index_rejected(self):
        with pytest.raises(GraphError):
            covering_number(cycle(3), 0)
        with pytest.raises(GraphError):
            covering_number(cycle(3), 4)

    def test_worst_covered_set_is_witness(self):
        g = wheel(4)
        members = worst_covered_set(g, 2)
        assert popcount(members) == 2
        assert popcount(g.out_of_set(members)) == covering_number(g, 2)

    @given(random_digraphs(5))
    def test_monotone_in_i(self, g):
        profile = covering_numbers(g)
        assert all(a <= b for a, b in zip(profile, profile[1:]))


class TestDistributedDomination:
    def test_paper_star_value_pointwise(self):
        """Appendix G: γ_dist(Sym(s stars)) = n - s + 1 (pointwise)."""
        for n, s in ((4, 1), (4, 2), (5, 2), (5, 3)):
            sym = symmetric_closure([union_of_stars(n, tuple(range(s)))])
            assert distributed_domination_number(sym) == n - s + 1

    def test_subsets_semantics_is_smaller(self):
        sym = symmetric_closure([union_of_stars(5, (0, 1))])
        literal = distributed_domination_number(sym, "subsets")
        pointwise = distributed_domination_number(sym)
        assert literal <= pointwise
        assert literal == 3  # the literal Def 5.2 value on this model

    def test_pointwise_equals_gamma_eq(self):
        """With repetition allowed the notion collapses to γ_eq(S)."""
        sym = sorted(symmetric_closure([cycle(4)]))
        assert distributed_domination_number(sym) == (
            equal_domination_number_of_set(sym)
        )

    def test_bad_semantics_rejected(self):
        with pytest.raises(GraphError):
            distributed_domination_number([cycle(3)], "banana")

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            distributed_domination_number([])

    def test_single_graph_equals_gamma_eq(self):
        g = wheel(4)
        assert distributed_domination_number([g]) == equal_domination_number(g)


class TestMaxCovering:
    def test_star_unions_are_silent(self):
        """Sec 5: for union-of-stars models max-cov_t = t (silent sets)."""
        sym = symmetric_closure([union_of_stars(5, (0, 1))])
        gdist = distributed_domination_number(sym)
        for t in range(1, gdist):
            assert max_covering_number(sym, t) == t
            assert max_covering_coefficient(sym, t) == 5 - t

    def test_undefined_beyond_gamma_dist(self):
        sym = sorted(symmetric_closure([complete_graph(3)]))
        with pytest.raises(GraphError):
            max_covering_number(sym, 1)

    def test_witness_consistency(self):
        sym = sorted(symmetric_closure([cycle(4)]))
        witness = max_covering_witness(sym, 1)
        assert witness is not None
        value, members, graphs = witness
        assert popcount(members) == 1
        audience = joint_out_of_set(graphs, members)
        assert popcount(audience) == value == max_covering_number(sym, 1)
        assert audience != full_mask(4)

    def test_coefficient_formula(self):
        """M_i = floor((n-i-1)/(max_cov-i)) when spread exceeds i."""
        sym = sorted(symmetric_closure([cycle(4)]))
        t = 1
        mc = max_covering_number(sym, t)
        assert mc > t
        expected = (4 - t - 1) // (mc - t)
        assert max_covering_coefficient(sym, t) == expected

    def test_bad_index(self):
        with pytest.raises(GraphError):
            max_covering_witness([cycle(3)], 0)
