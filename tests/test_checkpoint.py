"""Tests for coordinator checkpoint/resume (repro.dist.checkpoint).

Covers the on-disk format (atomic write, loud failure on garbage), the
throttled writer, name→plan resume mapping with fingerprint validation,
the drift-stable sweep plan fingerprint, and the end-to-end
``solvability_sweep(checkpoint_path=..., resume_from=...)`` loop —
including the acceptance property that a resume against a warm store
replays banked work as pure hits (zero kernel recompute).
"""

from __future__ import annotations

import pickle

import pytest

import repro.store as store_pkg
from repro.analysis.sweeps import plan_fingerprint, plan_sweep, solvability_sweep
from repro.dist.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointState,
    CheckpointWriter,
    load_checkpoint,
    resume_completed,
    write_checkpoint,
)
from repro.engine import KERNEL_CACHE
from repro.errors import DistError


@pytest.fixture
def tmp_store(tmp_path):
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "ckpt.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


def _representatives(n: int, limit: int):
    from repro.graphs.generators import iter_all_digraphs
    from repro.graphs.symmetry import iter_isomorphism_classes

    reps = sorted(
        iter_isomorphism_classes(iter_all_digraphs(n)),
        key=lambda g: (-g.proper_edge_count, g.out_rows),
    )
    return reps[:limit]


class TestFormat:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        state = CheckpointState(
            fingerprint="abc123",
            tasks=("a", "b", "c"),
            completed=("b",),
            requeues=2,
        )
        write_checkpoint(path, state)
        loaded = load_checkpoint(path)
        assert loaded == state
        assert loaded.remaining == ("a", "c")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DistError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.raises(DistError, match="unreadable checkpoint"):
            load_checkpoint(path)

    def test_wrong_object_raises(self, tmp_path):
        path = tmp_path / "wrong.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(DistError, match="not a coordinator checkpoint"):
            load_checkpoint(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.ckpt"
        state = CheckpointState(fingerprint="f", version=CHECKPOINT_VERSION + 1)
        path.write_bytes(pickle.dumps(state))
        with pytest.raises(DistError, match="version"):
            load_checkpoint(path)

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, CheckpointState(fingerprint="f"))
        write_checkpoint(path, CheckpointState(fingerprint="g"))
        assert load_checkpoint(path).fingerprint == "g"
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []


class TestWriter:
    def test_records_fold_into_state(self, tmp_path):
        writer = CheckpointWriter(
            path=tmp_path / "c.ckpt",
            fingerprint="fp",
            tasks=("a", "b", "c"),
            interval=0.0,
        )
        writer.record_done("b")
        writer.record_done("b")  # duplicate completion: recorded once
        writer.record_requeues(3)
        state = writer.flush()
        assert state.completed == ("b",)
        assert state.requeues == 3
        assert load_checkpoint(tmp_path / "c.ckpt") == state

    def test_throttle_limits_writes_flush_forces(self, tmp_path):
        writer = CheckpointWriter(
            path=tmp_path / "c.ckpt",
            fingerprint="fp",
            tasks=tuple(f"job{i}" for i in range(50)),
            interval=3600.0,
        )
        for i in range(50):
            writer.record_done(f"job{i}")
        assert writer.writes <= 1  # throttled: at most the first landed
        before = writer.writes
        state = writer.flush()
        assert writer.writes == before + 1
        assert len(state.completed) == 50
        assert set(load_checkpoint(tmp_path / "c.ckpt").completed) == {
            f"job{i}" for i in range(50)
        }

    def test_carried_completions_survive_a_second_crash(self, tmp_path):
        """A resumed run's writer starts from the first run's completions,
        so a crash during the resume still covers both runs."""
        writer = CheckpointWriter(
            path=tmp_path / "c.ckpt",
            fingerprint="fp",
            tasks=("a", "b", "c"),
            completed=("a",),
            interval=0.0,
        )
        writer.record_done("c")
        state = writer.flush()
        assert set(state.completed) == {"a", "c"}


class TestResumeMapping:
    def test_fingerprint_mismatch_refuses(self):
        state = CheckpointState(fingerprint="aaa", completed=("x",))
        with pytest.raises(DistError, match="does not match"):
            resume_completed(state, ("x",), fingerprint="bbb")

    def test_unknown_names_dropped_with_count(self):
        state = CheckpointState(
            fingerprint="fp", completed=("a", "gone", "c")
        )
        present, dropped = resume_completed(
            state, ("a", "b", "c"), fingerprint="fp"
        )
        assert present == {"a", "c"}
        assert dropped == 1


class TestPlanFingerprint:
    def test_stable_under_scheduling_drift(self):
        """Cost model and split decisions steer scheduling, not identity:
        the fingerprint must survive them so an observed-model resume
        accepts a static-model checkpoint."""
        reps = _representatives(3, 6)
        base = plan_fingerprint(plan_sweep(reps, 3))
        observed = plan_fingerprint(
            plan_sweep(reps, 3, cost_model="observed")
        )
        forced_split = plan_fingerprint(
            plan_sweep(reps, 3, split_threshold=1)
        )
        monolithic = plan_fingerprint(plan_sweep(reps, 3, subshard=False))
        assert base == observed == forced_split == monolithic

    def test_sensitive_to_sweep_identity(self):
        reps = _representatives(3, 6)
        base = plan_fingerprint(plan_sweep(reps, 3))
        assert base != plan_fingerprint(plan_sweep(reps[:5], 3))  # limit
        assert base != plan_fingerprint(plan_sweep(reps, 3, budget=64))
        assert base != plan_fingerprint(
            plan_sweep(reps, 3, backend="reference")
        )


class TestSweepResume:
    def test_resume_replays_nothing_banked(self, tmp_store, tmp_path):
        """Acceptance: a full checkpoint + warm store resume produces
        byte-identical rows with zero kernel recompute — every shard is
        a store hit replayed in the parent."""
        ckpt = str(tmp_path / "sweep.ckpt")
        first = solvability_sweep(3, limit=6, checkpoint_path=ckpt)
        tmp_store.flush()
        KERNEL_CACHE.clear()

        resumed = solvability_sweep(
            3, limit=6, checkpoint_path=ckpt, resume_from=ckpt
        )
        assert resumed.rows == first.rows
        assert resumed.replayed == 6
        assert resumed.checkpoint_dropped == 0
        assert resumed.resumed == 6  # every class warm
        shard = {
            name: (hits, misses, writes)
            for name, hits, misses, writes
            in resumed.batch.store_stats.by_kernel
        }["solvability_shard"]
        hits, misses, writes = shard
        assert hits == 6
        assert misses == 0  # zero recompute of banked kernels
        assert writes == 0

    def test_partial_checkpoint_resumes_the_remainder(
        self, tmp_store, tmp_path
    ):
        """A checkpoint that saw only part of the run (the crash window)
        replays exactly what it recorded and schedules the rest."""
        ckpt = tmp_path / "sweep.ckpt"
        first = solvability_sweep(3, limit=6, checkpoint_path=str(ckpt))
        tmp_store.flush()
        KERNEL_CACHE.clear()
        state = load_checkpoint(ckpt)
        partial = CheckpointState(
            fingerprint=state.fingerprint,
            tasks=state.tasks,
            completed=state.completed[:3],
        )
        write_checkpoint(ckpt, partial)

        resumed = solvability_sweep(3, limit=6, resume_from=str(ckpt))
        assert resumed.rows == first.rows
        assert resumed.replayed == 3

    def test_resume_refuses_a_different_sweep(self, tmp_store, tmp_path):
        ckpt = str(tmp_path / "sweep.ckpt")
        solvability_sweep(3, limit=6, checkpoint_path=ckpt)
        with pytest.raises(DistError, match="does not match"):
            solvability_sweep(3, limit=4, resume_from=ckpt)

    def test_cli_sweep_checkpoint_resume_json(self, tmp_store, tmp_path, capsys):
        import json

        from repro.__main__ import main

        ckpt = str(tmp_path / "cli.ckpt")
        assert main(
            ["sweep", "--n", "3", "--limit", "4", "--json",
             "--checkpoint", ckpt]
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["replayed"] == 0
        tmp_store.flush()
        KERNEL_CACHE.clear()
        assert main(
            ["sweep", "--n", "3", "--limit", "4", "--json",
             "--checkpoint", ckpt, "--resume-from", ckpt]
        ) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["replayed"] == 4
        assert second["rows"] == first["rows"]

    def test_cli_sweep_missing_checkpoint_fails_loudly(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="no checkpoint"):
            main(
                ["sweep", "--n", "3", "--limit", "2",
                 "--resume-from", str(tmp_path / "absent.ckpt")]
            )
