"""Tests for graph operations, centred on the path product (Def 6.1)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graphs import (
    Digraph,
    complete_graph,
    cycle,
    empty_graph,
    graph_power,
    intersection,
    path_product,
    set_power,
    set_product,
    star,
    transitive_closure,
    union,
)
from tests.test_digraph import random_digraphs


class TestUnionIntersection:
    def test_union(self):
        a = Digraph.from_edges(3, [(0, 1)])
        b = Digraph.from_edges(3, [(1, 2)])
        assert union(a, b) == Digraph.from_edges(3, [(0, 1), (1, 2)])

    def test_intersection(self):
        a = Digraph.from_edges(3, [(0, 1), (1, 2)])
        b = Digraph.from_edges(3, [(0, 1)])
        assert intersection(a, b) == b

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(GraphError):
            union(Digraph.empty(2), Digraph.empty(3))

    def test_no_graphs_rejected(self):
        with pytest.raises(GraphError):
            union()


class TestPathProduct:
    def test_definition_on_example(self):
        # 0 -> 1 in G, 1 -> 2 in H  =>  0 -> 2 in G ⊗ H.
        g = Digraph.from_edges(3, [(0, 1)])
        h = Digraph.from_edges(3, [(1, 2)])
        p = path_product(g, h)
        assert p.has_edge(0, 2)

    def test_contains_both_factors(self):
        """Self-loops make G ⊗ H ⊇ G ∪ H (idle a round at either end)."""
        g = Digraph.from_edges(4, [(0, 1), (2, 3)])
        h = Digraph.from_edges(4, [(1, 2)])
        p = path_product(g, h)
        assert g.is_subgraph_of(p)
        assert h.is_subgraph_of(p)

    def test_identity_is_empty_graph(self):
        g = Digraph.from_edges(3, [(0, 1), (1, 2)])
        e = empty_graph(3)
        assert path_product(g, e) == g
        assert path_product(e, g) == g

    def test_clique_absorbs(self):
        g = Digraph.from_edges(3, [(0, 1)])
        k = complete_graph(3)
        assert path_product(g, k) == k
        assert path_product(k, g) == k

    def test_cycle_squared(self):
        c = cycle(6)
        squared = graph_power(c, 2)
        for u in range(6):
            assert squared.has_edge(u, (u + 1) % 6)
            assert squared.has_edge(u, (u + 2) % 6)
        assert squared.proper_edge_count == 12

    def test_power_one_is_identity(self):
        c = cycle(5)
        assert graph_power(c, 1) == c

    def test_power_validation(self):
        with pytest.raises(GraphError):
            graph_power(cycle(3), 0)

    def test_mismatch_rejected(self):
        with pytest.raises(GraphError):
            path_product(Digraph.empty(2), Digraph.empty(3))

    def test_star_idempotent(self):
        """Appendix G: star graphs are idempotent under the product."""
        s = star(5, 2)
        assert path_product(s, s) == s

    @given(random_digraphs(4))
    def test_product_monotone(self, g):
        """More edges in a factor only add edges to the product."""
        bigger = g.with_edges([(0, g.n - 1)])
        assert path_product(g, g).is_subgraph_of(path_product(bigger, bigger))

    @given(random_digraphs(4))
    def test_power_reaches_transitive_closure(self, g):
        tc = transitive_closure(g)
        assert graph_power(g, g.n).is_subgraph_of(tc)
        assert tc == graph_power(tc, 2)


class TestSetProducts:
    def test_set_product_size(self):
        s = {cycle(4), star(4, 0)}
        prod = set_product(s, s)
        assert 1 <= len(prod) <= 4

    def test_set_power_contains_generators_when_idempotent(self):
        """S ⊆ S^r for star sets (Appendix G's first equality)."""
        s = frozenset({star(4, 0), star(4, 1)})
        power = set_power(s, 2)
        assert s <= power

    def test_set_power_validation(self):
        with pytest.raises(GraphError):
            set_power([], 2)
        with pytest.raises(GraphError):
            set_power([cycle(3)], 0)

    def test_set_product_empty_rejected(self):
        with pytest.raises(GraphError):
            set_product([], [cycle(3)])
