"""API-surface and invariant tests: exports, doctests, report invariants."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.experiments import EXPERIMENTS, run
from repro.bounds import BoundKind, bound_report
from repro.graphs import symmetric_closure
from tests.test_digraph import random_digraphs


class TestPackageSurface:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.agreement
        import repro.analysis
        import repro.bounds
        import repro.combinatorics
        import repro.engine
        import repro.graphs
        import repro.models
        import repro.store
        import repro.topology
        import repro.verification

        for module in (
            repro.agreement,
            repro.analysis,
            repro.bounds,
            repro.combinatorics,
            repro.engine,
            repro.graphs,
            repro.store,
            repro.models,
            repro.topology,
            repro.verification,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)

    def test_version(self):
        assert repro.__version__ == "1.10.0"

    def test_quickstart_docstring_example(self):
        """The example in repro.__doc__ must keep working."""
        from repro import bound_report
        from repro.graphs import symmetric_closure, wheel

        report = bound_report(symmetric_closure([wheel(4)]))
        assert (report.best_upper.k, report.best_lower.k, report.tight) == (
            3,
            2,
            True,
        )


class TestExperimentRegistry:
    def test_all_sixteen_registered(self):
        assert len(EXPERIMENTS) == 16
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 17)}

    def test_run_writes_markdown(self):
        stream = io.StringIO()
        run(["E2"], stream=stream)
        out = stream.getvalue()
        assert out.startswith("## E2")
        assert "```" in out

    def test_run_unknown_id(self):
        with pytest.raises(SystemExit):
            run(["E99"], stream=io.StringIO())


class TestReportInvariants:
    @given(random_digraphs(4))
    @settings(max_examples=15, deadline=None)
    def test_report_structure_on_random_models(self, g):
        report = bound_report([g])
        assert report.best_upper.kind is BoundKind.UPPER
        assert report.best_lower.kind is BoundKind.LOWER
        assert 1 <= report.best_upper.k <= g.n
        assert 0 <= report.best_lower.k < g.n
        # Simple models: Thm 3.2/5.1 bracket is always consistent.
        thm_51 = [b for b in report.lower_bounds if b.theorem == "5.1"]
        thm_32 = [b for b in report.upper_bounds if b.theorem == "3.2"]
        assert thm_51[0].k == thm_32[0].k - 1

    @given(random_digraphs(3))
    @settings(max_examples=10, deadline=None)
    def test_symmetrisation_never_hurts_upper(self, g):
        """Cor 3.5: the symmetric model's γ_eq bound covers the orbit."""
        single = bound_report([g])
        sym = bound_report(sorted(symmetric_closure([g])))
        gamma_eq_single = [
            b for b in single.upper_bounds if b.theorem == "3.4"
        ][0]
        gamma_eq_sym = [b for b in sym.upper_bounds if b.theorem == "3.4"][0]
        # γ_eq is permutation-invariant, so the two must coincide.
        assert gamma_eq_single.k == gamma_eq_sym.k
