"""Tests for simplicial complexes (Def 4.2)."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology import Simplex, SimplicialComplex


def tri(*colors, view="v"):
    return Simplex((c, view) for c in colors)


class TestConstruction:
    def test_facets_kept(self):
        c = SimplicialComplex([tri(0, 1, 2)])
        assert len(c) == 1
        assert c.dimension == 2

    def test_dominated_facet_rejected(self):
        with pytest.raises(TopologyError):
            SimplicialComplex([tri(0, 1, 2), tri(0, 1)])

    def test_from_simplices_normalises(self):
        c = SimplicialComplex.from_simplices([tri(0, 1, 2), tri(0, 1)])
        assert c.facets == frozenset({tri(0, 1, 2)})

    def test_empty(self):
        c = SimplicialComplex.empty()
        assert c.is_empty()
        assert c.dimension == -1
        assert c.is_pure()

    def test_purity(self):
        pure = SimplicialComplex([tri(0, 1), tri(1, 2)])
        impure = SimplicialComplex([tri(0, 1, 2), tri(3, 4)])
        assert pure.is_pure()
        assert not impure.is_pure()


class TestQueries:
    def test_simplices_dedup(self):
        c = SimplicialComplex([tri(0, 1, 2), tri(1, 2, 3)])
        # Shared edge (1,2) counted once: vertices 4, edges 5, triangles 2.
        assert c.simplex_counts() == (4, 5, 2)

    def test_euler_characteristic(self):
        # Two triangles glued along an edge are contractible: χ = 1.
        c = SimplicialComplex([tri(0, 1, 2), tri(1, 2, 3)])
        assert c.euler_characteristic() == 1

    def test_euler_of_hollow_triangle(self):
        c = SimplicialComplex.from_simplices(tri(0, 1, 2).boundary())
        assert c.euler_characteristic() == 0  # a circle

    def test_contains_simplex(self):
        c = SimplicialComplex([tri(0, 1, 2)])
        assert c.contains_simplex(tri(0, 1))
        assert c.contains_simplex(Simplex.empty())
        assert not c.contains_simplex(tri(0, 3))

    def test_vertices_and_colors(self):
        c = SimplicialComplex([tri(0, 1), tri(2, 3)])
        assert len(c.vertices) == 4
        assert c.colors == {0, 1, 2, 3}


class TestOperations:
    def test_skeleton(self):
        c = SimplicialComplex([tri(0, 1, 2)])
        skel = c.skeleton(1)
        assert skel.dimension == 1
        assert skel.simplex_counts() == (3, 3)

    def test_skeleton_negative(self):
        assert SimplicialComplex([tri(0, 1)]).skeleton(-1).is_empty()

    def test_union(self):
        a = SimplicialComplex([tri(0, 1, 2)])
        b = SimplicialComplex([tri(1, 2, 3)])
        u = a.union(b)
        assert len(u) == 2

    def test_union_absorbs_faces(self):
        a = SimplicialComplex([tri(0, 1, 2)])
        b = SimplicialComplex([tri(0, 1)])
        assert a.union(b) == a

    def test_intersection_along_edge(self):
        a = SimplicialComplex([tri(0, 1, 2)])
        b = SimplicialComplex([tri(1, 2, 3)])
        i = a.intersection(b)
        assert i.facets == frozenset({tri(1, 2)})

    def test_intersection_empty(self):
        a = SimplicialComplex([tri(0, 1)])
        b = SimplicialComplex([tri(2, 3)])
        assert a.intersection(b).is_empty()

    def test_star_and_link(self):
        c = SimplicialComplex([tri(0, 1, 2), tri(1, 2, 3)])
        star = c.star((0, "v"))
        assert star.facets == frozenset({tri(0, 1, 2)})
        link = c.link((0, "v"))
        assert link.facets == frozenset({tri(1, 2)})

    def test_induced_by_facets_validates(self):
        c = SimplicialComplex([tri(0, 1, 2)])
        with pytest.raises(TopologyError):
            c.induced_by_facets([tri(4, 5, 6)])

    def test_induced_subcomplex(self):
        c = SimplicialComplex([tri(0, 1, 2), tri(1, 2, 3)])
        sub = c.induced_by_facets([tri(0, 1, 2)])
        assert len(sub) == 1
