"""Kill/restart chaos matrix: the cluster survives what CI throws at it.

Each test here is one scenario of the CI ``chaos-smoke`` matrix (PR 10):

* ``kill-worker-mid-job`` — SIGKILL a worker subprocess while it holds a
  leased monolithic sweep shard;
* ``kill-worker-mid-heavy-subshard`` — same, under ``split_threshold=1``
  so every class is decomposed and the victim dies holding a sub-shard;
* ``kill-coordinator-mid-sweep`` — SIGKILL the *coordinator* process of
  a checkpointed distributed sweep, then resume from the checkpoint;
* ``supervisor-respawn`` — SIGKILL a supervised worker and watch the
  supervisor restore the fleet to its target size.

Every scenario asserts the same ground truth: the rows produced under
chaos are byte-identical to a serial reference computed with no store
and no cluster, and no *completed* work is lost (store rows / status
accounting).  The kill is raced against a fast run, so each scenario
tolerates the benign outcome where the victim dies after finishing —
the invariants are asserted unconditionally, the chaos-specific
counters only when the kill demonstrably landed mid-run.

The scenarios fork subprocesses and burn real CSP time, so they only
run with ``REPRO_CHAOS=1`` (the chaos-smoke job sets it); tier-1
``pytest -q`` skips them.  Set ``CHAOS_LOG_DIR=DIR`` to save every
subprocess's combined output as ``DIR/<scenario>-<role>.log`` — the CI
job uploads that directory as an artifact on failure.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro.store as store_pkg
from repro.analysis.sweeps import solvability_sweep
from repro.dist import DistExecutor, SerialExecutor, Supervisor, probe_status
from repro.engine import KERNEL_CACHE
from repro.errors import DistError

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS") != "1",
    reason="chaos scenarios run only with REPRO_CHAOS=1 (CI chaos-smoke)",
)

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

#: Classes per sweep.  The CI chaos-smoke matrix sets 16 — the full E10
#: frontier — while the local default keeps a chaos pass under a minute.
_LIMIT = int(os.environ.get("REPRO_CHAOS_LIMIT", "6"))


@pytest.fixture
def chaos_store(tmp_path):
    """Serial-reference store hygiene: start and finish with store off."""
    KERNEL_CACHE.clear()
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    yield tmp_path
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


def _save_log(name: str, text: str) -> None:
    log_dir = os.environ.get("CHAOS_LOG_DIR")
    if not log_dir:
        return
    os.makedirs(log_dir, exist_ok=True)
    with open(os.path.join(log_dir, f"{name}.log"), "w") as fh:
        fh.write(text or "")


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _worker_env(store_path=None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    if store_path is None:
        env["REPRO_STORE"] = "off"
    else:
        env["REPRO_STORE"] = "rw"
        env["REPRO_STORE_PATH"] = str(store_path)
    return env


def _spawn_worker(address, env):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"{address[0]}:{address[1]}", "--retry", "60",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _drain_worker(worker, scenario: str, role: str) -> str:
    if worker.poll() is None:
        worker.kill()
    try:
        out, _ = worker.communicate(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        out = "<worker did not exit>"
    _save_log(f"{scenario}-{role}", out)
    return out or ""


def _serial_reference(limit: int = _LIMIT):
    """Storeless in-process reference rows (and headers) for n=3."""
    report = solvability_sweep(3, limit=limit, executor=SerialExecutor())
    KERNEL_CACHE.clear()
    return report.rows


def _kill_first_leaseholder(address_box, victim, killed_box):
    """Poll the coordinator; SIGKILL ``victim`` once it holds a lease.

    Waits for *two* concurrent leases: with exactly two workers, that
    guarantees the victim (worker 0) is holding one, so its death must
    orphan a leased job.  If the batch finishes before that ever
    happens the kill is skipped (benign race) and ``killed_box`` stays
    empty — the caller's correctness assertions still run.
    """
    deadline = time.monotonic() + 60.0
    answered = False
    while time.monotonic() < deadline:
        address = address_box.get("address")
        if address is None:
            time.sleep(0.005)
            continue
        try:
            status = probe_status(address, timeout=2.0)
        except (DistError, OSError):
            if answered:
                return  # coordinator finished before a lease was seen
            time.sleep(0.005)
            continue
        answered = True
        if status["leases"] >= 2 and status["completed"] < status["jobs"]:
            victim.kill()
            killed_box["mid_run"] = True
            return
        time.sleep(0.005)


def _assert_nothing_lost(store, limit: int) -> None:
    """Store-row accounting: a pure-assembly rerun proves every
    completed shard's rows really landed — zero lost completed work."""
    store.flush()
    KERNEL_CACHE.clear()
    rerun = solvability_sweep(3, limit=limit, executor=SerialExecutor())
    assert rerun.resumed == limit


def _run_kill_worker_scenario(tmp_path, scenario, **sweep_kwargs):
    limit = _LIMIT
    rows_ref = _serial_reference(limit)
    store = store_pkg.configure(
        path=tmp_path / f"{scenario}.sqlite", mode="rw"
    )
    KERNEL_CACHE.clear()

    env = _worker_env()
    workers = []
    address_box, killed_box = {}, {}

    def on_bound(address):
        address_box["address"] = address
        workers.extend(_spawn_worker(address, env) for _ in range(2))

    executor = DistExecutor(":0", on_bound=on_bound)
    monitor = threading.Thread(
        target=_kill_first_leaseholder,
        args=(address_box, _Lazy(workers, 0), killed_box),
        daemon=True,
    )
    monitor.start()
    try:
        dist = solvability_sweep(
            3, limit=limit, executor=executor, **sweep_kwargs
        )
    finally:
        outs = [
            _drain_worker(w, scenario, f"worker{i}")
            for i, w in enumerate(workers)
        ]
    monitor.join(timeout=60.0)

    assert dist.rows == rows_ref, outs
    _assert_nothing_lost(store, limit)
    if killed_box.get("mid_run"):
        # The kill landed while work was outstanding: the victim's
        # leased job must have been requeued and re-served.
        assert executor.last_requeues >= 1
        assert executor.last_metrics["requeues"] >= 1
    return dist


class _Lazy:
    """Defer 'which process is the victim' until the kill moment."""

    def __init__(self, workers, index):
        self._workers = workers
        self._index = index

    def kill(self):
        self._workers[self._index].kill()


def test_kill_worker_mid_job(chaos_store):
    """Scenario 1: SIGKILL a worker holding a monolithic shard lease."""
    _run_kill_worker_scenario(chaos_store, "kill-worker-mid-job")


def test_kill_worker_mid_heavy_subshard(chaos_store):
    """Scenario 2: every class decomposed (``split_threshold=1``); the
    victim dies holding a sub-shard of a split class."""
    dist = _run_kill_worker_scenario(
        chaos_store, "kill-worker-mid-heavy-subshard", split_threshold=1
    )
    assert dist.splits == _LIMIT  # the decomposition really was in force


def test_kill_coordinator_mid_sweep_then_resume(chaos_store):
    """Scenario 3: SIGKILL the coordinator of a checkpointed distributed
    sweep mid-run, then resume from the checkpoint — byte-identical rows,
    checkpointed completions replayed, not re-dispatched."""
    scenario = "kill-coordinator-mid-sweep"
    limit = _LIMIT
    rows_ref = _serial_reference(limit)
    store_path = chaos_store / f"{scenario}.sqlite"
    ckpt = str(chaos_store / f"{scenario}.ckpt")
    port = _free_port()

    coordinator = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep",
            "--n", "3", "--limit", str(limit), "--split-threshold", "1",
            "--distributed", f"127.0.0.1:{port}",
            "--checkpoint", ckpt, "--json",
        ],
        env=_worker_env(store_path),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    worker = _spawn_worker(("127.0.0.1", port), _worker_env())
    killed = False
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            if coordinator.poll() is not None:
                break  # finished before the kill window closed: benign
            try:
                status = probe_status(("127.0.0.1", port), timeout=2.0)
            except DistError:
                time.sleep(0.01)
                continue
            if status["completed"] >= 2:
                coordinator.send_signal(signal.SIGKILL)
                killed = True
                break
            time.sleep(0.01)
    finally:
        try:
            coordinator.wait(timeout=30)
        except subprocess.TimeoutExpired:
            coordinator.kill()
            coordinator.wait(timeout=30)
        _save_log(
            f"{scenario}-coordinator", coordinator.stdout.read() or ""
        )
        _drain_worker(worker, scenario, "worker")
    assert killed or coordinator.returncode == 0

    # Resume on the survivor: same store, same checkpoint.
    store = store_pkg.configure(path=store_path, mode="rw")
    KERNEL_CACHE.clear()
    resumed = solvability_sweep(
        3, limit=limit, split_threshold=1,
        resume_from=ckpt, checkpoint_path=ckpt,
    )
    assert resumed.rows == rows_ref
    # The first checkpoint write lands on the first completion and the
    # kill waited for two, so the checkpoint must replay something —
    # and nothing the dead coordinator banked may be recomputed or lost.
    assert resumed.replayed >= 1
    _assert_nothing_lost(store, limit)


def test_supervisor_respawn_holds_worker_count(chaos_store):
    """Scenario 4: SIGKILL one of two supervised workers mid-sweep; the
    supervisor respawns it (fleet back at target), the batch completes,
    and both sides surface the respawn in their accounting."""
    limit = _LIMIT
    rows_ref = _serial_reference(limit)
    KERNEL_CACHE.clear()

    holder: dict = {}
    held = threading.Event()

    def on_bound(address):
        supervisor = Supervisor(
            address[0], address[1], workers=2, retry=30.0, backoff=0.1
        )
        holder["supervisor"] = supervisor
        thread = threading.Thread(
            target=lambda: holder.__setitem__("report", supervisor.run()),
            daemon=True,
        )
        holder["thread"] = thread
        thread.start()

        def chaos():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                pids = supervisor.pids()
                if len(pids) == 2:
                    os.kill(pids[0], signal.SIGKILL)
                    break
                time.sleep(0.01)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if supervisor.alive() == 2:
                    held.set()  # fleet restored to target size
                    return
                time.sleep(0.01)

        threading.Thread(target=chaos, daemon=True).start()

    executor = DistExecutor(":0", on_bound=on_bound)
    dist = solvability_sweep(
        3, limit=limit, split_threshold=1, executor=executor
    )
    holder["thread"].join(timeout=60.0)
    report = holder.get("report")
    assert report is not None, "supervisor did not finish"

    assert dist.rows == rows_ref
    assert report.clean, report.errors
    assert report.respawns >= 1
    assert held.is_set(), "fleet never returned to its target size"
    # The coordinator counts the respawn only if the replacement managed
    # to say hello before the batch drained; a replacement that lost the
    # race is stood down benignly instead.
    reconnected = any(r.worker.endswith("g2") for r in report.reports)
    if reconnected:
        assert executor.last_respawns >= 1
        assert executor.last_metrics["respawns"] >= 1
    else:
        assert report.stood_down >= 1
