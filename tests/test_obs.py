"""Tests for repro.obs: tracing, shipping, export, metrics, watch mode.

The load-bearing properties:

* tracing is inert by default and **never changes results** — traced and
  untraced sweeps produce identical rows on all three executors;
* span shipping follows the store-row path: workers drain into
  ``JobResult.trace_events``, parents absorb, only the parent exports
  (and garbage shipped by a dying worker is dropped, never written);
* clock-offset correction is a constant shift — order and durations of
  a lane's events survive it exactly;
* ``summarize_trace`` aggregates a committed fixture trace to known
  numbers.
"""

from __future__ import annotations

import io
import json
import math
import os
import threading

import pytest

from repro import store as store_pkg
from repro.analysis.sweeps import solvability_sweep
from repro.dist import DistExecutor, PoolExecutor, watch_status
from repro.dist.worker import run_worker
from repro.engine import KERNEL_CACHE
from repro.errors import DistError
from repro.obs import (
    METRICS,
    TRACER,
    MetricsRegistry,
    configure_trace,
    describe_summary,
    estimate_clock_offset,
    load_trace,
    summarize_trace,
    write_chrome_trace,
    write_trace,
)
from repro.obs.trace import Tracer

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "summary_trace.json")


@pytest.fixture
def no_store():
    KERNEL_CACHE.clear()
    with store_pkg.RESULT_STORE.disabled():
        yield
    KERNEL_CACHE.clear()


@pytest.fixture
def traced(tmp_path):
    """Enable the global tracer for one test, restoring the default."""
    path = str(tmp_path / "trace.json")
    TRACER.clear()
    configure_trace(path)
    yield path
    TRACER.clear()
    TRACER.clock_offset = 0.0
    configure_trace(None, enabled=False)


class TestTracer:
    """The span/instant hot path, on a private Tracer instance."""

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("kernel:x", cat="kernel") as sp:
            sp.set(tier="memo")  # the no-op twin absorbs the same calls
        tracer.instant("dist:lease", cat="dist")
        assert tracer.snapshot() == ()

    def test_span_records_duration_lane_and_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("kernel:x", cat="kernel", n=3) as sp:
            sp.set(tier="computed")
        (event,) = tracer.snapshot()
        assert event["name"] == "kernel:x"
        assert event["cat"] == "kernel"
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert event["lane"].endswith(f":{os.getpid()}")
        assert event["tid"] == threading.get_ident()
        assert event["args"] == {"n": 3, "tier": "computed"}

    def test_span_records_error_attr_on_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("job:boom", cat="job"):
                raise ValueError("nope")
        (event,) = tracer.snapshot()
        assert event["args"]["error"] == "ValueError"

    def test_instant_records_zero_duration_event(self):
        tracer = Tracer(enabled=True)
        tracer.instant("dist:requeue", cat="dist", index=4)
        (event,) = tracer.snapshot()
        assert event["ph"] == "i"
        assert "dur" not in event
        assert event["args"] == {"index": 4}

    def test_drain_empties_the_buffer(self):
        tracer = Tracer(enabled=True)
        tracer.instant("a")
        tracer.instant("b")
        assert len(tracer.drain()) == 2
        assert tracer.snapshot() == ()
        assert tracer.drain() == ()

    def test_buffer_cap_drops_and_counts(self, monkeypatch):
        monkeypatch.setattr("repro.obs.trace.MAX_EVENTS", 2)
        tracer = Tracer(enabled=True)
        for i in range(5):
            tracer.instant(f"e{i}")
        assert len(tracer.snapshot()) == 2
        assert tracer.dropped == 3

    def test_absorb_drops_garbage_keeps_valid(self):
        """The killed/byzantine-worker guard: only well-formed events land."""
        tracer = Tracer(enabled=True)
        good = {
            "name": "kernel:x", "cat": "kernel", "ph": "X",
            "ts": 12.5, "dur": 0.25, "lane": "h:1", "tid": 1, "args": {},
        }
        garbage = [
            "not a dict",
            None,
            42,
            {"name": "missing-keys"},
            {**good, "ts": float("nan")},
            {**good, "ts": float("inf")},
            {**good, "dur": float("nan")},
            {**good, "ts": "yesterday"},
        ]
        assert tracer.absorb(garbage + [good]) == 1
        assert tracer.snapshot() == (good,)

    def test_absorb_noop_when_disabled(self):
        tracer = Tracer(enabled=False)
        assert tracer.absorb([{"name": "x", "cat": "c", "ph": "i",
                               "ts": 1.0, "lane": "h:1"}]) == 0
        assert tracer.snapshot() == ()


class TestClockOffset:
    def test_ntp_midpoint_estimate(self):
        assert estimate_clock_offset(1.0, 3.0, 12.0) == 10.0
        assert estimate_clock_offset(5.0, 5.0, 5.0) == 0.0
        assert estimate_clock_offset(10.0, 12.0, 1.0) == -10.0

    def test_offset_preserves_order_and_durations(self):
        """The correction is one constant shift: monotonicity survives."""
        tracer = Tracer(enabled=True)
        for i in range(10):
            tracer._record({
                "name": f"e{i}", "cat": "t", "ph": "X",
                "ts": 100.0 + i, "dur": 0.5 * i, "lane": "h:1",
                "tid": 1, "args": {},
            })
        before = tracer.snapshot()
        tracer.clock_offset = -7.25
        after = tracer.drain()
        assert [e["name"] for e in after] == [e["name"] for e in before]
        stamps = [e["ts"] for e in after]
        assert stamps == sorted(stamps)
        for b, a in zip(before, after):
            assert a["ts"] == pytest.approx(b["ts"] - 7.25)
            assert a["dur"] == b["dur"]

    def test_zero_offset_drain_is_identity(self):
        tracer = Tracer(enabled=True)
        tracer.instant("e")
        (before,) = tracer.snapshot()
        (after,) = tracer.drain()
        assert after is before  # no copy on the common path


class TestTracedEquivalence:
    """Tracing never changes results: traced == untraced, every executor."""

    def _rows(self, executor=None):
        KERNEL_CACHE.clear()
        report = solvability_sweep(3, limit=6, split_threshold=1,
                                   executor=executor)
        return json.dumps(
            [[repr(cell) for cell in row] for row in report.rows]
        )

    def test_serial_and_pool_traced_rows_identical(self, no_store, tmp_path):
        untraced = self._rows()
        configure_trace(str(tmp_path / "t.json"))
        try:
            assert self._rows() == untraced
            assert self._rows(PoolExecutor(2)) == untraced
        finally:
            TRACER.clear()
            configure_trace(None, enabled=False)

    def test_dist_traced_rows_identical(self, no_store, tmp_path):
        untraced = self._rows()
        configure_trace(str(tmp_path / "t.json"))
        try:
            def launch(address):
                threading.Thread(
                    target=run_worker, args=address, daemon=True
                ).start()

            traced = self._rows(DistExecutor(":0", on_bound=launch))
            assert traced == untraced
        finally:
            TRACER.clear()
            TRACER.clock_offset = 0.0
            configure_trace(None, enabled=False)

    def test_traced_sweep_covers_every_instrumented_layer(
        self, no_store, traced
    ):
        KERNEL_CACHE.clear()
        solvability_sweep(3, limit=6, split_threshold=1,
                          executor=PoolExecutor(2))
        count = write_trace()
        assert count > 0
        events = load_trace(traced)
        cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"sweep", "job", "kernel"} <= cats
        # Pool children land in their own lanes next to the parent's.
        lanes = {
            e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert len(lanes) >= 2

    def test_killed_worker_garbage_never_corrupts_the_file(
        self, traced
    ):
        """Garbage shipped home is dropped; the export stays parseable."""
        TRACER.instant("dist:lease", cat="dist")
        kept = TRACER.absorb([
            {"partial": "span from a dying worker"},
            b"\x00torn pickle",
            {"name": "ok", "cat": "job", "ph": "X", "ts": 1.0,
             "dur": 0.5, "lane": "dead:9", "tid": 1, "args": {}},
        ])
        assert kept == 1
        assert write_trace() == 2
        events = load_trace(traced)  # json.load validates the file
        assert sum(1 for e in events if e.get("ph") != "M") == 2


class TestExport:
    def test_chrome_trace_round_trip(self, tmp_path):
        path = str(tmp_path / "chrome.json")
        events = [
            {"name": "kernel:x", "cat": "kernel", "ph": "X", "ts": 2.0,
             "dur": 0.5, "lane": "hostA:1", "tid": 7,
             "args": {"tier": "memo"}},
            {"name": "dist:lease", "cat": "dist", "ph": "i", "ts": 2.1,
             "lane": "hostB:2", "tid": 8, "args": {}},
        ]
        assert write_chrome_trace(path, events) == 2
        loaded = load_trace(path)
        meta = [e for e in loaded if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["hostA:1", "hostB:2"]
        span = next(e for e in loaded if e["ph"] == "X")
        assert span["ts"] == 2.0e6 and span["dur"] == 0.5e6  # seconds -> µs
        instant = next(e for e in loaded if e["ph"] == "i")
        assert instant["s"] == "t"
        assert {m["pid"] for m in meta} == {span["pid"], instant["pid"]}

    def test_empty_trace_is_still_a_valid_file(self, tmp_path):
        path = str(tmp_path / "empty.json")
        assert write_chrome_trace(path, []) == 0
        assert load_trace(path) == []

    def test_load_trace_accepts_bare_array_form(self):
        events = load_trace(FIXTURE)
        assert any(e.get("ph") == "X" for e in events)

    def test_load_trace_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not.json"
        path.write_text('{"traceEvents": "nope"}')
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestSummary:
    """Exact aggregation numbers on the committed fixture trace."""

    def test_fixture_summary_numbers(self):
        summary = summarize_trace(load_trace(FIXTURE))
        assert summary["events"] == 6
        assert summary["spans"] == 5
        assert summary["instants"] == {"dist:lease": 1}
        assert summary["categories"] == {"job": 2, "kernel": 3}
        assert summary["wall"] == pytest.approx(1.5)
        assert summary["kernel_calls"] == 3
        assert summary["tier_counts"]["computed"] == 1
        assert summary["tier_counts"]["memo"] == 1
        assert summary["tier_counts"]["store"] == 1
        assert summary["tier_rates"]["memo"] == pytest.approx(1 / 3)

    def test_fixture_self_time_subtracts_children(self):
        summary = summarize_trace(load_trace(FIXTURE))
        top = summary["top_kernels"][0]
        assert top["kernel"] == "solvability_shard"
        assert top["count"] == 2
        # Lane A: 0.8s minus the nested 0.3s iso_key; lane B: 1.0s whole.
        assert top["self"] == pytest.approx(0.5 + 1.0)
        assert top["total"] == pytest.approx(0.8 + 1.0)
        assert top["tiers"] == {"computed": 1, "store": 1}
        iso = next(k for k in summary["top_kernels"]
                   if k["kernel"] == "iso_key")
        assert iso["self"] == pytest.approx(0.3)
        # job self-time: 1.0 - 0.8 and 1.5 - 1.0 (kernels subtracted).
        assert summary["self_total"] == pytest.approx(
            0.2 + 0.5 + 0.3 + 0.5 + 1.0
        )

    def test_fixture_worker_utilization_and_straggler(self):
        summary = summarize_trace(load_trace(FIXTURE))
        rows = {w["worker"]: w for w in summary["workers"]}
        assert rows["hostA:100"]["jobs"] == 1
        assert rows["hostA:100"]["busy"] == pytest.approx(1.0)
        assert rows["hostA:100"]["idle"] == pytest.approx(0.5)
        assert rows["hostA:100"]["utilization"] == pytest.approx(1.0 / 1.5)
        assert rows["hostB:200"]["utilization"] == pytest.approx(1.0)
        straggler = summary["straggler"]
        assert straggler["worker"] == "hostB:200"
        assert straggler["gap"] == pytest.approx(0.5)

    def test_describe_summary_renders_every_section(self):
        summary = summarize_trace(load_trace(FIXTURE))
        text = describe_summary(summary)
        assert "kernel calls: 3" in text
        assert "solvability_shard" in text
        assert "hostB:200" in text
        assert "straggler" in text
        assert "dist:lease=1" in text

    def test_summary_is_json_serializable(self):
        json.dumps(summarize_trace(load_trace(FIXTURE)))

    def test_empty_trace_summary(self):
        summary = summarize_trace([])
        assert summary["events"] == 0
        assert summary["wall"] == 0.0
        assert summary["straggler"] is None
        describe_summary(summary)  # must not raise


class TestMetricsRegistry:
    def test_counter_and_histogram_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(2)
        registry.histogram("flush").observe(1.0)
        registry.histogram("flush").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"jobs": 3}
        assert snap["histograms"]["flush"]["count"] == 2
        assert snap["histograms"]["flush"]["mean"] == 2.0
        assert snap["histograms"]["flush"]["min"] == 1.0
        assert snap["histograms"]["flush"]["max"] == 3.0

    def test_provider_error_is_isolated(self):
        registry = MetricsRegistry()

        def boom():
            raise RuntimeError("down")

        registry.register_stats("flaky", boom)
        registry.register_stats("ok", lambda: {"fine": True})
        stats = registry.snapshot()["stats"]
        assert stats["ok"] == {"fine": True}
        assert stats["flaky"] == {"error": "RuntimeError: down"}

    def test_reset_keeps_providers(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.register_stats("p", lambda: {})
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {}
        assert "p" in snap["stats"]

    def test_global_registry_serves_cache_and_store_shapes(self):
        stats = METRICS.snapshot()["stats"]
        assert "hits" in stats["cache"] and "by_kernel" in stats["cache"]
        assert "writes" in stats["store"] and "seed_hits" in stats["store"]

    def test_stats_surfaces_share_the_as_dict_spelling(self):
        from repro.engine.batch import dist_metrics_as_dict

        cache = METRICS.snapshot()["stats"]["cache"]
        assert cache == KERNEL_CACHE.stats().as_dict()
        assert KERNEL_CACHE.stats().as_dict() == KERNEL_CACHE.stats().to_dict()
        shaped = dist_metrics_as_dict(
            {"workers": [{"worker": "w", "completed": 3}]}
        )
        assert shaped["requeues"] == 0
        assert shaped["workers"][0]["completed"] == 3
        assert dist_metrics_as_dict(None)["workers"] == []


class TestWatchStatus:
    def _probe_sequence(self, payloads):
        calls = {"n": 0}

        def probe(address, timeout=5.0):
            i = calls["n"]
            calls["n"] += 1
            if i >= len(payloads):
                raise DistError("gone")
            return payloads[i]

        return probe

    def test_json_mode_emits_one_object_per_poll(self):
        stream = io.StringIO()
        polls = watch_status(
            ":0",
            interval=0.01,
            probe=self._probe_sequence([{"a": 1}, {"a": 2}]),
            stream=stream,
            sleep=lambda _: None,
        )
        assert polls == 2
        lines = stream.getvalue().strip().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"a": 2}]

    def test_human_mode_clears_and_reprints(self):
        stream = io.StringIO()
        watch_status(
            ":0",
            interval=0.01,
            count=2,
            render=lambda status: f"jobs={status['a']}",
            probe=self._probe_sequence([{"a": 1}, {"a": 2}, {"a": 3}]),
            stream=stream,
            sleep=lambda _: None,
        )
        text = stream.getvalue()
        assert text.count("\x1b[2J") == 2
        assert "jobs=2" in text and "jobs=3" not in text

    def test_coordinator_vanishing_ends_the_watch(self):
        polls = watch_status(
            ":0",
            interval=0.01,
            probe=self._probe_sequence([{"a": 1}]),
            stream=io.StringIO(),
            sleep=lambda _: None,
        )
        assert polls == 1

    def test_never_answering_address_raises_immediately(self):
        with pytest.raises(DistError):
            watch_status(
                ":0",
                interval=0.01,
                probe=self._probe_sequence([]),
                stream=io.StringIO(),
                sleep=lambda _: None,
            )

    def test_invalid_interval_and_count_rejected(self):
        with pytest.raises(DistError):
            watch_status(":0", interval=0.0)
        with pytest.raises(DistError):
            watch_status(":0", interval=1.0, count=0)


class TestTraceCLI:
    def test_trace_summary_human_and_json(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "summary", FIXTURE]) == 0
        human = capsys.readouterr().out
        assert "kernel calls: 3" in human
        assert main(["trace", "summary", FIXTURE, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 5

    def test_trace_summary_missing_file_fails_cleanly(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["trace", "summary", "/nonexistent/trace.json"])

    def test_dist_status_watch_rejects_bad_interval(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["dist", "status", ":1", "--watch", "0", "--timeout", "1"])
