"""Tests for the bench harness: variance engine, compare gate, cost model.

Three contracts from the perf-trajectory PR:

* the **variance engine** measures deterministically under an injected
  fake clock — convergence stops sampling once the CV settles, the
  repeat cap bounds noisy cells, and the derived statistics (median,
  IQR, CV) are exactly the textbook values on known samples;
* the **compare gate** passes identical snapshots, fails injected
  regressions and result drift, and refuses cross-schema diffs with a
  distinct error (CLI exit 2, vs 1 for a genuine regression);
* the **observed cost model** changes job ordering only: sweep rows are
  byte-identical to the static reference — serial, pool, and dist —
  while at least one class's estimate provably differs (the test is not
  vacuous).
"""

from __future__ import annotations

import json
import threading

import pytest

import repro.store as store_pkg
from repro.__main__ import main
from repro.analysis.sweeps import (
    COST_MODELS,
    DEFAULT_BUDGET,
    OBSERVED_SECONDS_PER_UNIT,
    estimate_class_cost,
    record_class_observation,
    solvability_sweep,
)
from repro.bench import (
    SCENARIOS,
    SCHEMA,
    BenchFormatError,
    Measurement,
    VarianceConfig,
    compare_snapshots,
    describe_comparison,
    measure,
    quantile,
    run_bench,
    select_scenarios,
    validate_snapshot,
    write_snapshot,
)
from repro.dist import DistExecutor, PoolExecutor, SerialExecutor
from repro.dist.worker import run_worker
from repro.engine import KERNEL_CACHE
from repro.graphs.generators import iter_all_digraphs
from repro.graphs.symmetry import iter_isomorphism_classes


@pytest.fixture
def no_store():
    """Run with the persistent store off and a cold kernel cache."""
    KERNEL_CACHE.clear()
    with store_pkg.RESULT_STORE.disabled():
        yield
    KERNEL_CACHE.clear()


@pytest.fixture
def isolated_store(tmp_path):
    """Point the global store at a fresh rw temp file for the test."""
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "bench.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


class FakeClock:
    """A perf_counter stand-in fed a script of per-run durations.

    ``measure`` samples the clock immediately before and after each
    ``fn()`` call; every *pair* of reads consumes one scripted duration,
    so the nth run appears to take exactly ``durations[n]`` seconds.
    """

    def __init__(self, durations):
        self._durations = iter(durations)
        self._now = 0.0
        self._pending = None

    def __call__(self) -> float:
        if self._pending is None:
            self._pending = next(self._durations)
            return self._now
        self._now += self._pending
        self._pending = None
        return self._now


class TestVarianceEngine:
    def test_converges_once_cv_settles(self):
        clock = FakeClock([5.0, 1.0, 1.0, 1.0])  # warmup, then 3 identical
        config = VarianceConfig(
            warmup=1, min_repeats=3, max_repeats=10, cv_threshold=0.10
        )
        m = measure(lambda: None, config=config, clock=clock)
        assert m.converged
        assert m.repeats == 3
        assert m.warmups == (5.0,)
        assert m.samples == (1.0, 1.0, 1.0)
        assert m.cv == 0.0

    def test_noisy_samples_run_to_the_cap(self):
        # Alternating 1s/10s keeps the CV far above any sane threshold.
        clock = FakeClock([1.0, 10.0, 1.0, 10.0, 1.0, 10.0])
        config = VarianceConfig(
            warmup=0, min_repeats=2, max_repeats=6, cv_threshold=0.10
        )
        m = measure(lambda: None, config=config, clock=clock)
        assert not m.converged
        assert m.repeats == 6
        assert m.cv > 0.10

    def test_median_iqr_cv_math_on_known_samples(self):
        m = Measurement(samples=(1.0, 2.0, 3.0, 4.0))
        assert m.min == 1.0
        assert m.mean == 2.5
        assert m.median == 2.5
        assert m.iqr == 1.5  # q75=3.25, q25=1.75
        # stdev = sqrt(5/3) ~= 1.2910; cv = stdev / mean.
        assert m.cv == pytest.approx(0.5163978, rel=1e-6)

    def test_quantile_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.25) == 1.75
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.75) == 3.25
        assert quantile([7.0], 0.5) == 7.0
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_setup_runs_before_every_run_and_value_is_last(self):
        calls = {"setup": 0, "fn": 0}

        def setup():
            calls["setup"] += 1

        def fn():
            calls["fn"] += 1
            return calls["fn"]

        clock = FakeClock([1.0] * 4)
        config = VarianceConfig(
            warmup=1, min_repeats=3, max_repeats=3, cv_threshold=0.10
        )
        m = measure(fn, config=config, clock=clock, setup=setup)
        assert calls["setup"] == calls["fn"] == 4  # 1 warmup + 3 timed
        assert m.value == 4  # the last timed run's return

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VarianceConfig(warmup=-1)
        with pytest.raises(ValueError):
            VarianceConfig(min_repeats=0)
        with pytest.raises(ValueError):
            VarianceConfig(min_repeats=5, max_repeats=2)
        with pytest.raises(ValueError):
            VarianceConfig(cv_threshold=-0.1)
        # Zero threshold = fixed repeat count; must be allowed.
        VarianceConfig(
            warmup=0, min_repeats=2, max_repeats=2, cv_threshold=0.0
        )


def _cell(scenario, cell_id, median, result=None):
    """A minimal schema-valid cell for compare tests."""
    return {
        "scenario": scenario,
        "id": cell_id,
        "cell": {},
        "repeats": 3,
        "warmups": 1,
        "converged": True,
        "seconds": {
            "min": median * 0.9,
            "median": median,
            "mean": median,
            "iqr": 0.0,
            "cv": 0.05,
            "samples": [median * 0.9, median, median * 1.1],
        },
        "obs": None,
        "result": result,
    }


def _snapshot(cells, revision="BENCH_T", schema=SCHEMA):
    return {
        "schema": schema,
        "revision": revision,
        "quick": True,
        "python": "3.11",
        "machine": "test",
        "cpus": 1,
        "config": None,
        "cells": cells,
    }


class TestCompareGate:
    def test_identical_snapshots_pass(self):
        snap = _snapshot([_cell("s", "a", 1.0, [1]), _cell("s", "b", 2.0)])
        report = compare_snapshots(snap, snap)
        assert report["ok"]
        assert not report["regressions"]
        assert not report["drift"]
        assert "PASS" in describe_comparison(report)

    def test_injected_20pct_regression_fails_under_tight_tolerance(self):
        old = _snapshot([_cell("s", "a", 1.0)])
        new = _snapshot([_cell("s", "a", 1.2)], revision="BENCH_N")
        report = compare_snapshots(old, new, tolerance=0.10)
        assert not report["ok"]
        assert len(report["regressions"]) == 1
        assert report["regressions"][0]["ratio"] == pytest.approx(1.2)
        assert "REGRESSION" in describe_comparison(report)
        assert "FAIL" in describe_comparison(report)

    def test_regression_beyond_default_tolerance_fails(self):
        old = _snapshot([_cell("s", "a", 1.0)])
        new = _snapshot([_cell("s", "a", 1.5)])
        assert not compare_snapshots(old, new)["ok"]

    def test_slowdown_within_tolerance_passes(self):
        old = _snapshot([_cell("s", "a", 1.0)])
        new = _snapshot([_cell("s", "a", 1.2)])
        assert compare_snapshots(old, new, tolerance=0.25)["ok"]

    def test_result_drift_is_fatal_even_when_faster(self):
        old = _snapshot([_cell("s", "a", 1.0, result=[[True, 1]])])
        new = _snapshot([_cell("s", "a", 0.5, result=[[False, 1]])])
        report = compare_snapshots(old, new)
        assert not report["ok"]
        assert len(report["drift"]) == 1
        assert "DRIFT" in describe_comparison(report)

    def test_schema_mismatch_raises_with_clear_message(self):
        old = _snapshot([_cell("s", "a", 1.0)], schema="repro-bench/0")
        new = _snapshot([_cell("s", "a", 1.0)])
        with pytest.raises(BenchFormatError, match="schema mismatch"):
            compare_snapshots(old, new)

    def test_one_sided_cells_never_fail_the_gate(self):
        old = _snapshot([_cell("s", "a", 1.0), _cell("s", "old-only", 9.0)])
        new = _snapshot([_cell("s", "a", 1.0), _cell("s", "new-only", 9.0)])
        report = compare_snapshots(old, new)
        assert report["ok"]
        assert report["only_old"] == [{"scenario": "s", "id": "old-only"}]
        assert report["only_new"] == [{"scenario": "s", "id": "new-only"}]

    def test_negative_tolerance_rejected(self):
        snap = _snapshot([_cell("s", "a", 1.0)])
        with pytest.raises(ValueError):
            compare_snapshots(snap, snap, tolerance=-0.1)


class TestSnapshotSchema:
    def test_validate_rejects_malformed_payloads(self):
        assert validate_snapshot([]) == ["snapshot is not a JSON object"]
        assert any(
            "schema" in p for p in validate_snapshot({"schema": "nope"})
        )
        assert any(
            "cells" in p
            for p in validate_snapshot(
                {"schema": SCHEMA, "revision": "X", "cells": []}
            )
        )
        bad_cell = _cell("s", "a", 1.0)
        del bad_cell["seconds"]
        problems = validate_snapshot(_snapshot([bad_cell]))
        assert any("seconds" in p for p in problems)

    def test_validate_rejects_duplicate_cells(self):
        snap = _snapshot([_cell("s", "a", 1.0), _cell("s", "a", 2.0)])
        assert any("duplicate" in p for p in validate_snapshot(snap))

    def test_write_snapshot_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot({"schema": "junk"}, str(tmp_path / "x.json"))

    def test_committed_trajectory_points_validate(self):
        for name in ("benchmarks/BENCH_6.json", "benchmarks/BENCH_8.json"):
            try:
                with open(name) as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                continue  # BENCH_8 lands with this PR; tolerate mid-build
            assert validate_snapshot(payload) == [], name


class TestBenchCli:
    def test_bench_list_json_enumerates_the_matrix(self, capsys):
        assert main(["bench", "list", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [s["scenario"] for s in listed] == [
            s.name for s in SCENARIOS
        ]
        total_cells = sum(len(s["cells"]) for s in listed)
        assert total_cells >= 3
        for scenario in listed:
            for cell in scenario["cells"]:
                assert ":" in cell["id"]

    def test_bench_list_quick_restricts_cells(self, capsys):
        assert main(["bench", "list", "--json", "--quick"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert all(
            cell["quick"]
            for scenario in listed
            for cell in scenario["cells"]
        )

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "run", "--scenario", "no-such-scenario"])

    def test_compare_cli_exit_codes(self, tmp_path, capsys):
        ok = _snapshot([_cell("s", "a", 1.0)])
        slow = _snapshot([_cell("s", "a", 2.0)], revision="BENCH_N")
        other_schema = _snapshot(
            [_cell("s", "a", 1.0)], schema="repro-bench/0"
        )
        ok_path = tmp_path / "ok.json"
        slow_path = tmp_path / "slow.json"
        alien_path = tmp_path / "alien.json"
        ok_path.write_text(json.dumps(ok))
        slow_path.write_text(json.dumps(slow))
        alien_path.write_text(json.dumps(other_schema))

        assert main(["bench", "compare", str(ok_path), str(ok_path)]) == 0
        capsys.readouterr()
        assert (
            main(["bench", "compare", str(ok_path), str(slow_path)]) == 1
        )
        capsys.readouterr()
        assert (
            main(["bench", "compare", str(ok_path), str(alien_path)]) == 2
        )
        err = capsys.readouterr().err
        assert "schema" in err
        assert (
            main(
                [
                    "bench", "compare", str(ok_path), str(slow_path),
                    "--tolerance", "150",
                ]
            )
            == 0
        )

    def test_compare_cli_missing_file_is_exit_2(self, tmp_path, capsys):
        ok_path = tmp_path / "ok.json"
        ok_path.write_text(json.dumps(_snapshot([_cell("s", "a", 1.0)])))
        code = main(
            ["bench", "compare", str(ok_path), str(tmp_path / "nope.json")]
        )
        assert code == 2


class TestRunBenchSmoke:
    def test_single_scenario_emits_a_valid_traced_point(self, tmp_path):
        config = VarianceConfig(
            warmup=0, min_repeats=2, max_repeats=2, cv_threshold=0.0
        )
        payload = run_bench(
            ["heaviest_n3_class"], quick=True, config=config
        )
        assert validate_snapshot(payload) == []
        (cell,) = payload["cells"]
        assert cell["scenario"] == "heaviest_n3_class"
        assert cell["repeats"] == 2
        assert cell["seconds"]["median"] > 0
        obs = cell["obs"]
        assert obs["kernel_calls"] > 0
        assert obs["tier_counts"]["computed"] > 0
        assert "kernel" in obs["self_by_category"]
        # The verdict triple matches the committed BENCH_6 reference.
        assert cell["result"] == [
            [False, 26, 256], [False, 63, 864], [True, 124, 2048]
        ]
        out = tmp_path / "point.json"
        write_snapshot(payload, str(out))
        assert validate_snapshot(json.loads(out.read_text())) == []

    def test_select_scenarios_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            select_scenarios(["nope"])


class TestObservedCostModel:
    def test_static_estimate_and_model_validation(self, no_store):
        (g,) = [
            c
            for c in iter_isomorphism_classes(iter_all_digraphs(3))
            if c.proper_edge_count == 0
        ]
        assert "static" in COST_MODELS and "observed" in COST_MODELS
        with pytest.raises(ValueError, match="cost_model"):
            estimate_class_cost(g, 3, cost_model="banana")
        static = estimate_class_cost(g, 3)
        assert static == estimate_class_cost(g, 3, cost_model="static")
        # No observation banked and the store is off: observed falls back.
        assert estimate_class_cost(g, 3, cost_model="observed") == static

    def test_observation_feeds_the_estimate(self, isolated_store):
        (g,) = [
            c
            for c in iter_isomorphism_classes(iter_all_digraphs(3))
            if c.proper_edge_count == 0
        ]
        static = estimate_class_cost(g, 3)
        assert record_class_observation(g, 3, 0.0123)
        observed = estimate_class_cost(g, 3, cost_model="observed")
        assert observed == round(0.0123 / OBSERVED_SECONDS_PER_UNIT)
        assert observed != static
        # First observation wins: re-recording cannot flap the estimate.
        record_class_observation(g, 3, 99.0)
        assert estimate_class_cost(g, 3, cost_model="observed") == observed
        # Estimates never exceed the budget no matter the elapsed time.
        other = [
            c
            for c in iter_isomorphism_classes(iter_all_digraphs(3))
            if c.proper_edge_count == 1
        ][0]
        record_class_observation(other, 3, 3600.0)
        assert (
            estimate_class_cost(other, 3, cost_model="observed")
            == DEFAULT_BUDGET
        )

    def test_rows_identical_across_cost_models_all_executors(
        self, isolated_store
    ):
        """The acceptance pin: ``--cost-model observed`` steers ordering
        only — E10 frontier rows byte-identical to static, on every
        executor, after a static run banked real timings."""
        reference = solvability_sweep(3, executor=SerialExecutor())
        assert reference.cost_model == "static"
        isolated_store.flush()

        # Non-vacuity: the banked timings actually change an estimate.
        classes = sorted(
            iter_isomorphism_classes(iter_all_digraphs(3)),
            key=lambda g: (-g.proper_edge_count, g.out_rows),
        )
        assert any(
            estimate_class_cost(g, 3, cost_model="observed")
            != estimate_class_cost(g, 3)
            for g in classes
        ), "no class's observed estimate differs from static"

        def launch(address):
            threading.Thread(
                target=run_worker, args=address, daemon=True
            ).start()

        executors = [
            ("serial", lambda: SerialExecutor()),
            ("pool", lambda: PoolExecutor(2)),
            ("dist", lambda: DistExecutor(":0", on_bound=launch)),
        ]
        for name, make in executors:
            KERNEL_CACHE.clear()
            report = solvability_sweep(
                3, executor=make(), cost_model="observed"
            )
            assert report.cost_model == "observed"
            assert report.rows == reference.rows, name

    def test_sweep_cli_reports_cost_model(self, no_store, capsys):
        code = main(
            [
                "sweep", "--n", "3", "--limit", "4",
                "--cost-model", "observed", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cost_model"] == "observed"
