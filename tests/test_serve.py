"""repro.serve: the HTTP query front end on the persistent coordinator.

The contract under test (ISSUE 9 acceptance):

* anything banked in KernelCache/ResultStore answers synchronously with
  ``"cached": true`` and enqueues nothing;
* a cold query returns 202 + a job id, the job runs on a worker, and the
  polled verdict equals the serial ``decide_one_round_solvability``
  reference;
* concurrent clients are all answered; identical in-flight queries share
  one job;
* malformed JSON is a 400, a dead coordinator a 503.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import store as store_pkg
from repro.analysis.sweeps import _subshard_solvable
from repro.config import ServeConfig
from repro.engine import KERNEL_CACHE
from repro.graphs import build_family
from repro.models import symmetric_closed_above
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.serve import HttpConnection, QueryApp, ServeService
from repro.verification import decide_one_round_solvability

BUDGET = 64  # tiny models: every query here is sub-second


@pytest.fixture
def fresh_cache():
    KERNEL_CACHE.clear()
    yield
    KERNEL_CACHE.clear()


@pytest.fixture
def service(fresh_cache):
    config = (
        ServeConfig.builder()
        .http("127.0.0.1:0")
        .workers(1)
        .budget(BUDGET)
        .build()
    )
    with ServeService(config) as svc:
        yield svc


def _request(svc, method, path, body=None):
    host, port = svc.http_address
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _poll(svc, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = _request(svc, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if payload["state"] != "pending":
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still pending after {timeout}s")


def _serial_reference(family, n, k):
    model = symmetric_closed_above([build_family(family, n)])
    full = sorted(model.iter_graphs(max_graphs=BUDGET))
    return bool(decide_one_round_solvability(full, k).solvable)


def _serve_counter(name):
    return METRICS.snapshot()["counters"].get(name, 0)


class TestColdAndWarmQueries:
    def test_cold_miss_enqueues_and_poll_matches_serial_reference(
        self, service
    ):
        status, payload = _request(
            service, "POST", "/v1/solvability",
            {"family": "cycle", "n": 3, "k": 1},
        )
        assert status == 202
        assert payload["state"] == "pending"
        record = _poll(service, payload["job"])
        assert record["state"] == "done"
        assert record["result"]["solvable"] == _serial_reference("cycle", 3, 1)

    def test_warm_repeat_is_cached_and_enqueues_nothing(self, service):
        query = {"family": "cycle", "n": 3, "k": 2}
        status, payload = _request(service, "POST", "/v1/solvability", query)
        assert status == 202
        _poll(service, payload["job"])

        enqueued = _serve_counter("serve.enqueued")
        status, warm = _request(service, "POST", "/v1/solvability", query)
        assert status == 200
        assert warm["cached"] is True
        assert warm["solvable"] == _serial_reference("cycle", 3, 2)
        assert _serve_counter("serve.enqueued") == enqueued  # no new job

    def test_resident_result_needs_no_worker(self, fresh_cache):
        # Compute into the kernel cache first; a worker-less service
        # (nothing could ever run a job) still answers synchronously.
        g = build_family("cycle", 3)
        expected = _subshard_solvable(g, 3, BUDGET, 1)
        config = (
            ServeConfig.builder().http("127.0.0.1:0").workers(0)
            .budget(BUDGET).build()
        )
        with ServeService(config) as svc:
            status, payload = _request(
                svc, "POST", "/v1/solvability",
                {"family": "cycle", "n": 3, "k": 1},
            )
        assert status == 200
        assert payload["cached"] is True
        assert payload["solvable"] == expected

    def test_bounds_route(self, service):
        status, payload = _request(
            service, "POST", "/v1/bounds", {"family": "cycle", "n": 3}
        )
        assert status == 202
        record = _poll(service, payload["job"])
        assert record["state"] == "done"
        lower, upper = record["result"]["lower"], record["result"]["upper"]
        assert 1 <= lower <= upper <= 3
        status, warm = _request(
            service, "POST", "/v1/bounds", {"family": "cycle", "n": 3}
        )
        assert status == 200
        assert warm["cached"] is True
        assert (warm["lower"], warm["upper"]) == (lower, upper)

    def test_identical_inflight_queries_share_one_job(self, fresh_cache):
        # No workers: the first job provably stays in flight, so the
        # repeat query must join it instead of enqueuing a duplicate.
        config = (
            ServeConfig.builder().http("127.0.0.1:0").workers(0)
            .budget(BUDGET).build()
        )
        query = {"family": "star", "n": 3, "k": 1}
        with ServeService(config) as svc:
            status_a, a = _request(svc, "POST", "/v1/solvability", query)
            status_b, b = _request(svc, "POST", "/v1/solvability", query)
        assert status_a == status_b == 202
        assert a["job"] == b["job"]


class TestConcurrentClients:
    def test_parallel_clients_all_answered(self, service):
        queries = [
            {"family": "cycle", "n": 3, "k": k} for k in (1, 2, 3)
        ] + [
            {"family": "star", "n": 3, "k": k} for k in (1, 2)
        ]
        results: list = [None] * len(queries)

        def client(i):
            status, payload = _request(
                service, "POST", "/v1/solvability", queries[i]
            )
            assert status in (200, 202)
            if status == 202:
                payload = _poll(service, payload["job"])["result"]
            results[i] = payload["solvable"]

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        for i, query in enumerate(queries):
            assert results[i] == _serial_reference(
                query["family"], query["n"], query["k"]
            ), query


class TestClientErrors:
    def test_malformed_json_is_400(self, service):
        host, port = service.http_address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            body = b"{not json"
            sock.sendall(
                b"POST /v1/solvability HTTP/1.1\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body
            )
            reply = b""
            while b"\r\n\r\n" not in reply:
                reply += sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_unknown_family_and_bad_fields_are_400(self, service):
        for query in (
            {"family": "nonsense", "n": 3, "k": 1},
            {"family": "cycle", "n": "three", "k": 1},
            {"family": "cycle", "n": 3, "k": 0},
            {"family": "cycle", "n": 3, "k": 1, "backend": "quantum"},
            [1, 2, 3],
        ):
            status, payload = _request(
                service, "POST", "/v1/solvability", query
            )
            assert status == 400, query
            assert "error" in payload

    def test_unknown_routes_and_methods(self, service):
        assert _request(service, "GET", "/v2/nope")[0] == 404
        assert _request(service, "GET", "/v1/jobs/job-999")[0] == 404
        status, payload = _request(service, "GET", "/v1/solvability")
        assert status == 405

    def test_dead_coordinator_miss_is_503(self, fresh_cache):
        class _DeadCoordinator:
            alive = False

        app = QueryApp(budget=BUDGET, metrics=MetricsRegistry())
        app.bind(_DeadCoordinator())
        status, payload = app.handle(
            "POST", "/v1/solvability",
            json.dumps({"family": "cycle", "n": 3, "k": 1}).encode(),
        )
        assert status == 503
        assert "coordinator" in payload["error"]


class TestHttpLayer:
    """The frontend handler in isolation (no sockets, no coordinator)."""

    class _EchoApp:
        def handle(self, method, path, body):
            return 200, {"method": method, "path": path, "len": len(body)}

    @staticmethod
    def _split(raw: bytes):
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return status, json.loads(body) if body else None

    def test_request_reassembled_from_single_byte_feeds(self):
        conn = HttpConnection(self._EchoApp())
        request = (
            b"POST /v1/x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        out = b""
        for i in range(len(request)):
            out = conn.feed(request[i : i + 1])
            if out:
                assert i == len(request) - 1  # only the last byte answers
        status, payload = self._split(out)
        assert status == 200
        assert payload == {"method": "POST", "path": "/v1/x", "len": 4}
        assert conn.done

    def test_response_declares_its_exact_length(self):
        conn = HttpConnection(self._EchoApp())
        out = conn.feed(b"GET / HTTP/1.1\r\n\r\n")
        head, _, body = out.partition(b"\r\n\r\n")
        declared = next(
            int(line.split(b":")[1])
            for line in head.split(b"\r\n")
            if line.lower().startswith(b"content-length")
        )
        assert declared == len(body)

    def test_malformed_request_line_is_400(self):
        conn = HttpConnection(self._EchoApp())
        status, _ = self._split(conn.feed(b"HELLO\r\n\r\n"))
        assert status == 400

    def test_oversized_header_block_is_431(self):
        conn = HttpConnection(self._EchoApp())
        out = conn.feed(b"GET / HTTP/1.1\r\nX-Pad: " + b"x" * (70 * 1024))
        status, _ = self._split(out)
        assert status == 431

    def test_oversized_declared_body_is_413(self):
        conn = HttpConnection(self._EchoApp())
        out = conn.feed(
            b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        )
        status, _ = self._split(out)
        assert status == 413

    def test_handler_exception_is_500_not_a_drop(self):
        class _Boom:
            def handle(self, method, path, body):
                raise RuntimeError("kaboom")

        conn = HttpConnection(_Boom())
        status, payload = self._split(conn.feed(b"GET / HTTP/1.1\r\n\r\n"))
        assert status == 500
        assert "kaboom" in payload["error"]


class TestObservability:
    def test_status_shares_the_dist_status_shape(self, service):
        from repro.dist import probe_status

        status, payload = _request(service, "GET", "/v1/status")
        assert status == 200
        probed = probe_status(service.dist_address)
        # One shape: /v1/status is the coordinator's status_snapshot()
        # (what `dist status --json` prints) plus the serve block.
        assert set(probed) <= set(payload)
        assert payload["serve"]["jobs"].keys() == {"pending", "done", "failed"}

    def test_metrics_route_exposes_serve_counters(self, service):
        _request(
            service, "POST", "/v1/solvability",
            {"family": "cycle", "n": 3, "k": 3},
        )
        status, payload = _request(service, "GET", "/v1/metrics")
        assert status == 200
        assert payload["counters"]["serve.queries"] >= 1
        assert "dist_status" in payload["stats"]

    def test_store_backed_service_answers_across_restart(
        self, fresh_cache, tmp_path
    ):
        """Warm repeat from the *store* tier: a second service instance
        (cold kernel cache) answers without enqueuing, like a restart."""
        path = str(tmp_path / "serve.sqlite")
        config = (
            ServeConfig.builder().http("127.0.0.1:0").workers(1)
            .budget(BUDGET)
            .store({"mode": "rw", "path": path})
            .build()
        )
        query = {"family": "cycle", "n": 3, "k": 1}
        try:
            with ServeService(config) as svc:
                status, payload = _request(svc, "POST", "/v1/solvability", query)
                assert status == 202
                _poll(svc, payload["job"])
            KERNEL_CACHE.clear()  # simulate a process restart
            enqueued = _serve_counter("serve.enqueued")
            with ServeService(config) as svc:
                status, warm = _request(svc, "POST", "/v1/solvability", query)
                assert status == 200
                assert warm["cached"] is True
                assert _serve_counter("serve.enqueued") == enqueued
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
