"""Tests for dynamic sub-shard scheduling: two-phase plans and sweeps.

The contract of the sub-sharding PR: splitting a class's shard into
per-``k`` sub-shards plus a reduction produces rows *byte-identical* to
the monolithic reference — serial, pool, and distributed; cold and warm
from the store — while the sub-verdicts persist, resume, and bank
independently (a sweep killed between a class's sub-shards loses only
the unfinished ones).
"""

from __future__ import annotations

import operator
import os
import threading

import pytest

import repro.store as store_pkg
from repro.analysis.sweeps import (
    DEFAULT_BUDGET,
    DEFAULT_SPLIT_THRESHOLD,
    _class_bounds,
    _shard_verdict,
    _subshard_solvable,
    estimate_class_cost,
    plan_sweep,
    solvability_sweep,
    sweep_row,
)
from repro.dist import DistExecutor, PoolExecutor, SerialExecutor
from repro.dist.worker import run_worker
from repro.engine import (
    KERNEL_CACHE,
    Job,
    JobError,
    Reduction,
    run_batch,
)
from repro.errors import EngineError
from repro.graphs.generators import iter_all_digraphs
from repro.graphs.symmetry import iter_isomorphism_classes


def _representatives(n: int):
    """The sweep's class representatives in its densest-first order."""
    return sorted(
        iter_isomorphism_classes(iter_all_digraphs(n)),
        key=lambda g: (-g.proper_edge_count, g.out_rows),
    )


@pytest.fixture
def no_store():
    """Run with the persistent store off and a cold kernel cache."""
    KERNEL_CACHE.clear()
    with store_pkg.RESULT_STORE.disabled():
        yield
    KERNEL_CACHE.clear()


@pytest.fixture
def isolated_store(tmp_path):
    """Point the global store at a fresh rw temp file for the test."""
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "subshard.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


def _fresh_process(store) -> None:
    """Simulate a brand-new process: empty RAM cache, same store file."""
    store.flush()
    KERNEL_CACHE.clear()
    store_pkg.configure(path=store.path, mode=store.mode)


def _sum_values(values):
    return sum(values)


def _sum_values_plus(values, extra):
    return sum(values) + extra


def _reduction_pid(values):
    return os.getpid()


def _slow_identity(x):
    import time

    time.sleep(0.05)
    return x


class TestReductionMachinery:
    """Engine-level behaviour of run_batch's two-phase plans."""

    def test_serial_reductions_fire_with_values_in_over_order(self):
        tasks = [Job(f"mul[{i}]", operator.mul, (i, 10)) for i in range(5)]
        reductions = [
            Reduction("sum:even", _sum_values, over=(0, 2, 4)),
            Reduction("sum:odd", _sum_values_plus, over=(1, 3), args=(100,)),
        ]
        result = run_batch(tasks, jobs=1, reductions=reductions)
        assert result.values == (0, 10, 20, 30, 40)
        assert [r.name for r in result.reduction_results] == [
            "sum:even", "sum:odd",
        ]
        assert [r.value for r in result.reduction_results] == [60, 140]

    def test_pool_reductions_run_in_parent(self):
        tasks = [Job(f"mul[{i}]", operator.mul, (i, 7)) for i in range(4)]
        reductions = [Reduction("pid", _reduction_pid, over=(0, 1, 2, 3))]
        result = run_batch(tasks, jobs=2, reductions=reductions)
        (reduced,) = result.reduction_results
        assert reduced.value == os.getpid()

    def test_pool_matches_serial(self):
        tasks = [Job(f"mul[{i}]", operator.mul, (i, 3)) for i in range(6)]
        reductions = [
            Reduction("low", _sum_values, over=(0, 1, 2)),
            Reduction("high", _sum_values, over=(3, 4, 5)),
        ]
        serial = run_batch(tasks, jobs=1, reductions=reductions)
        pool = run_batch(tasks, jobs=2, reductions=reductions)
        assert serial.values == pool.values
        assert [r.value for r in serial.reduction_results] == [
            r.value for r in pool.reduction_results
        ]

    def test_failed_input_skips_reduction_and_raises(self):
        tasks = [
            Job("ok", operator.mul, (3, 7)),
            Job("boom", operator.truediv, (1, 0)),
        ]
        reductions = [Reduction("sum", _sum_values, over=(0, 1))]
        with pytest.raises(JobError) as excinfo:
            run_batch(tasks, jobs=1, reductions=reductions)
        names = {f.name for f in excinfo.value.failures}
        assert names == {"boom", "sum"}

    def test_collect_mode_reports_reduction_failure(self):
        tasks = [
            Job("ok", operator.mul, (3, 7)),
            Job("boom", operator.truediv, (1, 0)),
        ]
        reductions = [
            Reduction("sum", _sum_values, over=(0, 1)),
            Reduction("only-ok", _sum_values, over=(0,)),
        ]
        result = run_batch(
            tasks, jobs=1, on_error="collect", reductions=reductions
        )
        assert result.values == (21,)
        assert {f.name for f in result.failures} == {"boom", "sum"}
        # Positional alignment survives the failure: the skipped
        # reduction leaves a None slot, the healthy one still fired.
        skipped, reduced = result.reduction_results
        assert skipped is None
        assert (reduced.name, reduced.value) == ("only-ok", 21)

    def test_plan_validation(self):
        tasks = [Job("only", operator.mul, (2, 2))]
        with pytest.raises(EngineError, match="consumes no jobs"):
            run_batch(tasks, reductions=[Reduction("r", _sum_values, over=())])
        with pytest.raises(EngineError, match="lists a job twice"):
            run_batch(
                tasks, reductions=[Reduction("r", _sum_values, over=(0, 0))]
            )
        with pytest.raises(EngineError, match="job index"):
            run_batch(
                tasks, reductions=[Reduction("r", _sum_values, over=(5,))]
            )

    def test_reduction_stats_counted_not_double_absorbed(self, no_store):
        """A reduction's cache delta lands in the batch stats exactly once
        (it ran in the parent, whose live counters already saw it)."""
        from repro.combinatorics.domination import domination_number
        from repro.graphs.families import cycle

        def _dominate(values):
            return domination_number(cycle(5))

        tasks = [Job("warm", domination_number, (cycle(5),))]
        before = KERNEL_CACHE.stats()
        result = run_batch(
            tasks, jobs=1, reductions=[Reduction("red", _dominate, over=(0,))]
        )
        delta = KERNEL_CACHE.stats().delta_since(before)
        by_kernel = dict(
            (name, (h, m)) for name, h, m in result.stats.by_kernel
        )
        live = dict((name, (h, m)) for name, h, m in delta.by_kernel)
        assert by_kernel["domination_number"] == live["domination_number"]


class TestEstimatorAndPlan:
    def test_estimate_is_two_to_missing_edges_capped(self):
        reps = _representatives(3)
        complete, empty = reps[0], reps[-1]
        assert complete.proper_edge_count == 6
        assert estimate_class_cost(complete, 3) == 1
        assert empty.proper_edge_count == 0
        assert estimate_class_cost(empty, 3) == 64
        assert estimate_class_cost(empty, 3, budget=16) == 16

    def test_default_threshold_splits_nothing_at_n3(self):
        plan = plan_sweep(_representatives(3), 3)
        assert plan.splits == 0
        assert len(plan.tasks) == 16
        assert plan.reductions == ()

    def test_low_threshold_splits_everything(self):
        reps = _representatives(3)
        plan = plan_sweep(reps, 3, split_threshold=1)
        assert plan.splits == 16
        # bounds + one job per candidate k, per class
        assert plan.subshards == 16 * 4
        assert len(plan.tasks) == 64
        assert len(plan.reductions) == 16
        for cls in plan.classes:
            assert cls.split
            assert len(cls.job_indices) == 4
            reduction = plan.reductions[cls.reduction_index]
            assert reduction.over == cls.job_indices

    def test_subshard_off_forces_monolithic(self):
        plan = plan_sweep(
            _representatives(3), 3, split_threshold=1, subshard=False
        )
        assert plan.splits == 0 and len(plan.tasks) == 16

    def test_jobs_emitted_heaviest_first(self):
        reps = _representatives(3)
        plan = plan_sweep(reps, 3, split_threshold=1)
        # The first emitted job belongs to the sparsest (heaviest) class,
        # which sits *last* in the densest-first representative order.
        heaviest = plan.classes[len(reps) - 1]
        assert heaviest.estimate == max(c.estimate for c in plan.classes)
        assert heaviest.job_indices[0] == 0
        # Estimates are non-increasing along the emitted job order.
        order = sorted(plan.classes, key=lambda c: c.job_indices[0])
        estimates = [c.estimate for c in order]
        assert estimates == sorted(estimates, reverse=True)

    def test_split_decision_threshold_boundary(self):
        reps = _representatives(3)
        empty = reps[-1]
        at = plan_sweep([empty], 3, split_threshold=64)
        above = plan_sweep([empty], 3, split_threshold=65)
        assert at.splits == 1
        assert above.splits == 0


class TestSubshardEquivalence:
    """Acceptance: split rows byte-identical to the monolithic reference."""

    def test_split_serial_matches_monolithic_all_16(self, no_store):
        mono = solvability_sweep(3, subshard=False)
        KERNEL_CACHE.clear()
        split = solvability_sweep(3, split_threshold=1)
        assert split.rows == mono.rows
        assert split.headers == mono.headers
        assert repr(split.rows) == repr(mono.rows)  # byte-identical
        assert split.splits == 16 and split.subshards == 64
        assert mono.splits == 0

    def test_split_pool_matches_serial(self, no_store):
        serial = solvability_sweep(3, limit=6, split_threshold=1)
        KERNEL_CACHE.clear()
        pool = solvability_sweep(
            3, limit=6, split_threshold=1, executor=PoolExecutor(2)
        )
        assert pool.rows == serial.rows

    def test_split_dist_matches_serial(self, no_store):
        serial = solvability_sweep(3, limit=6, split_threshold=1)
        KERNEL_CACHE.clear()

        def launch(address):
            threading.Thread(
                target=run_worker, args=address, daemon=True
            ).start()

        executor = DistExecutor(":0", on_bound=launch)
        dist = solvability_sweep(
            3, limit=6, split_threshold=1, executor=executor
        )
        assert dist.rows == serial.rows
        metrics = dist.batch.dist_metrics
        assert metrics is not None
        # 6 classes x (bounds + k=1..3) sub-shards, all served remotely.
        assert sum(w["completed"] for w in metrics["workers"]) >= 24

    def test_k_at_least_n_shortcut_matches_the_csp(self, no_store):
        """Pin the analytic k >= n answer against the real search on the
        class where it matters most (the sparsest generator)."""
        from repro.models.closed_above import symmetric_closed_above
        from repro.verification.solvability import (
            decide_one_round_solvability,
        )

        empty = _representatives(3)[-1]
        model = symmetric_closed_above([empty])
        full = sorted(model.iter_graphs(max_graphs=DEFAULT_BUDGET))
        assert decide_one_round_solvability(full, 3).solvable is True
        assert _subshard_solvable(empty, 3, DEFAULT_BUDGET, 3) is True

    def test_subshard_flags_are_a_staircase(self, no_store):
        """Solvability is monotone in k, which is what makes the per-k
        merge exact: once solvable, solvable for every larger k."""
        for g in _representatives(3)[:4] + _representatives(3)[-2:]:
            flags = [
                _subshard_solvable(g, 3, DEFAULT_BUDGET, k)
                for k in range(1, 4)
            ]
            assert flags == sorted(flags), (g, flags)


class TestSubshardStore:
    def test_warm_split_rerun_resumes_everything(self, isolated_store):
        cold = solvability_sweep(3, limit=4, split_threshold=1)
        assert cold.resumed == 0
        _fresh_process(isolated_store)
        warm = solvability_sweep(3, limit=4, split_threshold=1)
        assert warm.rows == cold.rows
        assert repr(warm.rows) == repr(cold.rows)
        assert warm.resumed == 4
        by_kernel = {
            name: (hits, misses)
            for name, hits, misses, _w in warm.batch.store_stats.by_kernel
        }
        hits, misses = by_kernel["solvability_subshard"]
        assert hits == 4 * 3 and misses == 0

    def test_reduction_banks_the_monolithic_row(self, isolated_store):
        """A split run leaves the store warm for a later *monolithic* run
        (threshold raised, --subshard off): the reducer seeds the merged
        verdict under solvability_shard's own identity."""
        split = solvability_sweep(3, limit=4, split_threshold=1)
        db = isolated_store.db_stats()
        entries = {
            row["kernel"]: row["entries"] for row in db["kernels"]
        }
        assert entries["solvability_shard"] == 4
        _fresh_process(isolated_store)
        mono = solvability_sweep(3, limit=4, subshard=False)
        assert mono.rows == split.rows
        assert mono.resumed == 4  # zero CSP searches ran

    def test_monolithic_store_warms_split_sub_rows_only_partially(
        self, isolated_store
    ):
        """The other direction: a monolithic run banks no sub-shard rows,
        so a later split run recomputes per-k verdicts (correctly) —
        pinning that the two decompositions keep separate identities
        while producing identical rows."""
        mono = solvability_sweep(3, limit=2, subshard=False)
        _fresh_process(isolated_store)
        split = solvability_sweep(3, limit=2, split_threshold=1)
        assert split.rows == mono.rows

    def test_mid_class_kill_banks_finished_subshards(self, isolated_store):
        """Satellite acceptance: kill a sweep mid-class — some sub-shards
        banked, the reduction never fired — and the rerun serves the
        banked sub-verdicts from the store while recomputing only the
        missing ones, landing on the uninterrupted run's exact row."""
        reps = _representatives(3)
        heavy = reps[-1]  # the sparsest class: the one worth splitting
        index = len(reps) - 1

        # The uninterrupted reference, on a separate store.
        with store_pkg.RESULT_STORE.disabled():
            KERNEL_CACHE.clear()
            reference_row = sweep_row(heavy, 3, DEFAULT_BUDGET)
        KERNEL_CACHE.clear()

        # "Run" only part of the class, as a killed sweep would have:
        # bounds and two of the three per-k sub-shards reach the store,
        # the reduction does not fire, no solvability_shard row exists.
        _class_bounds(heavy, 3)
        _subshard_solvable(heavy, 3, DEFAULT_BUDGET, 1)
        _subshard_solvable(heavy, 3, DEFAULT_BUDGET, 2)
        _fresh_process(isolated_store)
        db = store_pkg.active_store().db_stats()
        entries = {row["kernel"]: row["entries"] for row in db["kernels"]}
        assert entries.get("solvability_subshard") == 2
        assert "solvability_shard" not in entries

        # Rerun the full sweep with forced splitting: the banked
        # sub-shards must hit the store; only k=3 is computed fresh.
        report = solvability_sweep(3, split_threshold=1)
        assert report.rows[index] == reference_row
        by_kernel = {
            name: (hits, misses)
            for name, hits, misses, _w in report.batch.store_stats.by_kernel
        }
        sub_hits, _sub_misses = by_kernel["solvability_subshard"]
        assert sub_hits >= 2
        bounds_hits, _ = by_kernel["solvability_bounds"]
        assert bounds_hits >= 1

        # And now the class is fully banked: a fresh process resumes it.
        _fresh_process(store_pkg.active_store())
        rerun = solvability_sweep(3, split_threshold=1)
        assert rerun.rows == report.rows
        assert rerun.resumed == rerun.sharded == 16


class TestSweepReportSurface:
    def test_describe_mentions_splits(self, no_store):
        report = solvability_sweep(3, limit=2, split_threshold=1)
        text = report.describe()
        assert "2 class(es) split into 8 sub-shards" in text
        assert "threshold 1" in text

    def test_class_reports_carry_estimates_and_timings(self, no_store):
        report = solvability_sweep(3, limit=3, split_threshold=1)
        assert len(report.classes) == 3
        for cls in report.classes:
            assert cls.split and cls.subshards == 4
            assert cls.elapsed >= 0.0
            assert cls.estimate >= 1
            payload = cls.to_dict()
            assert set(payload) == {
                "index", "edges", "estimate", "split", "subshards",
                "elapsed", "resumed",
            }

    def test_default_report_matches_pre_split_shape(self, no_store):
        report = solvability_sweep(3, limit=2)
        assert report.splits == 0 and report.subshards == 0
        assert report.split_threshold == DEFAULT_SPLIT_THRESHOLD
        assert "split" not in report.describe()

    def test_shard_verdict_seed_noop_when_banked(self, no_store):
        """Seeding an already-computed verdict keeps the banked value."""
        g = _representatives(3)[0]
        verdict = _shard_verdict(g, 3, DEFAULT_BUDGET)
        assert _shard_verdict.seed(("x",), g, 3, DEFAULT_BUDGET) is False
        assert _shard_verdict(g, 3, DEFAULT_BUDGET) == verdict
