"""Tests for homology and connectivity measurement.

Ground truths: spheres (boundaries of simplexes), contractible complexes,
wedges, disjoint unions, the 6-vertex projective plane (whose torsion makes
GF(2) and rational Betti numbers differ — exactly the blind spot the two
backends exist to bracket), and property-based backend cross-checks on
torsion-free random complexes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    Simplex,
    SimplicialComplex,
    betti_numbers,
    boundary_matrix_gf2,
    homological_connectivity,
    is_homologically_k_connected,
    rank_gf2,
    reduced_betti_numbers,
)


def solid(*colors):
    return Simplex((c, "v") for c in colors)


def sphere(dim: int) -> SimplicialComplex:
    """Boundary of a (dim+1)-simplex: the dim-sphere."""
    return SimplicialComplex.from_simplices(solid(*range(dim + 2)).boundary())


# The minimal 6-vertex triangulation of the real projective plane: every
# edge of K6 lies in exactly two of these ten triangles, Euler char 1.
RP2_TRIANGLES = [
    (0, 1, 2), (0, 1, 3), (0, 2, 4), (0, 3, 5), (0, 4, 5),
    (1, 2, 5), (1, 3, 4), (1, 4, 5), (2, 3, 4), (2, 3, 5),
]


def rp2() -> SimplicialComplex:
    return SimplicialComplex.from_simplices(
        solid(*t) for t in RP2_TRIANGLES
    )


class TestKnownSpaces:
    def test_point(self):
        c = SimplicialComplex([solid(0)])
        assert reduced_betti_numbers(c) == (0,)
        assert homological_connectivity(c) == math.inf

    def test_solid_simplex_contractible(self):
        c = SimplicialComplex([solid(0, 1, 2, 3)])
        assert homological_connectivity(c) == math.inf

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_spheres(self, dim):
        s = sphere(dim)
        betti = reduced_betti_numbers(s)
        assert betti[-1] == 1
        assert all(b == 0 for b in betti[:-1])
        assert homological_connectivity(s) == dim - 1

    def test_two_points_disconnected(self):
        c = SimplicialComplex([solid(0), solid(1)])
        assert reduced_betti_numbers(c)[0] == 1
        assert homological_connectivity(c) == -1

    def test_empty_complex(self):
        c = SimplicialComplex.empty()
        assert homological_connectivity(c) == -2
        assert betti_numbers(c) == ()

    def test_wedge_of_two_circles(self):
        c1 = list(solid(0, 1, 2).boundary())
        c2 = list(solid(2, 3, 4).boundary())
        c = SimplicialComplex.from_simplices(c1 + c2)
        assert reduced_betti_numbers(c) == (0, 2)

    def test_rp2_is_a_closed_pseudosurface(self):
        """Sanity on the triangulation itself: each edge in two triangles."""
        from collections import Counter

        edges = Counter()
        for t in RP2_TRIANGLES:
            for a in range(3):
                for b in range(a + 1, 3):
                    edges[frozenset((t[a], t[b]))] += 1
        assert len(edges) == 15
        assert all(count == 2 for count in edges.values())
        assert rp2().euler_characteristic() == 1

    def test_rp2_torsion_separates_backends(self):
        """H_*(RP²): GF(2) sees (1,1,1); the rationals see (1,0,0)."""
        c = rp2()
        assert betti_numbers(c, field="gf2") == (1, 1, 1)
        assert betti_numbers(c, field="rational") == (1, 0, 0)


class TestApi:
    def test_unknown_field(self):
        with pytest.raises(TopologyError):
            betti_numbers(sphere(1), field="p-adic")

    def test_boundary_matrix_dimensions(self):
        s = sphere(1)  # hollow triangle: 3 vertices, 3 edges
        cols = boundary_matrix_gf2(s, 1)
        assert len(cols) == 3
        assert rank_gf2(cols) == 2

    def test_boundary_matrix_degree_zero(self):
        s = sphere(1)
        assert boundary_matrix_gf2(s, 0) == [1, 1, 1]

    def test_boundary_matrix_out_of_range(self):
        with pytest.raises(TopologyError):
            boundary_matrix_gf2(sphere(1), 5)

    def test_rank_gf2_simple(self):
        assert rank_gf2([]) == 0
        assert rank_gf2([0b01, 0b10, 0b11]) == 2

    def test_is_k_connected_conventions(self):
        s = sphere(1)
        assert is_homologically_k_connected(s, -2)
        assert is_homologically_k_connected(s, -1)
        assert is_homologically_k_connected(s, 0)
        assert not is_homologically_k_connected(s, 1)
        assert not is_homologically_k_connected(
            SimplicialComplex.empty(), -1
        )
        assert is_homologically_k_connected(SimplicialComplex.empty(), -2)


def random_two_complexes():
    """Random 2-complexes on ≤5 vertices — too small to carry torsion."""

    @st.composite
    def build(draw):
        triangles = draw(
            st.lists(
                st.tuples(
                    st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)
                ).filter(lambda t: len(set(t)) == 3),
                min_size=1,
                max_size=8,
            )
        )
        return SimplicialComplex.from_simplices(
            solid(*t) for t in triangles
        )

    return build()


class TestBackendsAgree:
    @given(random_two_complexes())
    @settings(max_examples=40, deadline=None)
    def test_gf2_matches_rational_without_torsion(self, c):
        assert betti_numbers(c, "gf2") == betti_numbers(c, "rational")

    @given(random_two_complexes())
    @settings(max_examples=40, deadline=None)
    def test_euler_characteristic_from_betti(self, c):
        betti = betti_numbers(c, "rational")
        euler = sum((-1) ** d * b for d, b in enumerate(betti))
        assert euler == c.euler_characteristic()
