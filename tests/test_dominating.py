"""Tests for the dominating-set solvers."""

from __future__ import annotations

from hypothesis import given

from repro._bitops import full_mask, iter_subsets_of_size, popcount
from repro.graphs import (
    Digraph,
    all_minimum_dominating_sets,
    complete_graph,
    cycle,
    domination_number,
    greedy_dominating_set,
    is_dominating_set,
    minimum_dominating_set,
    out_tree,
    star,
    union_of_stars,
    wheel,
)
from tests.test_digraph import random_digraphs


class TestExactSolver:
    def test_star(self):
        assert domination_number(star(6, 3)) == 1
        assert minimum_dominating_set(star(6, 3)) == 1 << 3

    def test_clique(self):
        assert domination_number(complete_graph(5)) == 1

    def test_empty_graph_needs_everyone(self):
        assert domination_number(Digraph.empty(4)) == 4

    def test_cycles(self):
        assert domination_number(cycle(4)) == 2
        assert domination_number(cycle(6)) == 3
        assert domination_number(cycle(7)) == 4

    def test_wheel(self):
        assert domination_number(wheel(4)) == 1

    def test_union_of_stars(self):
        assert domination_number(union_of_stars(6, (0, 3))) == 1

    def test_binary_tree(self):
        assert domination_number(out_tree(7)) == 3

    def test_result_is_dominating(self):
        g = cycle(7)
        assert is_dominating_set(g, minimum_dominating_set(g))


class TestAllMinimum:
    def test_star_unique(self):
        assert all_minimum_dominating_sets(star(4, 1)) == [1 << 1]

    def test_cycle4_count(self):
        # In C4 every pair of "antipodal-or-adjacent" nodes covering all:
        # {i, i+2} both pairs, and adjacent pairs {i, i+1}? {0,1} covers
        # 0,1,2 — not 3. So exactly the two antipodal pairs dominate.
        sets = all_minimum_dominating_sets(cycle(4))
        assert sets == sorted([0b0101, 0b1010])

    def test_all_results_optimal_and_dominating(self):
        g = out_tree(6)
        gamma = domination_number(g)
        for members in all_minimum_dominating_sets(g):
            assert popcount(members) == gamma
            assert is_dominating_set(g, members)


class TestGreedy:
    @given(random_digraphs(6))
    def test_greedy_dominates(self, g):
        assert is_dominating_set(g, greedy_dominating_set(g))

    @given(random_digraphs(6))
    def test_exact_not_worse_than_greedy(self, g):
        assert domination_number(g) <= popcount(greedy_dominating_set(g))

    @given(random_digraphs(5))
    def test_exact_is_minimum(self, g):
        """Cross-check the branch-and-bound against brute force."""
        gamma = domination_number(g)
        universe = full_mask(g.n)
        brute = next(
            size
            for size in range(1, g.n + 1)
            if any(
                g.dominates(p) for p in iter_subsets_of_size(universe, size)
            )
        )
        assert gamma == brute
