"""Smoke tests for the ``examples/`` scripts (tier-1).

Each example is a user-facing entry point that exercises a wide slice of
the public API; running it in a subprocess catches import breakage,
renamed symbols and crashed demos that unit tests structurally miss.
Every script must exit 0 with no traceback — content assertions stay
light on purpose so examples remain free to evolve their prose.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _run(script: Path, extra_env: dict | None = None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("REPRO_STORE", "off")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=str(REPO_ROOT),
    )


def test_examples_exist():
    assert len(EXAMPLES) >= 5, "examples/ directory went missing or empty"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script: Path):
    result = _run(script)
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert "Traceback" not in result.stderr
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_quickstart_with_store_enabled(tmp_path):
    """The flagship example also runs with persistence switched on."""
    result = _run(
        EXAMPLES_DIR / "quickstart.py",
        extra_env={
            "REPRO_STORE": "rw",
            "REPRO_STORE_PATH": str(tmp_path / "example-store.sqlite"),
        },
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert (tmp_path / "example-store.sqlite").exists()
