"""Tests for the persistent result store: keys, backend, tiering, resume.

The equivalence suite is the contract of the store PR: every kernel
returns byte-identical results with the store off, cold (rw, empty file)
and warm (fresh process against a populated file) — and a killed sharded
sweep resumes without recomputing completed shards.
"""

from __future__ import annotations

import os
import sqlite3

import pytest

import repro.store as store_pkg
from repro.analysis.sweeps import solvability_sweep
from repro.bounds import bound_report
from repro.combinatorics import covering_numbers, equal_domination_number
from repro.engine import KERNEL_CACHE, Job, KernelCache, cached_kernel, run_batch
from repro.engine.cache import KERNEL_VERSIONS, cache_disabled
from repro.errors import StoreError
from repro.graphs import (
    Digraph,
    cycle,
    domination_number,
    star,
    symmetric_closure,
    union_of_stars,
    wheel,
)
from repro.store import MISS, ResultStore, StoreStats, encode_key, fingerprint
from repro.store.keys import Unfingerprintable
from repro.topology import Simplex, SimplicialComplex
from repro.verification import decide_one_round_solvability


@pytest.fixture(autouse=True)
def isolated_store(tmp_path):
    """Point the global store at a fresh rw temp file for every test."""
    KERNEL_CACHE.clear()
    store = store_pkg.configure(path=tmp_path / "results.sqlite", mode="rw")
    yield store
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


def _fresh_process(store: ResultStore) -> ResultStore:
    """Simulate a brand-new process: empty RAM cache, same store file."""
    store.flush()
    KERNEL_CACHE.clear()
    return store_pkg.configure(path=store.path, mode=store.mode)


class TestFingerprint:
    def test_primitives_are_distinct(self):
        values = [None, True, False, 0, 1, "1", 1.0, b"1", (1,), [1], {1}]
        encodings = [encode_key(v) for v in values]
        assert len(set(encodings)) == len(encodings)

    def test_set_encoding_is_order_free(self):
        a = frozenset({("alpha", 1), ("beta", 2), ("gamma", 3)})
        b = frozenset(sorted(a, key=repr, reverse=True))
        assert encode_key(a) == encode_key(b)
        assert fingerprint(a) == fingerprint(b)

    def test_dict_encoding_is_insertion_order_free(self):
        assert encode_key({"x": 1, "y": 2}) == encode_key({"y": 2, "x": 1})

    def test_digraph_and_complex_keys(self):
        g = cycle(4)
        assert fingerprint(g) == fingerprint(Digraph(4, g.out_rows))
        assert fingerprint(g) != fingerprint(star(4, 0))
        s1 = Simplex([(0, "v"), (1, "v")])
        c1 = SimplicialComplex.from_simplices([s1])
        c2 = SimplicialComplex.from_simplices([Simplex([(1, "v"), (0, "v")])])
        assert fingerprint(c1) == fingerprint(c2)
        assert fingerprint(s1) != fingerprint(c1)

    def test_unfingerprintable_returns_none(self):
        class Opaque:
            pass

        assert fingerprint(Opaque()) is None
        assert fingerprint((1, Opaque())) is None
        with pytest.raises(Unfingerprintable):
            encode_key(Opaque())

    def test_stability_across_runs(self):
        # Pinned digest: if this changes, every existing store file is
        # silently orphaned — bump keys._ENCODING_VERSION deliberately
        # instead of letting an encoder edit do it by accident.
        key = ((3, (1, 2, 4)), 2, frozenset({"a", "b"}))
        assert fingerprint(key) == (
            "63cb1f08c912040ac05642aa63c616a2be0b711b46ccc6799f8f0a00038f0a3e"
        )


class TestResultStoreBackend:
    def test_roundtrip_across_instances(self, tmp_path):
        path = tmp_path / "rt.sqlite"
        first = ResultStore(path, mode="rw")
        first.save("k", "1", ("key",), {"answer": 42})
        # Visible pre-flush through the pending overlay...
        assert first.load("k", "1", ("key",)) == {"answer": 42}
        first.close()
        # ...and post-flush from a different instance (fresh process).
        second = ResultStore(path, mode="ro")
        assert second.load("k", "1", ("key",)) == {"answer": 42}
        second.close()

    def test_miss_sentinel_distinguishes_stored_none(self, isolated_store):
        isolated_store.save("k", "1", "has-none", None)
        assert isolated_store.load("k", "1", "has-none") is None
        assert isolated_store.load("k", "1", "absent") is MISS

    def test_version_isolates_rows(self, isolated_store):
        isolated_store.save("k", "1", "key", "old")
        assert isolated_store.load("k", "2", "key") is MISS
        assert isolated_store.load("k", "1", "key") == "old"

    def test_ro_mode_never_writes(self, tmp_path):
        store = ResultStore(tmp_path / "ro.sqlite", mode="ro")
        store.save("k", "1", "key", "value")
        store.flush()
        assert store.load("k", "1", "key") is MISS
        assert not os.path.exists(store.path)

    def test_off_mode_is_inert(self, tmp_path):
        store = ResultStore(tmp_path / "off.sqlite", mode="off")
        store.save("k", "1", "key", "value")
        assert store.load("k", "1", "key") is MISS
        assert store.stats().lookups == 0

    def test_corrupt_row_is_a_miss_and_dropped(self, isolated_store):
        isolated_store.save("k", "1", "key", [1, 2, 3])
        isolated_store.flush()
        conn = sqlite3.connect(isolated_store.path)
        conn.execute("UPDATE results SET value = ?", (b"garbage",))
        conn.commit()
        conn.close()
        fresh = _fresh_process(isolated_store)
        assert fresh.load("k", "1", "key") is MISS
        report = fresh.integrity_report()
        assert report["ok"] and report["entries"] == 0

    def test_integrity_report_counts_corruption(self, isolated_store):
        isolated_store.save("k", "1", "a", 1)
        isolated_store.flush()
        conn = sqlite3.connect(isolated_store.path)
        conn.execute("UPDATE results SET checksum = 'bad'")
        conn.commit()
        conn.close()
        report = isolated_store.integrity_report()
        assert not report["ok"]
        assert report["corrupt"] == 1

    def test_clear_and_export(self, isolated_store, tmp_path):
        isolated_store.save("k", "1", "a", 1)
        copied_to = tmp_path / "backup.sqlite"
        assert isolated_store.export(str(copied_to)) == 1
        backup = ResultStore(copied_to, mode="ro")
        assert backup.load("k", "1", "a") == 1
        backup.close()
        assert isolated_store.clear() == 1
        assert isolated_store.load("k", "1", "a") is MISS

    def test_vacuum_drops_stale_versions(self, isolated_store):
        # domination_number is a registered kernel; plant a row under a
        # version that can never be current.
        assert "domination_number" in KERNEL_VERSIONS
        isolated_store.save("domination_number", "stale-version", "a", 9)
        isolated_store.save("unregistered_kernel", "v0", "b", 7)
        result = isolated_store.vacuum()
        assert result["deleted"] == 1
        # Unknown kernels are preserved.
        assert isolated_store.load("unregistered_kernel", "v0", "b") == 7

    def test_vacuum_requires_rw(self, tmp_path):
        store = ResultStore(tmp_path / "x.sqlite", mode="ro")
        with pytest.raises(StoreError):
            store.vacuum()

    def test_db_stats_reports_staleness(self, isolated_store):
        domination_number(cycle(5))
        isolated_store.save("domination_number", "stale-version", "a", 9)
        info = isolated_store.db_stats()
        assert info["entries"] >= 2
        assert info["stale_entries"] == 1
        assert any(row["stale"] for row in info["kernels"])

    def test_stats_merge_and_delta(self):
        a = StoreStats(hits=1, misses=2, writes=2, by_kernel=(("x", 1, 2, 2),))
        b = StoreStats(hits=3, misses=0, writes=1, by_kernel=(("y", 3, 0, 1),))
        merged = a.merge(b)
        assert (merged.hits, merged.misses, merged.writes) == (4, 2, 3)
        delta = merged.delta_since(a)
        assert (delta.hits, delta.misses, delta.writes) == (3, 0, 1)
        assert delta.to_dict()["by_kernel"] == [
            {"kernel": "y", "hits": 3, "misses": 0, "writes": 1}
        ]


class TestCacheTiering:
    def test_kernel_miss_falls_through_to_store(self, isolated_store):
        value = domination_number(cycle(6))
        isolated_store.flush()
        fresh = _fresh_process(isolated_store)
        again = domination_number(cycle(6))
        assert again == value
        stats = fresh.stats()
        assert {n: h for n, h, _m, _w in stats.by_kernel}.get(
            "domination_number"
        ) == 1

    def test_store_write_back_persists_new_results(self, isolated_store):
        covering_numbers(wheel(5))
        isolated_store.flush()
        conn = sqlite3.connect(isolated_store.path)
        kernels = {
            row[0]
            for row in conn.execute("SELECT DISTINCT kernel FROM results")
        }
        conn.close()
        assert "covering_numbers" in kernels

    def test_cache_disabled_bypasses_store_entirely(self, isolated_store):
        calls = []

        @cached_kernel(name="probe_kernel_t1", key=lambda x: x, version="1")
        def probe(x):
            calls.append(x)
            return x * 2

        assert probe(21) == 42
        with cache_disabled():
            assert probe(21) == 42  # recomputed, not served by any tier
        assert calls == [21, 21]
        # Outside the context the tiers serve again.
        KERNEL_CACHE.clear()
        assert probe(21) == 42
        assert calls == [21, 21]

    def test_store_disabled_context(self, isolated_store):
        calls = []

        @cached_kernel(name="probe_kernel_t2", key=lambda x: x, version="1")
        def probe(x):
            calls.append(x)
            return x + 1

        probe(1)
        KERNEL_CACHE.clear()
        with store_pkg.disabled():
            probe(1)
        assert calls == [1, 1]  # store off: the fresh cache had to compute

    def test_version_bump_invalidates_store(self, isolated_store):
        calls = []

        @cached_kernel(name="versioned_kernel", key=lambda x: x, version="1")
        def v1(x):
            calls.append(("v1", x))
            return x

        v1(5)
        KERNEL_CACHE.clear()

        @cached_kernel(name="versioned_kernel", key=lambda x: x, version="2")
        def v2(x):
            calls.append(("v2", x))
            return x

        v2(5)
        assert calls == [("v1", 5), ("v2", 5)]
        # The v1 row is still there for v1 readers...
        KERNEL_CACHE.clear()
        v1(5)
        assert calls == [("v1", 5), ("v2", 5)]
        # ...and vacuum (current version is now "2") reclaims it.
        isolated_store.vacuum()
        KERNEL_CACHE.clear()
        v1(5)
        assert calls == [("v1", 5), ("v2", 5), ("v1", 5)]

    def test_source_hash_default_version_registered(self):
        version = KERNEL_VERSIONS["domination_number"]
        assert isinstance(version, str) and len(version) == 12

    @pytest.mark.parametrize("scenario", ["off", "cold", "warm"])
    def test_results_identical_across_store_scenarios(
        self, isolated_store, scenario
    ):
        def workload():
            sym = sorted(symmetric_closure([union_of_stars(4, (0, 1))]))
            return repr(
                (
                    bound_report(sym).describe(),
                    domination_number(wheel(5)),
                    covering_numbers(cycle(5)),
                    equal_domination_number(cycle(5)),
                    decide_one_round_solvability([cycle(3)], 1),
                )
            )

        with store_pkg.disabled():
            with cache_disabled():
                baseline = workload()
        KERNEL_CACHE.clear()
        if scenario == "off":
            with store_pkg.disabled():
                assert workload() == baseline
        elif scenario == "cold":
            assert workload() == baseline
        else:
            workload()  # populate
            _fresh_process(isolated_store)
            assert workload() == baseline


class TestBatchStoreMerge:
    def test_parallel_workers_populate_one_store(self, isolated_store):
        tasks = [
            Job(name=f"gamma:{n}", fn=domination_number, args=(cycle(n),))
            for n in (4, 5, 6, 7)
        ]
        batch = run_batch(tasks, jobs=2)
        assert batch.jobs == 2
        assert batch.store_stats is not None
        assert batch.store_stats.writes > 0
        isolated_store.flush()
        # Every worker-computed row reached the parent's database.
        fresh = _fresh_process(isolated_store)
        KERNEL_CACHE.clear()
        for n in (4, 5, 6, 7):
            domination_number(cycle(n))
        hits = {
            name: h for name, h, _m, _w in fresh.stats().by_kernel
        }.get("domination_number", 0)
        assert hits == 4

    def test_parallel_matches_serial_with_store(self, isolated_store):
        models = [[cycle(4)], [wheel(5)], [union_of_stars(5, (0, 1))]]
        from repro.bounds import bound_report_many

        serial = bound_report_many(models, jobs=1)
        KERNEL_CACHE.clear()
        parallel = bound_report_many(models, jobs=2)
        assert parallel == serial

    def test_store_stats_absorbed_into_global_store(self, isolated_store):
        tasks = [
            Job(name="geq", fn=equal_domination_number, args=(cycle(5),))
        ]
        run_batch(tasks, jobs=1)
        stats = isolated_store.stats()
        assert stats.writes > 0


class TestSweepResume:
    def test_limit_then_full_resumes(self, isolated_store):
        partial = solvability_sweep(3, limit=4)
        assert partial.sharded == 4 and partial.total_classes == 16
        assert partial.resumed == 0
        # Fresh process: the first four shards must come from the store.
        _fresh_process(isolated_store)
        full = solvability_sweep(3)
        assert full.sharded == 16
        assert full.resumed >= 4
        assert full.rows[:4] == partial.rows
        assert all(row[3] for row in full.rows)  # all within bounds

    def test_sweep_rows_match_e10_table(self, isolated_store):
        from repro.analysis.tables import e10_solvability_frontier_table

        headers, rows = e10_solvability_frontier_table(n=3)
        report = solvability_sweep(3)
        assert headers == report.headers
        assert rows == report.rows

    def test_sweep_parallel_matches_serial(self, isolated_store):
        serial = solvability_sweep(3, limit=6)
        KERNEL_CACHE.clear()
        parallel = solvability_sweep(3, limit=6, jobs=2)
        assert parallel.rows == serial.rows

    def test_sweep_describe_mentions_resume(self, isolated_store):
        report = solvability_sweep(3, limit=2)
        text = report.describe()
        assert "isomorphism classes" in text and "resumed" in text


class TestStoreProbe:
    def test_store_probe_warm_start(self, isolated_store):
        from repro.engine.diagnostics import store_probe

        report = store_probe(n=4, passes=2)
        assert len(report.pass_times) == 2
        assert report.store_stats.writes > 0
        assert report.store_stats.hits > 0
        assert report.speedup > 1.0
        payload = report.to_dict()
        assert payload["store_mode"] == "rw"
        assert "warm-start speedup" in report.describe()

    def test_store_probe_requires_active_store(self):
        from repro.engine.diagnostics import store_probe

        store_pkg.configure(mode="off")
        with pytest.raises(ValueError, match="active result store"):
            store_probe(n=4)


def _load_seed_row() -> int:
    """Top-level job hitting a pre-seeded store row (touch regression)."""
    value = store_pkg.RESULT_STORE.load("seed_kernel", "1", ("row", 0))
    assert value is not store_pkg.MISS
    return 7


def _nested_batch_job(n: int) -> int:
    """Top-level job that itself runs a batch (the E10-inside-worker shape)."""
    batch = run_batch(
        [Job(name=f"inner:{n}", fn=domination_number, args=(cycle(n),))],
        jobs=2,  # degrades to serial inside a daemonic worker
    )
    return batch.values[0]


class TestRobustness:
    def test_unreadable_store_file_degrades_to_misses(self, tmp_path):
        """A garbage database must never crash a kernel call (best-effort)."""
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not a sqlite database at all")
        store = store_pkg.configure(path=path, mode="rw")
        KERNEL_CACHE.clear()
        assert domination_number(cycle(5)) == 3  # computes, store misses
        assert store.flush() == 0  # nothing can be written either
        report = store.integrity_report()
        assert report["ok"] is False
        assert report["quick_check"] == "unreadable"
        with pytest.raises(StoreError, match="unreadable"):
            store.vacuum()

    def test_pseudosphere_accepts_unorderable_hashable_views(
        self, isolated_store
    ):
        from repro.topology import Pseudosphere

        class Opaque:
            """Hashable but not orderable — the documented view contract."""

        a, b = Opaque(), Opaque()
        complex_ = Pseudosphere({0: [a, b], 1: [a]}).to_complex()
        assert len(complex_) == 2  # two facets: one per view choice of p0

    def test_nested_batch_rows_reach_parent_store(self, isolated_store):
        """A worker running its own (degraded) batch ships rows home."""
        batch = run_batch(
            [
                Job(name="outer:6", fn=_nested_batch_job, args=(6,)),
                Job(name="outer:7", fn=_nested_batch_job, args=(7,)),
            ],
            jobs=2,  # two tasks, so real daemonic workers fork
        )
        assert batch.jobs == 2
        assert batch.values == (3, 4)
        isolated_store.flush()
        fresh = _fresh_process(isolated_store)
        KERNEL_CACHE.clear()
        domination_number(cycle(6))
        domination_number(cycle(7))
        hits = {
            name: h for name, h, _m, _w in fresh.stats().by_kernel
        }.get("domination_number", 0)
        assert hits == 2

    def test_store_cli_refuses_missing_file(self, tmp_path):
        from repro.__main__ import main

        missing = tmp_path / "typo.sqlite"
        try:
            for action in ("vacuum", "clear", "integrity"):
                with pytest.raises(SystemExit, match="no store file"):
                    main(["store", action, "--path", str(missing)])
                assert not missing.exists()  # no side-effect creation
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")


def _seed_rows(store: ResultStore, count: int, *, blob_bytes: int = 0) -> None:
    """Insert ``count`` synthetic rows (optionally padded for size tests)."""
    payload = "x" * blob_bytes
    for i in range(count):
        store.save("seed_kernel", "1", ("row", i), (i, payload))
    store.flush()


class TestPrune:
    def test_requires_a_cap_and_rw_mode(self, isolated_store, tmp_path):
        with pytest.raises(StoreError, match="max_age_days"):
            isolated_store.prune()
        ro = ResultStore(tmp_path / "ro.sqlite", mode="ro")
        with pytest.raises(StoreError, match="writable"):
            ro.prune(max_age_days=1)

    def test_age_cap_evicts_only_cold_rows(self, isolated_store):
        _seed_rows(isolated_store, 4)
        conn = isolated_store._connection()
        # Rows 0 and 1 were last used 10 days ago; 2 and 3 are fresh.
        import time as _time

        old = _time.time() - 10 * 86400
        for i in (0, 1):
            key_hash = store_pkg.fingerprint(("row", i))
            conn.execute(
                "UPDATE results SET last_used = ? WHERE key_hash = ?",
                (old, key_hash),
            )
        conn.commit()
        report = isolated_store.prune(max_age_days=7)
        assert report["deleted_age"] == 2
        assert report["remaining"] == 2
        assert isolated_store.load("seed_kernel", "1", ("row", 0)) is MISS
        assert isolated_store.load("seed_kernel", "1", ("row", 3)) == (3, "")

    def test_size_cap_evicts_lru_first_until_the_file_fits(
        self, isolated_store
    ):
        _seed_rows(isolated_store, 40, blob_bytes=32 * 1024)
        conn = isolated_store._connection()
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")  # writes sit in -wal
        before = os.path.getsize(isolated_store.path)
        assert before > (1 << 20) // 2
        # Touch the newest rows so they are the most recently used ones.
        for i in range(30, 40):
            assert isolated_store.load("seed_kernel", "1", ("row", i)) != MISS
        isolated_store.flush()
        report = isolated_store.prune(max_size_mb=0.5)
        assert report["deleted_size"] > 0
        assert report["file_bytes"] <= (1 << 20) // 2
        assert os.path.getsize(isolated_store.path) <= (1 << 20) // 2
        # The recently-touched rows survived the LRU eviction.
        assert isolated_store.load("seed_kernel", "1", ("row", 39)) != MISS

    def test_load_touch_refreshes_last_used(self, isolated_store):
        _seed_rows(isolated_store, 1)
        conn = isolated_store._connection()
        conn.execute("UPDATE results SET last_used = 1.0")
        conn.commit()
        assert isolated_store.load("seed_kernel", "1", ("row", 0)) == (0, "")
        isolated_store.flush()
        (value,) = conn.execute(
            "SELECT last_used FROM results"
        ).fetchone()
        assert value > 1.0

    def test_cli_prune_reports_and_requires_caps(self, isolated_store, capsys):
        from repro.__main__ import main

        _seed_rows(isolated_store, 3)
        with pytest.raises(SystemExit, match="max-age-days"):
            main(["store", "prune", "--path", isolated_store.path])
        code = main(
            [
                "store", "prune", "--path", isolated_store.path,
                "--max-age-days", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "prune:" in out and "3 remain" in out

    def test_v1_schema_migrates_in_place(self, tmp_path):
        """A pre-last_used store file is upgraded without losing rows."""
        path = tmp_path / "v1.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE results (
                kernel TEXT NOT NULL, version TEXT NOT NULL,
                key_hash TEXT NOT NULL, value BLOB NOT NULL,
                checksum TEXT NOT NULL, created REAL NOT NULL,
                PRIMARY KEY (kernel, version, key_hash)
            );
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            INSERT INTO meta VALUES ('schema_version', '1');
            """
        )
        import pickle as _pickle

        blob = _pickle.dumps(123)
        import hashlib as _hashlib

        conn.execute(
            "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?)",
            (
                "seed_kernel", "1", store_pkg.fingerprint(("row", 0)),
                blob, _hashlib.sha256(blob).hexdigest(), 1000.0,
            ),
        )
        conn.commit()
        conn.close()
        store = ResultStore(path, mode="rw")
        assert store.load("seed_kernel", "1", ("row", 0)) == 123
        report = store.prune(max_age_days=10_000_000)
        assert report["remaining"] == 1  # seeded last_used = created
        conn = store._connection()
        (value,) = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        assert value == "2"
        store.close()


class TestWorkerModeDelta:
    def test_worker_mode_never_touches_sqlite(self, tmp_path):
        store = ResultStore(tmp_path / "w.sqlite", mode="rw")
        store.worker_mode = True
        store.save("k", "1", ("a",), 1)
        store.save("k", "1", ("b",), 2)
        assert store.flush() == 0
        assert not os.path.exists(store.path)
        # Pending rows still serve reads (the overlay).
        assert store.load("k", "1", ("a",)) == 1

    def test_worker_touches_ride_home_and_refresh_last_used(self, tmp_path):
        """Regression: loads inside workers must still feed prune's
        recency signal — touches ship home with the delta/job payloads."""
        parent = ResultStore(tmp_path / "shared.sqlite", mode="rw")
        parent.save("k", "1", ("hot",), 7)
        parent.flush()
        conn = parent._connection()
        conn.execute("UPDATE results SET last_used = 1.0")
        conn.commit()

        worker = ResultStore(tmp_path / "shared.sqlite", mode="rw")
        worker.worker_mode = True
        assert worker.load("k", "1", ("hot",)) == 7  # a store hit
        delta = worker.export_delta(since=worker.stats())
        assert delta.touches, "worker hit produced no touch"
        parent.import_delta(delta)
        parent.flush()
        (value,) = conn.execute("SELECT last_used FROM results").fetchone()
        assert value > 1.0
        parent.close()
        worker.close()

    def test_pool_worker_loads_refresh_last_used(self, isolated_store):
        """End-to-end: a --jobs 2 rerun over a warm store refreshes
        last_used via the per-job drained touches."""
        _seed_rows(isolated_store, 1)
        conn = isolated_store._connection()
        conn.execute("UPDATE results SET last_used = 1.0")
        conn.commit()
        KERNEL_CACHE.clear()
        batch = run_batch(
            [
                Job("load-a", _load_seed_row, ()),
                Job("load-b", _load_seed_row, ()),
            ],
            jobs=2,
        )
        assert batch.values == (7, 7)
        isolated_store.flush()
        (value,) = conn.execute("SELECT last_used FROM results").fetchone()
        assert value > 1.0

    def test_export_import_delta_round_trip(self, tmp_path):
        worker = ResultStore(tmp_path / "shared.sqlite", mode="rw")
        worker.worker_mode = True
        baseline = worker.stats()
        worker.save("k", "1", ("a",), 41)
        delta = worker.export_delta(since=baseline)
        assert len(delta.rows) == 1
        assert delta.stats.writes == 1
        # A second export is empty: the first drained everything.
        again = worker.export_delta(since=worker.stats())
        assert again.rows == ()
        parent = ResultStore(tmp_path / "shared.sqlite", mode="rw")
        parent.import_delta(delta)
        assert parent.load("k", "1", ("a",)) == 41
        assert parent.stats().writes >= 1
        # Garbage payloads are ignored rather than crashing the server.
        parent.import_delta({"rows": "nonsense"})
        parent.close()
        worker.close()


class TestConfiguration:
    def test_configure_replaces_global(self, tmp_path):
        replaced = store_pkg.configure(path=tmp_path / "a.sqlite", mode="ro")
        assert store_pkg.RESULT_STORE is replaced
        assert store_pkg.active_store() is replaced
        store_pkg.configure(mode="off")
        assert store_pkg.active_store() is None

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="mode"):
            ResultStore(tmp_path / "x.sqlite", mode="bogus")

    def test_experiment_footer_reports_store(self, isolated_store, capsys):
        from repro.__main__ import main

        assert main(["experiments", "E2"]) == 0
        out = capsys.readouterr().out
        assert "store:" in out and "writes" in out


class TestSeedTier:
    """The in-memory seed tier and the wire-format row round trips."""

    def test_export_seed_filters_by_version(self, isolated_store):
        isolated_store.save("alive", "1", ("a",), 1)
        isolated_store.save("alive", "0", ("b",), 2)  # stale version
        isolated_store.save("other", "1", ("c",), 3)  # unrequested kernel
        isolated_store.flush()
        rows = [
            row
            for chunk in isolated_store.export_seed({"alive": "1"})
            for row in chunk
        ]
        assert [(r[0], r[1]) for r in rows] == [("alive", "1")]

    def test_export_seed_chunks_by_rows_and_bytes(self, isolated_store):
        _seed_rows(isolated_store, 7, blob_bytes=2048)
        chunks = list(
            isolated_store.export_seed(
                {"seed_kernel": "1"}, chunk_rows=3, chunk_bytes=1 << 30
            )
        )
        assert [len(c) for c in chunks] == [3, 3, 1]
        by_bytes = list(
            isolated_store.export_seed(
                {"seed_kernel": "1"}, chunk_rows=512, chunk_bytes=4096
            )
        )
        assert len(by_bytes) > 1
        assert sum(len(c) for c in by_bytes) == 7

    def test_import_seed_serves_hits_without_touching_disk(
        self, isolated_store
    ):
        isolated_store.save("k", "1", ("x",), {"deep": (1, 2)})
        isolated_store.flush()
        rows = [
            row
            for chunk in isolated_store.export_seed({"k": "1"})
            for row in chunk
        ]
        worker = ResultStore(":memory:", mode="rw")
        worker.worker_mode = True
        assert worker.import_seed_rows(rows) == 1
        assert worker.seed_rows == 1
        assert worker.load("k", "1", ("x",)) == {"deep": (1, 2)}
        stats = worker.stats()
        assert (stats.hits, stats.misses, stats.seed_hits) == (1, 0, 1)
        assert worker.clear_seed() == 1
        assert worker.load("k", "1", ("x",)) is MISS

    def test_import_seed_rejects_corrupt_rows(self, isolated_store):
        isolated_store.save("k", "1", ("x",), 42)
        isolated_store.flush()
        (row,) = [
            row
            for chunk in isolated_store.export_seed({"k": "1"})
            for row in chunk
        ]
        tampered = row[:3] + (b"not the blob",) + row[4:]
        worker = ResultStore(":memory:", mode="rw")
        assert worker.import_seed_rows([tampered, None, ("short",)]) == 0
        assert worker.load("k", "1", ("x",)) is MISS

    def test_ro_worker_mode_still_records_touches(self, isolated_store):
        """An REPRO_STORE=ro warm-start worker cannot flush, but its hits
        must still ship recency home (the coordinator applies them)."""
        isolated_store.save("k", "1", ("x",), 42)
        isolated_store.flush()
        rows = [
            row
            for chunk in isolated_store.export_seed({"k": "1"})
            for row in chunk
        ]
        worker = ResultStore(":memory:", mode="ro")
        worker.worker_mode = True
        worker.import_seed_rows(rows)
        assert worker.load("k", "1", ("x",)) == 42
        touches = worker.drain_touches()
        assert len(touches) == 1
        # A plain ro store outside worker mode keeps the old behavior:
        # nothing to ship anywhere, so nothing is recorded.
        plain = ResultStore(isolated_store.path, mode="ro")
        assert plain.load("k", "1", ("x",)) == 42
        assert plain.drain_touches() == ()
        plain.close()

    def test_seed_hits_ship_touches_home(self, isolated_store):
        """A seeded row served on a worker must refresh the home copy's
        last_used once its touches ride back (prune's recency signal)."""
        isolated_store.save("k", "1", ("x",), 42)
        isolated_store.flush()
        conn = isolated_store._connection()
        conn.execute("UPDATE results SET last_used = 1.0")
        conn.commit()
        rows = [
            row
            for chunk in isolated_store.export_seed({"k": "1"})
            for row in chunk
        ]
        worker = ResultStore(":memory:", mode="rw")
        worker.worker_mode = True
        worker.import_seed_rows(rows)
        assert worker.load("k", "1", ("x",)) == 42
        touches = worker.drain_touches()
        assert len(touches) == 1
        isolated_store.absorb_touches(touches)
        isolated_store.flush()
        (value,) = conn.execute("SELECT last_used FROM results").fetchone()
        assert value > 1.0


class TestLastUsedRoundTrip:
    """Imported rows keep their recency instead of resetting it."""

    @staticmethod
    def _last_used(store: ResultStore) -> float:
        (value,) = (
            store._connection()
            .execute("SELECT last_used FROM results")
            .fetchone()
        )
        return value

    def test_imported_rows_carry_last_used(self, isolated_store, tmp_path):
        worker = ResultStore(tmp_path / "w.sqlite", mode="rw")
        worker.worker_mode = True
        worker.save("k", "1", ("x",), 42)
        (row,) = worker.drain_pending()
        assert len(row) == 7  # (…, created, last_used) on the wire
        hot = row[5] + 1000.0
        touched = row[:6] + (hot,)
        isolated_store.absorb_rows([touched])
        isolated_store.flush()
        assert self._last_used(isolated_store) == hot

    def test_duplicate_import_never_regresses_last_used(
        self, isolated_store
    ):
        isolated_store.save("k", "1", ("x",), 42)
        isolated_store.flush()
        hot = self._last_used(isolated_store) + 500.0
        conn = isolated_store._connection()
        conn.execute("UPDATE results SET last_used = ?", (hot,))
        conn.commit()
        # A requeued job recomputed the same row elsewhere with an older
        # timestamp; re-importing it must not cool the hot copy down.
        worker = ResultStore(":memory:", mode="rw")
        worker.worker_mode = True
        worker.save("k", "1", ("x",), 42)
        isolated_store.import_delta(worker.export_delta())
        assert self._last_used(isolated_store) == hot

    def test_legacy_six_tuple_rows_still_import(self, isolated_store):
        import time as _time

        now = _time.time()
        blob = __import__("pickle").dumps(42)
        checksum = __import__("hashlib").sha256(blob).hexdigest()
        legacy = ("k", "1", store_pkg.fingerprint(("x",)), blob, checksum, now)
        isolated_store.absorb_rows([legacy])
        isolated_store.flush()
        assert isolated_store.load("k", "1", ("x",)) == 42
        assert self._last_used(isolated_store) == now


class TestRemoteTierLocking:
    """The PR-4 carry-over fix: ``ResultStore.load`` must not hold the
    store-wide lock across the remote tier's network round trip (up to
    the 30 s frame timeout against a stalled coordinator), or one slow
    remote load freezes every other thread's store access."""

    def test_slow_remote_load_does_not_block_other_threads(
        self, isolated_store
    ):
        import threading
        import time

        entered = threading.Event()
        release = threading.Event()

        class SlowTier:
            def load(self, kernel, version, key_hash):
                if kernel == "slow":
                    entered.set()
                    # Guarded stand-in for a stalled coordinator: the
                    # test releases it long before the timeout.
                    release.wait(timeout=10)
                return None

        isolated_store.remote_tier = SlowTier()
        slow_result = []
        worker = threading.Thread(
            target=lambda: slow_result.append(
                isolated_store.load("slow", "1", ("a",))
            )
        )
        worker.start()
        try:
            assert entered.wait(timeout=5)
            # While the slow load sits in its round trip, an unrelated
            # load must come straight back.  Before the fix this waited
            # out the full SlowTier stall on the store lock.
            start = time.perf_counter()
            assert isolated_store.load("fast", "1", ("b",)) is MISS
            elapsed = time.perf_counter() - start
        finally:
            release.set()
            worker.join(timeout=10)
        assert not worker.is_alive()
        assert slow_result == [MISS]
        assert elapsed < 2.0

    def test_remote_hit_installs_seed_row_once(self, isolated_store):
        import hashlib
        import pickle

        value = {"deep": (1, 2)}
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        checksum = hashlib.sha256(blob).hexdigest()
        calls = []

        class Tier:
            def load(self, *full_key):
                calls.append(full_key)
                return (*full_key, blob, checksum, 0.0)

        isolated_store.remote_tier = Tier()
        assert isolated_store.load("k", "1", ("x",)) == value
        # Served from the installed seed row: no second round trip.
        assert isolated_store.load("k", "1", ("x",)) == value
        assert len(calls) == 1
        stats = isolated_store.stats()
        assert stats.remote_hits == 1
        assert (stats.hits, stats.misses) == (2, 0)

    def test_corrupt_remote_row_counts_a_miss(self, isolated_store):
        class CorruptTier:
            def load(self, *full_key):
                return (*full_key, b"\x00garbage", "bad-checksum", 0.0)

        isolated_store.remote_tier = CorruptTier()
        assert isolated_store.load("k", "1", ("x",)) is MISS
        stats = isolated_store.stats()
        assert (stats.hits, stats.misses, stats.remote_hits) == (0, 1, 0)
