"""Tests for covering-number sequences (Defs 6.6, 6.8; Thms 6.7, 6.9)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.combinatorics import (
    covering_sequence,
    covering_sequence_of_set,
    rounds_to_reach_all,
    rounds_to_reach_all_of_set,
)
from repro.errors import GraphError
from repro.graphs import (
    Digraph,
    complete_graph,
    cycle,
    star,
    symmetric_closure,
    union_of_stars,
)
from tests.test_digraph import random_digraphs


class TestSingleGraph:
    def test_clique_floods_instantly(self):
        assert covering_sequence(complete_graph(4), 1) == [4]
        assert rounds_to_reach_all(complete_graph(4), 1) == 1

    def test_cycle_progression(self):
        # In C_n a single process reaches one extra listener per round.
        seq = covering_sequence(cycle(5), 1)
        assert seq == [2, 3, 4, 5]
        assert rounds_to_reach_all(cycle(5), 1) == 4

    def test_cycle_higher_i(self):
        seq = covering_sequence(cycle(6), 2)
        assert seq[0] >= 3
        assert seq[-1] == 6

    def test_star_stalls_for_leaves(self):
        # cov_1(star) = 1 = i: a silent leaf never spreads.
        assert rounds_to_reach_all(star(4, 0), 1) is None
        seq = covering_sequence(star(4, 0), 1)
        assert seq == [1]

    def test_max_rounds_truncation(self):
        seq = covering_sequence(cycle(6), 1, max_rounds=2)
        assert len(seq) == 2

    def test_bad_index(self):
        with pytest.raises(GraphError):
            covering_sequence(cycle(3), 0)

    @given(random_digraphs(5))
    def test_sequence_nondecreasing(self, g):
        seq = covering_sequence(g, 1)
        assert all(a <= b for a, b in zip(seq, seq[1:]))

    @given(random_digraphs(5))
    def test_reach_all_consistency(self, g):
        rounds = rounds_to_reach_all(g, 1)
        seq = covering_sequence(g, 1)
        if rounds is None:
            assert seq[-1] < g.n
        else:
            assert seq[-1] == g.n
            assert len(seq) == rounds


class TestGraphSets:
    def test_set_sequence_pessimistic(self):
        s = [cycle(5), complete_graph(5)]
        # min over graphs: the cycle bounds the progression.
        assert covering_sequence_of_set(s, 1) == covering_sequence(cycle(5), 1)

    def test_symmetric_stars_stall(self):
        sym = sorted(symmetric_closure([union_of_stars(4, (0,))]))
        assert rounds_to_reach_all_of_set(sym, 1) is None

    def test_set_reaches(self):
        sym = sorted(symmetric_closure([cycle(4)]))
        rounds = rounds_to_reach_all_of_set(sym, 1)
        assert rounds == 3

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            covering_sequence_of_set([], 1)
        with pytest.raises(GraphError):
            rounds_to_reach_all_of_set([], 1)
