"""Tests for nerve complexes (Def 4.10, Lemma 4.11) and shellability (4.4)."""

from __future__ import annotations

import pytest

from repro.analysis import figure4a_complex, figure4b_complex
from repro.errors import TopologyError
from repro.topology import (
    Simplex,
    SimplicialComplex,
    find_shelling_order,
    is_cover,
    is_shellable,
    is_shelling_order,
    is_valid_shelling_step,
    nerve_complex,
    nerve_lemma_hypothesis_holds,
    nerve_lemma_transfer,
)


def tri(*colors):
    return Simplex((c, "v") for c in colors)


class TestNerve:
    def test_two_overlapping_triangles(self):
        a = SimplicialComplex([tri(0, 1, 2)])
        b = SimplicialComplex([tri(1, 2, 3)])
        nerve = nerve_complex([a, b])
        # Intersection non-empty -> the nerve is an edge (a 1-simplex).
        assert nerve.dimension == 1
        assert len(nerve) == 1

    def test_disjoint_pieces(self):
        a = SimplicialComplex([tri(0, 1)])
        b = SimplicialComplex([tri(2, 3)])
        nerve = nerve_complex([a, b])
        assert nerve.dimension == 0
        assert len(nerve) == 2

    def test_empty_cover_rejected(self):
        with pytest.raises(TopologyError):
            nerve_complex([])

    def test_is_cover(self):
        c = SimplicialComplex([tri(0, 1, 2), tri(1, 2, 3)])
        a = SimplicialComplex([tri(0, 1, 2)])
        b = SimplicialComplex([tri(1, 2, 3)])
        assert is_cover(c, [a, b])
        assert not is_cover(c, [a])

    def test_nerve_lemma_on_contractible_union(self):
        """Two triangles sharing an edge: nerve lemma certifies 1-connected."""
        a = SimplicialComplex([tri(0, 1, 2)])
        b = SimplicialComplex([tri(1, 2, 3)])
        assert nerve_lemma_hypothesis_holds([a, b], k=1)
        assert nerve_lemma_transfer([a, b], k=1) is True

    def test_nerve_lemma_hypothesis_fails(self):
        """Two triangles meeting in a point: intersection is only a point,
        which is fine for k=0 but the *union* connectivity needs care —
        here the hypothesis for k=1 fails (point is not 0-connected? it is;
        dim constraint k-|J|+1 = 0 satisfied by a point) so we check a
        genuinely failing case: disjoint pieces at k=0."""
        a = SimplicialComplex([tri(0, 1)])
        b = SimplicialComplex([tri(2, 3)])
        # Intersection empty => hypothesis trivially holds; the nerve then
        # reports the disconnection.
        assert nerve_lemma_hypothesis_holds([a, b], k=0)
        assert nerve_lemma_transfer([a, b], k=0) is False

    def test_nerve_lemma_silent_when_hypothesis_fails(self):
        # A cover piece that is itself disconnected breaks the hypothesis
        # at k=1 (each J={i} needs (k-|J|+1)=1-connectivity... the
        # disconnected piece is not even 0-connected).
        weird = SimplicialComplex([tri(0, 1), tri(4, 5)])
        other = SimplicialComplex([tri(1, 4)])
        assert nerve_lemma_transfer([weird, other], k=1) is None


class TestShellingSteps:
    def test_first_step_always_valid(self):
        assert is_valid_shelling_step([], tri(0, 1, 2))

    def test_edge_glue_valid(self):
        assert is_valid_shelling_step([tri(0, 1, 2)], tri(1, 2, 3))

    def test_vertex_glue_invalid(self):
        assert not is_valid_shelling_step([tri(0, 1, 2)], tri(2, 3, 4))

    def test_disjoint_invalid(self):
        assert not is_valid_shelling_step([tri(0, 1, 2)], tri(3, 4, 5))

    def test_is_shelling_order(self):
        assert is_shelling_order([tri(0, 1, 2), tri(1, 2, 3), tri(2, 3, 0)])
        assert not is_shelling_order([tri(0, 1, 2), tri(2, 3, 4)])


class TestShellability:
    def test_figure_4a_shellable(self):
        assert is_shellable(figure4a_complex())

    def test_figure_4b_not_shellable(self):
        assert not is_shellable(figure4b_complex())

    def test_simplex_boundary_shellable(self):
        """Lemma 4.15 (special case): boundaries of simplexes shell."""
        tetra = Simplex((i, "v") for i in range(4))
        boundary = SimplicialComplex.from_simplices(tetra.boundary())
        order = find_shelling_order(boundary)
        assert order is not None
        assert len(order) == 4
        assert is_shelling_order(order)

    def test_lemma_4_15_any_order_works(self):
        """Lemma 4.15: any facet order of a pure (d-1)-subcomplex of a
        simplex boundary is a shelling order."""
        from itertools import permutations

        tetra = Simplex((i, "v") for i in range(4))
        facets = sorted(tetra.boundary(), key=lambda s: sorted(s.colors()))
        for perm in permutations(facets[:3]):
            assert is_shelling_order(list(perm))

    def test_empty_complex(self):
        assert find_shelling_order(SimplicialComplex.empty()) == []
        assert is_shellable(SimplicialComplex.empty())

    def test_single_facet(self):
        c = SimplicialComplex([tri(0, 1, 2)])
        assert is_shellable(c)

    def test_non_pure_rejected(self):
        c = SimplicialComplex([tri(0, 1, 2), tri(3, 4)])
        with pytest.raises(TopologyError):
            is_shellable(c)

    def test_pseudosphere_is_shellable(self):
        """Pseudospheres are shellable (they are vertex-decomposable)."""
        from repro.topology import Pseudosphere

        ps = Pseudosphere.uniform((0, 1), ("a", "b"))
        assert is_shellable(ps.to_complex())

    def test_order_requires_backtracking_sometimes(self):
        """A triangulated square ring (annulus boundary-like): shellable
        but not every order works, exercising the DFS."""
        facets = [tri(0, 1, 2), tri(1, 2, 3), tri(2, 3, 0), tri(3, 0, 1)]
        c = SimplicialComplex.from_simplices(facets)
        order = find_shelling_order(c)
        assert order is not None
        assert is_shelling_order(order)
