"""repro.config: layered frozen configs, builders, fingerprints, shims."""

from __future__ import annotations

import argparse

import pytest

from repro import store as store_pkg
from repro.analysis import sweeps
from repro.config import (
    DEFAULT_BUDGET,
    DEFAULT_SPLIT_THRESHOLD,
    ExecutorConfig,
    ServeConfig,
    StoreConfig,
    SweepConfig,
    config_fingerprint,
)
from repro.dist import DistExecutor, PoolExecutor, SerialExecutor, make_executor
from repro.engine import KERNEL_CACHE
from repro.errors import ConfigError


def _ns(**kwargs) -> argparse.Namespace:
    return argparse.Namespace(**kwargs)


class TestMirroredDefaults:
    def test_sweep_constants_cannot_drift(self):
        """config mirrors sweeps' knob defaults without importing it."""
        assert DEFAULT_BUDGET == sweeps.DEFAULT_BUDGET
        assert DEFAULT_SPLIT_THRESHOLD == sweeps.DEFAULT_SPLIT_THRESHOLD
        assert SweepConfig().budget == sweeps.DEFAULT_BUDGET
        assert SweepConfig().split_threshold == sweeps.DEFAULT_SPLIT_THRESHOLD


class TestBuilders:
    def test_fluent_builder_equals_constructor(self):
        built = ExecutorConfig.builder().jobs(4).seed_store(False).build()
        assert built == ExecutorConfig(jobs=4, seed_store=False)

    def test_builder_rejects_unknown_field(self):
        with pytest.raises(AttributeError, match="jobs"):
            ExecutorConfig.builder().jbos(4)

    def test_builder_validates_at_build(self):
        with pytest.raises(ConfigError, match="jobs"):
            ExecutorConfig.builder().jobs(0).build()

    def test_nested_builder_composition(self):
        config = (
            SweepConfig.builder()
            .n(3)
            .executor(ExecutorConfig.builder().jobs(2).build())
            .build()
        )
        assert config.n == 3 and config.executor.jobs == 2

    def test_replace_revalidates(self):
        config = ServeConfig()
        assert config.replace(workers=3).workers == 3
        with pytest.raises(ConfigError):
            config.replace(workers=-1)


class TestValidation:
    def test_executor(self):
        with pytest.raises(ConfigError):
            ExecutorConfig(jobs=0)
        with pytest.raises(ConfigError):
            ExecutorConfig(lease_timeout=0.0)

    def test_store(self):
        with pytest.raises(ConfigError, match="mode"):
            StoreConfig(mode="sideways")
        with pytest.raises(ConfigError, match="batch_size"):
            StoreConfig(mode="rw", batch_size=0)

    def test_sweep(self):
        with pytest.raises(ConfigError):
            SweepConfig(n=0)
        with pytest.raises(ConfigError):
            SweepConfig(cost_model="psychic")

    def test_serve(self):
        with pytest.raises(ConfigError):
            ServeConfig(workers=-1)
        with pytest.raises(ConfigError):
            ServeConfig(wait_delay=0.0)


class TestFromEnv:
    def test_executor_env(self):
        env = {
            "REPRO_JOBS": "6",
            "REPRO_DISTRIBUTED": ":7071",
            "REPRO_SEED_STORE": "off",
        }
        config = ExecutorConfig.from_env(env)
        assert config == ExecutorConfig(
            jobs=6, distributed=":7071", seed_store=False
        )

    def test_executor_env_rejects_garbage(self):
        with pytest.raises(ConfigError):
            ExecutorConfig.from_env({"REPRO_JOBS": "many"})
        with pytest.raises(ConfigError):
            ExecutorConfig.from_env({"REPRO_SEED_STORE": "maybe"})

    def test_store_env_mirrors_forgiving_parse(self):
        assert StoreConfig.from_env({"REPRO_STORE": "rw"}).mode == "rw"
        # repro.store treats unknown modes as off; the config agrees.
        assert StoreConfig.from_env({"REPRO_STORE": "bogus"}).mode == "off"
        assert StoreConfig.from_env({}).mode == "off"

    def test_serve_env(self):
        env = {
            "REPRO_SERVE_HTTP": ":9000",
            "REPRO_SERVE_WORKERS": "2",
            "REPRO_STORE": "rw",
        }
        config = ServeConfig.from_env(env)
        assert config.http == ":9000"
        assert config.workers == 2
        assert config.store.mode == "rw"


class TestFromArgs:
    def test_sweep_namespace_lifts_cleanly(self):
        args = _ns(
            n=3, limit=2, budget=512, split_threshold=64, subshard="off",
            backend="bitset", cost_model="observed", jobs=2,
            distributed=None, seed_store="on",
        )
        config = SweepConfig.from_args(args)
        assert config == SweepConfig(
            n=3, limit=2, budget=512, split_threshold=64, subshard=False,
            backend="bitset", cost_model="observed",
            executor=ExecutorConfig(jobs=2),
        )

    def test_serve_namespace_lifts_cleanly(self):
        args = _ns(
            http=":8088", distributed=":7071", workers=0, budget=256,
            backend=None, store="rw", store_path="/tmp/x.sqlite",
        )
        config = ServeConfig.from_args(args)
        assert config.http == ":8088"
        assert config.distributed == ":7071"
        assert config.workers == 0
        assert config.store == StoreConfig(mode="rw", path="/tmp/x.sqlite")

    def test_missing_attributes_fall_back_to_defaults(self):
        assert ExecutorConfig.from_args(_ns()) == ExecutorConfig()
        assert ServeConfig.from_args(_ns()) == ServeConfig()


class TestFingerprint:
    def test_stable_across_equal_instances(self):
        a = SweepConfig(n=3, executor=ExecutorConfig(jobs=2))
        b = SweepConfig(n=3, executor=ExecutorConfig(jobs=2))
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 12

    def test_sensitive_to_any_field(self):
        base = SweepConfig()
        assert base.fingerprint() != base.replace(budget=8).fingerprint()
        assert (
            base.fingerprint()
            != base.replace(executor=ExecutorConfig(jobs=2)).fingerprint()
        )

    def test_distinct_types_with_equal_fields_differ(self):
        # The class label is part of the digest: two configs that happen
        # to serialise identically still identify different run shapes.
        assert ExecutorConfig().fingerprint() != StoreConfig().fingerprint()

    def test_asdict_round_trip_preserves_identity(self):
        config = SweepConfig(n=3, executor=ExecutorConfig(jobs=2))
        rebuilt = SweepConfig(**config.as_dict())
        assert rebuilt == config
        assert rebuilt.fingerprint() == config.fingerprint()

    def test_mapping_fingerprint(self):
        assert config_fingerprint({"a": 1}) == config_fingerprint({"a": 1})
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_unfingerprintable_raises_config_error(self):
        with pytest.raises(ConfigError):
            config_fingerprint(42)
        with pytest.raises(ConfigError):
            config_fingerprint({"fn": lambda: None})


class TestDeprecatedShims:
    """Old keyword surfaces must equal the config path exactly."""

    def test_make_executor_kwargs_equal_config(self):
        assert isinstance(make_executor(jobs=1), SerialExecutor)
        assert isinstance(
            make_executor(config=ExecutorConfig(jobs=1)), SerialExecutor
        )
        old = make_executor(jobs=3)
        new = make_executor(config=ExecutorConfig(jobs=3))
        assert type(old) is type(new) is PoolExecutor
        assert old.jobs == new.jobs == 3

    def test_make_executor_distributed_kwargs_equal_config(self):
        old = make_executor(distributed=":0", seed_store=False)
        new = make_executor(
            config=ExecutorConfig(distributed=":0", seed_store=False)
        )
        assert type(old) is type(new) is DistExecutor
        for attr in ("host", "port", "seed_store", "lease_timeout"):
            assert getattr(old, attr) == getattr(new, attr)

    def test_run_batch_config_equals_jobs_kwarg(self):
        import operator

        from repro.engine import Job, run_batch

        tasks = [Job(f"m[{i}]", operator.mul, (i, 7)) for i in range(4)]
        old = run_batch(tasks, jobs=2)
        new = run_batch(tasks, config=ExecutorConfig(jobs=2))
        assert old.values == new.values == tuple(i * 7 for i in range(4))

    def test_sweep_kwargs_equal_config(self, tmp_path):
        KERNEL_CACHE.clear()
        store_pkg.configure(path=tmp_path / "cfg.sqlite", mode="rw")
        try:
            old = sweeps.solvability_sweep(3, limit=1, budget=64)
            KERNEL_CACHE.clear()
            config = SweepConfig(n=3, limit=1, budget=64)
            new = sweeps.solvability_sweep(config=config)
            assert new.rows == old.rows
            assert new.config_fingerprint == old.config_fingerprint
            assert new.config_fingerprint == config.fingerprint()
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
            KERNEL_CACHE.clear()


class TestStoreApply:
    def test_apply_configures_global_store(self, tmp_path):
        try:
            store = StoreConfig(mode="rw", path=str(tmp_path / "s.sqlite")).apply()
            assert store.mode == "rw"
            assert str(store.path) == str(tmp_path / "s.sqlite")
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
