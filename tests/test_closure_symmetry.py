"""Tests for upward closures (Def 2.3) and symmetric closures (Def 2.4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graphs import (
    Digraph,
    canonical_form,
    complete_graph,
    cycle,
    in_model,
    in_upward_closure,
    is_symmetric,
    iter_isomorphism_classes,
    iter_upward_closure,
    minimal_generators,
    missing_edges,
    orbit,
    sample_superset,
    star,
    symmetric_closure,
    upward_closure_size,
)
from tests.test_digraph import random_digraphs


class TestUpwardClosure:
    def test_generator_in_own_closure(self):
        g = cycle(4)
        assert in_upward_closure(g, g)

    def test_clique_in_every_closure(self):
        g = cycle(4)
        assert in_upward_closure(complete_graph(4), g)

    def test_subgraph_not_in_closure(self):
        g = cycle(4)
        assert not in_upward_closure(Digraph.empty(4), g)

    def test_closure_size(self):
        g = cycle(3)  # 3 proper edges present, 3 missing
        assert upward_closure_size(g) == 8
        assert len(missing_edges(g)) == 3

    def test_enumeration_matches_size(self):
        g = cycle(3)
        graphs = list(iter_upward_closure(g))
        assert len(graphs) == 8
        assert len(set(graphs)) == 8
        assert all(in_upward_closure(h, g) for h in graphs)

    def test_enumeration_budget(self):
        with pytest.raises(GraphError):
            list(iter_upward_closure(Digraph.empty(5), max_graphs=10))

    def test_in_model_union(self):
        generators = [star(3, 0), star(3, 1)]
        assert in_model(star(3, 0), generators)
        assert not in_model(Digraph.empty(3), generators)

    def test_minimal_generators_drops_supersets(self):
        g = cycle(4)
        bigger = g.with_edges([(0, 2)])
        assert minimal_generators([g, bigger]) == frozenset({g})

    def test_minimal_generators_keeps_incomparable(self):
        a = star(3, 0)
        b = star(3, 1)
        assert minimal_generators([a, b]) == frozenset({a, b})

    def test_minimal_generators_empty_rejected(self):
        with pytest.raises(GraphError):
            minimal_generators([])

    def test_sample_superset_in_closure(self):
        rng = random.Random(0)
        g = cycle(4)
        for _ in range(20):
            assert in_upward_closure(sample_superset(g, rng), g)

    def test_sample_superset_probability_extremes(self):
        rng = random.Random(0)
        g = cycle(4)
        assert sample_superset(g, rng, 0.0) == g
        assert sample_superset(g, rng, 1.0) == complete_graph(4)

    def test_sample_superset_bad_probability(self):
        with pytest.raises(GraphError):
            sample_superset(cycle(3), random.Random(0), 1.5)


class TestSymmetricClosure:
    def test_orbit_size_star(self):
        # A star on n processes has n relabellings (one per centre).
        assert len(orbit(star(4, 0))) == 4

    def test_orbit_of_clique_is_singleton(self):
        assert orbit(complete_graph(3)) == frozenset({complete_graph(3)})

    def test_symmetric_closure_is_symmetric(self):
        sym = symmetric_closure([cycle(4)])
        assert is_symmetric(sym)

    def test_symmetric_closure_idempotent(self):
        sym = symmetric_closure([star(4, 2)])
        assert symmetric_closure(sym) == sym

    def test_sym_empty_rejected(self):
        with pytest.raises(GraphError):
            symmetric_closure([])

    def test_canonical_form_identifies_isomorphs(self):
        g = star(4, 0)
        h = star(4, 3)
        assert canonical_form(g) == canonical_form(h)
        assert canonical_form(g) != canonical_form(cycle(4))

    def test_iter_isomorphism_classes(self):
        graphs = [star(3, i) for i in range(3)] + [cycle(3)]
        classes = list(iter_isomorphism_classes(graphs))
        assert len(classes) == 2

    @given(random_digraphs(4))
    def test_orbit_members_isomorphic_invariants(self, g):
        sizes = {h.proper_edge_count for h in orbit(g)}
        assert sizes == {g.proper_edge_count}
