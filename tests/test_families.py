"""Tests for the named graph families, including the figure graphs."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import (
    bidirectional_cycle,
    bidirectional_path,
    complete_bipartite,
    complete_graph,
    cycle,
    domination_number,
    empty_graph,
    figure1_second,
    figure1_star,
    figure2_graph,
    in_tree,
    inward_star,
    is_strongly_connected,
    is_tournament,
    kernel,
    out_tree,
    path,
    rotating_tournament,
    star,
    tournament,
    union_of_stars,
    wheel,
)
from repro.combinatorics import covering_numbers, equal_domination_number


class TestStars:
    def test_star_center_broadcasts(self):
        g = star(5, 2)
        assert g.out_neighbors(2) == (0, 1, 2, 3, 4)
        assert kernel(g) == 1 << 2

    def test_star_domination_is_one(self):
        assert domination_number(star(6, 0)) == 1

    def test_star_gamma_eq_is_n(self):
        # Paper Sec 3.2: the star's equal-domination number equals n.
        assert equal_domination_number(star(4, 0)) == 4

    def test_union_of_stars_kernel(self):
        g = union_of_stars(5, (1, 3))
        assert kernel(g) == (1 << 1) | (1 << 3)

    def test_union_of_stars_duplicate_rejected(self):
        with pytest.raises(GraphError):
            union_of_stars(4, (0, 0))

    def test_union_of_stars_empty_rejected(self):
        with pytest.raises(GraphError):
            union_of_stars(4, ())

    def test_inward_star_reverses_star(self):
        assert inward_star(4, 1) == star(4, 1).reverse()


class TestCyclesAndPaths:
    def test_cycle_structure(self):
        g = cycle(4)
        assert g.has_edge(3, 0)
        assert all(g.has_edge(u, (u + 1) % 4) for u in range(4))
        assert g.proper_edge_count == 4

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle(1)

    def test_cycle_strongly_connected(self):
        assert is_strongly_connected(cycle(5))

    def test_cycle_domination(self):
        # γ(C_n) = ceil(n/2) for the directed cycle with self-loops: each
        # node covers itself and its successor.
        assert domination_number(cycle(4)) == 2
        assert domination_number(cycle(5)) == 3
        assert domination_number(cycle(6)) == 3

    def test_bidirectional_cycle_covers_three(self):
        g = bidirectional_cycle(6)
        assert domination_number(g) == 2

    def test_path_not_strongly_connected(self):
        assert not is_strongly_connected(path(3))

    def test_bidirectional_path(self):
        g = bidirectional_path(4)
        assert g.has_edge(2, 1) and g.has_edge(1, 2)


class TestTrees:
    def test_out_tree_edges(self):
        g = out_tree(7, branching=2)
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert g.has_edge(1, 3) and g.has_edge(2, 6)

    def test_out_tree_domination(self):
        # Internal nodes {0,1,2} dominate the complete binary tree on 7.
        assert domination_number(out_tree(7)) == 3

    def test_in_tree_is_reverse(self):
        assert in_tree(7) == out_tree(7).reverse()

    def test_branching_validation(self):
        with pytest.raises(GraphError):
            out_tree(4, branching=0)


class TestTournaments:
    def test_tournament_property(self):
        assert is_tournament(tournament(5))

    def test_rotating_tournament(self):
        g = rotating_tournament(5)
        assert is_tournament(g)

    def test_rotating_tournament_even_rejected(self):
        with pytest.raises(GraphError):
            rotating_tournament(4)


class TestBipartiteAndWheel:
    def test_complete_bipartite(self):
        g = complete_bipartite((0, 1), (2, 3, 4))
        assert all(g.has_edge(u, v) for u in (0, 1) for v in (2, 3, 4))
        assert not g.has_edge(2, 0)

    def test_complete_bipartite_overlap_rejected(self):
        with pytest.raises(GraphError):
            complete_bipartite((0, 1), (1, 2))

    def test_wheel_needs_three(self):
        with pytest.raises(GraphError):
            wheel(2)

    def test_trivial_families(self):
        assert empty_graph(3).proper_edge_count == 0
        assert complete_graph(3).proper_edge_count == 6


class TestFigureGraphs:
    def test_figure1_star_is_star(self):
        assert figure1_star() == star(4, 0)

    def test_figure1_second_matches_paper_numbers(self):
        """Sec 3.2: cov_2(S) = 3 and γ_eq(S) = 4 for the right-hand model."""
        g = figure1_second()
        assert g.n == 4
        assert equal_domination_number(g) == 4
        assert covering_numbers(g)[1] == 3  # cov_2

    def test_figure1_star_numbers(self):
        """Sec 3.2: the star model never beats the γ_eq bound."""
        g = figure1_star()
        n = g.n
        gamma_eq = equal_domination_number(g)
        covs = covering_numbers(g)
        assert gamma_eq == n
        for i in range(1, gamma_eq):
            assert n - covs[i - 1] >= gamma_eq - i

    def test_figure2_views(self):
        g = figure2_graph()
        assert g.in_neighbors(0) == (0, 2)
        assert g.in_neighbors(1) == (0, 1)
        assert g.in_neighbors(2) == (2,)
