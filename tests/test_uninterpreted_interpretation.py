"""Tests for uninterpreted complexes (Defs 4.3/4.4, Lemma 4.8, Thm 4.12)
and their interpretations (Defs 4.13/4.14)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.errors import TopologyError
from repro.graphs import (
    Digraph,
    complete_graph,
    cycle,
    figure2_graph,
    star,
    symmetric_closure,
    wheel,
)
from repro.topology import (
    Simplex,
    closed_above_pseudosphere,
    closed_above_pseudosphere_cover,
    connectivity_of_closed_above,
    graph_interpretation_complex,
    homological_connectivity,
    input_complex,
    input_pseudosphere,
    interpret_complex,
    interpret_simplex,
    one_round_protocol_complex,
    predicted_closed_above_connectivity,
    uninterpreted_complex_of_closed_above,
    uninterpreted_complex_of_graphs,
    uninterpreted_simplex,
    verify_lemma_4_8,
)
from tests.test_digraph import random_digraphs


class TestUninterpretedSimplex:
    def test_figure2(self):
        sigma = uninterpreted_simplex(figure2_graph())
        assert sigma.view_of(0) == frozenset({0, 2})
        assert sigma.view_of(1) == frozenset({0, 1})
        assert sigma.view_of(2) == frozenset({2})

    def test_dimension_is_n_minus_1(self):
        assert uninterpreted_simplex(cycle(4)).dimension == 3

    def test_complex_of_explicit_graphs(self):
        graphs = sorted(symmetric_closure([star(3, 0)]))
        c = uninterpreted_complex_of_graphs(graphs)
        assert len(c) == len(graphs)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            uninterpreted_complex_of_graphs([])


class TestLemma48:
    @pytest.mark.parametrize(
        "g", [figure2_graph(), cycle(3), star(3, 0), complete_graph(3)]
    )
    def test_on_named_graphs(self, g):
        assert verify_lemma_4_8(g)

    @given(random_digraphs(3))
    @settings(max_examples=20, deadline=None)
    def test_on_random_graphs(self, g):
        assert verify_lemma_4_8(g)

    def test_pseudosphere_views_are_upward_closures(self):
        g = figure2_graph()
        ps = closed_above_pseudosphere(g)
        for p in range(g.n):
            in_view = frozenset(g.in_neighbors(p))
            for view in ps.views_of(p):
                assert in_view <= view


class TestTheorem412:
    @pytest.mark.parametrize(
        "generators",
        [
            [figure2_graph()],
            [cycle(3)],
            [cycle(4)],
            [star(4, 0)],
            sorted(symmetric_closure([cycle(3)])),
            [cycle(4), wheel(4)],
        ],
    )
    def test_connectivity_at_least_n_minus_2(self, generators):
        n = generators[0].n
        measured = connectivity_of_closed_above(generators)
        assert measured >= n - 2
        assert predicted_closed_above_connectivity(generators) == n - 2

    def test_nerve_route_agrees(self):
        generators = sorted(symmetric_closure([cycle(3)]))
        nerve_value = connectivity_of_closed_above(generators, method="nerve")
        assert nerve_value >= 1  # n - 2 with n = 3

    def test_unknown_method(self):
        with pytest.raises(TopologyError):
            connectivity_of_closed_above([cycle(3)], method="magic")

    def test_cover_cardinality(self):
        generators = sorted(symmetric_closure([star(3, 0)]))
        cover = closed_above_pseudosphere_cover(generators)
        assert len(cover) == len(generators)


class TestInterpretation:
    def test_input_pseudosphere(self):
        ps = input_pseudosphere(3, (0, 1))
        assert ps.facet_count() == 8
        assert ps.predicted_connectivity() == 1

    def test_input_needs_values(self):
        with pytest.raises(TopologyError):
            input_pseudosphere(3, ())

    def test_interpret_simplex_pairs_values(self):
        g = figure2_graph()
        sigma = uninterpreted_simplex(g)
        tau = Simplex([(0, "x"), (1, "y"), (2, "z")])
        interp = interpret_simplex(sigma, tau)
        assert interp.view_of(0) == frozenset({(0, "x"), (2, "z")})
        assert interp.view_of(2) == frozenset({(2, "z")})

    def test_interpret_simplex_type_check(self):
        bad = Simplex([(0, "not-a-frozenset")])
        tau = Simplex([(0, "x")])
        with pytest.raises(TopologyError):
            interpret_simplex(bad, tau)

    def test_graph_interpretation_facet_count(self):
        g = complete_graph(2)
        inputs = input_complex(2, (0, 1))
        c = graph_interpretation_complex(g, inputs)
        # Clique: both processes see everything; 4 input simplexes give 4
        # fully-informed facets.
        assert len(c) == 4

    def test_one_round_protocol_complex_contains_all_graphs(self):
        graphs = sorted(symmetric_closure([star(3, 0)]))
        inputs = input_complex(3, (0, 1))
        protocol = one_round_protocol_complex(graphs, inputs)
        single = graph_interpretation_complex(graphs[0], inputs)
        for facet in single.facets:
            assert protocol.contains_simplex(facet)

    def test_one_round_protocol_complex_empty_rejected(self):
        with pytest.raises(TopologyError):
            one_round_protocol_complex([], input_complex(2, (0, 1)))

    def test_interpret_complex_union(self):
        graphs = [cycle(3), complete_graph(3)]
        uninterp = uninterpreted_complex_of_graphs(graphs)
        inputs = input_complex(3, (0, 1))
        combined = interpret_complex(uninterp, inputs)
        direct = one_round_protocol_complex(graphs, inputs)
        assert combined == direct


class TestProtocolComplexConnectivity:
    """The punchline of Thm 5.4's proof: one-round protocol complexes of
    closed-above models are highly connected, blocking k-set agreement."""

    def test_clique_model_is_disconnected(self):
        """With the clique as the only graph every process sees everything,
        consensus is solvable, and accordingly the protocol complex falls
        apart into one component per input simplex."""
        inputs = input_complex(2, (0, 1))
        protocol = one_round_protocol_complex([complete_graph(2)], inputs)
        assert homological_connectivity(protocol) == -1
        assert len(protocol) == 4  # one isolated edge per input assignment

    def test_star_model_protocol_connected(self):
        """Thm 5.4 on Sym(↑star(3)): l = 1, so the one-round protocol
        complex over the *full* allowed graph set is 1-connected, which is
        what makes 2-set agreement impossible (Thm 6.13 with s = 1)."""
        from repro.models import symmetric_closed_above

        model = symmetric_closed_above([star(3, 0)])
        graphs = sorted(model.iter_graphs())
        inputs = input_complex(3, (0, 1, 2))
        protocol = one_round_protocol_complex(graphs, inputs)
        assert homological_connectivity(protocol) >= 1
