"""E1 — Figure 1 and the Sec 3.2 worked example.

Paper claims: on Sym(star) the covering bounds never beat γ_eq = n = 4;
on Sym(fig1-right) cov_2 = 3 and γ_eq = 4 make the covering bound (3-set)
strictly better — and E10/5.4 make it tight.
"""

from conftest import run_table

from repro.analysis.tables import e01_figure1_table


def test_bench_e01_figure1(benchmark):
    headers, rows = run_table(benchmark, e01_figure1_table)
    star_row = next(r for r in rows if r[0] == "Sym(star)")
    wheel_row = next(r for r in rows if r[0] == "Sym(fig1-right)")
    # Paper numbers.
    assert star_row[2] == 4  # γ_eq(star) = n
    assert wheel_row[2] == 4  # γ_eq = 4
    assert wheel_row[3].split("/")[1] == "3"  # cov_2 = 3
    assert wheel_row[6] == 3  # best upper: 3-set via Thm 3.7
    assert star_row[6] == 4  # star model stuck at 4-set
    assert wheel_row[8] is True  # tight
