"""E9 — Defs 6.6/6.8, Thms 6.7/6.9: covering sequences drive FloodMin."""

from conftest import run_table

from repro.analysis.tables import e09_covering_sequence_table


def test_bench_e09_covering_sequences(benchmark):
    headers, rows = run_table(benchmark, e09_covering_sequence_table)
    for name, i, seq, rounds, verified in rows:
        if rounds is not None:
            assert verified is True, f"FloodMin missed the bound on {name}"
            assert seq[-1] == max(seq)
        else:
            assert verified == "n/a (stalls)"
