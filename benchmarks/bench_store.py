"""Benchmarks and acceptance checks for the persistent result store.

Timing benchmarks quantify the store's building blocks (fingerprinting,
load path, flush) and the headline number — a fresh process warm-starting
a kernel workload from a populated store versus computing it cold.

The acceptance tests (plain functions, run in CI with
``--benchmark-disable``) pin the two contractual properties:

* **warm-start wins**: a fresh-cache rerun against a populated store is
  at least 2x faster than the cold compute (in practice it is 10x+; 2x
  leaves margin for loaded CI machines);
* **store transparency**: results with the store off, cold and warm are
  byte-identical.
"""

from __future__ import annotations

import time

import repro.store as store_pkg
from repro.bounds import bound_report
from repro.combinatorics import covering_numbers, equal_domination_number
from repro.engine import KERNEL_CACHE, cache_disabled
from repro.graphs import cycle, domination_number, symmetric_closure, union_of_stars, wheel
from repro.store import ResultStore, fingerprint
from repro.verification import decide_one_round_solvability


def _store_workload() -> tuple:
    """A representative kernel workload, returned as comparable values.

    Compared with ``==`` (not ``repr``): results that contain sets — the
    solvability witness maps — are equal after a store round-trip, but a
    rebuilt ``frozenset`` may iterate (and so ``repr``) in another order.
    """
    sym = sorted(symmetric_closure([union_of_stars(6, (0, 1))]))
    parts: list[object] = [bound_report(sym).describe()]
    for g in (cycle(9), cycle(11), wheel(7), union_of_stars(7, (0, 1, 2))):
        parts.append(
            (
                domination_number(g),
                equal_domination_number(g),
                covering_numbers(g),
            )
        )
    parts.append(decide_one_round_solvability([cycle(3)], 1))
    parts.append(
        decide_one_round_solvability(sorted(symmetric_closure([cycle(3)])), 2)
    )
    return tuple(parts)


def _with_temp_store(tmp_path, mode="rw") -> ResultStore:
    return store_pkg.configure(path=tmp_path / "bench.sqlite", mode=mode)


def _restore_store():
    store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
    KERNEL_CACHE.clear()


# ----------------------------------------------------------------------
# Micro-benchmarks
# ----------------------------------------------------------------------

def test_bench_fingerprint_graph_set_key(benchmark):
    key = (
        tuple((g.n, g.out_rows) for g in symmetric_closure([cycle(6)])),
        3,
        (0, 1, 2, 3),
    )
    digest = benchmark(fingerprint, key)
    assert isinstance(digest, str) and len(digest) == 64


def test_bench_store_load_hit(benchmark, tmp_path):
    store = ResultStore(tmp_path / "load.sqlite", mode="rw")
    store.save("bench_kernel", "1", ("key",), tuple(range(64)))
    store.flush()
    value = benchmark(store.load, "bench_kernel", "1", ("key",))
    assert value == tuple(range(64))
    store.close()


def test_bench_store_flush_batch(benchmark, tmp_path):
    store = ResultStore(tmp_path / "flush.sqlite", mode="rw", batch_size=10_000)

    def write_and_flush():
        for index in range(200):
            store.save("bench_kernel", "1", ("key", index), index)
        return store.flush()

    flushed = benchmark(write_and_flush)
    assert flushed in (0, 200)  # later rounds rewrite identical keys
    store.close()


def test_bench_warm_start_from_store(benchmark, tmp_path):
    """The headline: fresh-cache pass served by a populated store."""
    try:
        _with_temp_store(tmp_path)
        KERNEL_CACHE.clear()
        _store_workload()  # populate
        store_pkg.RESULT_STORE.flush()

        def fresh_process_pass():
            KERNEL_CACHE.clear()
            return _store_workload()

        result = benchmark(fresh_process_pass)
        assert result == _store_workload()
    finally:
        _restore_store()


# ----------------------------------------------------------------------
# Acceptance checks (run with --benchmark-disable in CI)
# ----------------------------------------------------------------------

def test_store_warm_rerun_at_least_2x_faster(tmp_path):
    """Acceptance: warm-starting a fresh process from the store >=2x.

    Measured end to end: cold pass computes + persists, then the kernel
    cache is wiped (the fresh-process stand-in) and the same workload is
    replayed against the store alone.  In practice the speedup is an
    order of magnitude; 2x leaves a wide margin for timer noise.
    """
    try:
        store = _with_temp_store(tmp_path)
        KERNEL_CACHE.clear()
        start = time.perf_counter()
        cold_result = _store_workload()
        cold = time.perf_counter() - start
        store.flush()
        warm_times = []
        for _ in range(3):
            KERNEL_CACHE.clear()
            start = time.perf_counter()
            warm_result = _store_workload()
            warm_times.append(time.perf_counter() - start)
            assert warm_result == cold_result
        warm = min(warm_times)
        assert warm * 2 <= cold, f"warm pass {warm:.6f}s vs cold {cold:.6f}s"
        stats = store.stats()
        assert stats.hits > 0 and stats.writes > 0
    finally:
        _restore_store()


def test_store_on_off_results_identical(tmp_path):
    """Acceptance: the store never changes a result, only its cost."""
    try:
        with cache_disabled():
            baseline = _store_workload()
        _with_temp_store(tmp_path)
        KERNEL_CACHE.clear()
        cold = _store_workload()  # computes, persists
        KERNEL_CACHE.clear()
        warm = _store_workload()  # replays from the store
        assert cold == baseline
        assert warm == baseline
    finally:
        _restore_store()
