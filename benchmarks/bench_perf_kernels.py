"""Performance micro-benchmarks for the expensive kernels.

These time the primitives that every experiment leans on: dominating-set
search (exact vs greedy — the DESIGN.md ablation), combinatorial numbers,
homology ranks, pseudosphere materialisation, graph powers, and the CSP
solvability search.

The raw-kernel benchmarks run under ``cache_disabled()`` so they keep
timing the algorithms themselves; the ``repeated_workload`` pair times the
same call profile cold vs warm, quantifying what the engine's
:class:`~repro.engine.cache.KernelCache` buys, and the mask-native subset
enumeration paths of :mod:`repro._bitops` get their own timings.
"""

import random
import time

from repro._bitops import full_mask, iter_subsets_of_size
from repro.bounds import bound_report_many
from repro.combinatorics import (
    covering_numbers,
    distributed_domination_number,
    equal_domination_number,
)
from repro.engine import KERNEL_CACHE, cache_disabled
from repro.graphs import (
    cycle,
    domination_number,
    graph_power,
    greedy_dominating_set,
    random_digraph,
    symmetric_closure,
    union_of_stars,
    wheel,
)
from repro.topology import (
    Pseudosphere,
    reduced_betti_numbers,
    uninterpreted_complex_of_closed_above,
)
from repro.verification import decide_one_round_solvability


def test_bench_exact_domination_random16(benchmark):
    g = random_digraph(16, random.Random(5), 0.2)
    with cache_disabled():
        gamma = benchmark(domination_number, g)
    assert 1 <= gamma <= 16


def test_bench_greedy_domination_random16(benchmark):
    """Ablation partner of the exact solver (same instance)."""
    g = random_digraph(16, random.Random(5), 0.2)
    members = benchmark(greedy_dominating_set, g)
    assert g.dominates(members)


def test_bench_equal_domination_cycle10(benchmark):
    with cache_disabled():
        value = benchmark(equal_domination_number, cycle(10))
    assert value == 9


def test_bench_covering_profile_cycle12(benchmark):
    with cache_disabled():
        profile = benchmark(covering_numbers, cycle(12))
    assert profile[0] == 2


def test_bench_distributed_domination_stars(benchmark):
    sym = sorted(symmetric_closure([union_of_stars(6, (0, 1, 2))]))
    with cache_disabled():
        value = benchmark(distributed_domination_number, sym)
    assert value == 4  # n - s + 1


def test_bench_pseudosphere_materialise(benchmark):
    # Materialisation is now a cached kernel; disable the cache so the
    # benchmark keeps timing the facet enumeration itself.
    ps = Pseudosphere.uniform(tuple(range(4)), tuple(range(3)))
    with cache_disabled():
        complex_ = benchmark(ps.to_complex)
    assert len(complex_) == 81


def test_bench_pseudosphere_materialise_cached(benchmark):
    """Cached-path partner: equal pseudospheres share one materialisation."""
    ps = Pseudosphere.uniform(tuple(range(4)), tuple(range(3)))
    ps.to_complex()  # prime
    complex_ = benchmark(ps.to_complex)
    assert len(complex_) == 81


def test_bench_homology_pseudosphere(benchmark):
    complex_ = Pseudosphere.uniform(tuple(range(4)), (0, 1)).to_complex()
    with cache_disabled():
        betti = benchmark(reduced_betti_numbers, complex_)
    assert betti == (0, 0, 0, 1)


def test_bench_uninterpreted_complex_wheel4(benchmark):
    complex_ = benchmark(uninterpreted_complex_of_closed_above, [wheel(4)])
    assert complex_.dimension == 3


def test_bench_graph_power_cycle64(benchmark):
    g = cycle(64)
    with cache_disabled():
        power = benchmark(graph_power, g, 8)
    assert power.proper_edge_count == 64 * 8


def test_bench_solvability_sat(benchmark):
    generators = sorted(symmetric_closure([wheel(4)]))
    with cache_disabled():
        result = benchmark(decide_one_round_solvability, generators, 3)
    assert result.solvable


def test_bench_solvability_unsat(benchmark):
    generators = sorted(symmetric_closure([wheel(4)]))
    with cache_disabled():
        result = benchmark(decide_one_round_solvability, generators, 2)
    assert not result.solvable


# ----------------------------------------------------------------------
# KernelCache: the same workload cold vs warm
# ----------------------------------------------------------------------

def _repeated_workload():
    """A representative repeated workload: the combinatorial numbers of a
    few standard families, as queried by overlapping experiment rows."""
    for g in (cycle(9), cycle(12), wheel(8), union_of_stars(8, (0, 1, 2))):
        domination_number(g)
        equal_domination_number(g)
        covering_numbers(g)


def test_bench_repeated_workload_cold(benchmark):
    def cold_pass():
        KERNEL_CACHE.clear()
        _repeated_workload()

    benchmark(cold_pass)


def test_bench_repeated_workload_warm(benchmark):
    KERNEL_CACHE.clear()
    _repeated_workload()  # prime the cache once
    benchmark(_repeated_workload)


def test_warm_second_pass_at_least_2x_faster():
    """Acceptance check: KernelCache makes a warm second pass >=2x faster.

    In practice the warm pass is orders of magnitude faster (pure dict
    lookups); 2x leaves a huge margin for timer noise on loaded machines.
    """
    KERNEL_CACHE.clear()
    start = time.perf_counter()
    _repeated_workload()
    cold = time.perf_counter() - start
    warm_times = []
    for _ in range(3):
        start = time.perf_counter()
        _repeated_workload()
        warm_times.append(time.perf_counter() - start)
    warm = min(warm_times)
    assert warm * 2 <= cold, f"warm pass {warm:.6f}s vs cold {cold:.6f}s"
    stats = KERNEL_CACHE.stats()
    assert stats.hits > 0


# ----------------------------------------------------------------------
# Batch driver: parallel fan-out matches the serial reference path
# ----------------------------------------------------------------------

_BATCH_MODELS = [
    [cycle(4)],
    [wheel(5)],
    [union_of_stars(5, (0, 1))],
    [cycle(6)],
]


def test_bench_bound_report_many_serial(benchmark):
    def serial_pass():
        KERNEL_CACHE.clear()
        return bound_report_many(_BATCH_MODELS, jobs=1)

    reports = benchmark(serial_pass)
    assert len(reports) == len(_BATCH_MODELS)


def test_run_batch_parallel_identical_to_serial():
    """Acceptance check: jobs>1 reproduces the serial results exactly."""
    serial = bound_report_many(_BATCH_MODELS, jobs=1)
    parallel = bound_report_many(_BATCH_MODELS, jobs=2)
    assert parallel == serial
    assert [r.describe() for r in parallel] == [r.describe() for r in serial]


# ----------------------------------------------------------------------
# Mask-native subset enumeration (_bitops fast paths)
# ----------------------------------------------------------------------

def test_bench_subsets_dense_18_choose_6(benchmark):
    """Gosper's-hack path: contiguous universe, no per-subset allocations."""
    universe = full_mask(18)

    def enumerate_dense():
        count = 0
        for _ in iter_subsets_of_size(universe, 6):
            count += 1
        return count

    assert benchmark(enumerate_dense) == 18564


def test_bench_subsets_sparse_25bit(benchmark):
    """Sparse path: precomputed single-bit masks folded with ``|``."""
    mask = int("1010101010101010101010101", 2)  # 13 scattered elements

    def enumerate_sparse():
        count = 0
        for _ in iter_subsets_of_size(mask, 6):
            count += 1
        return count

    assert benchmark(enumerate_sparse) == 1716
