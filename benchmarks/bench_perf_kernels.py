"""Performance micro-benchmarks for the expensive kernels.

These time the primitives that every experiment leans on: dominating-set
search (exact vs greedy — the DESIGN.md ablation), combinatorial numbers,
homology ranks, pseudosphere materialisation, graph powers, and the CSP
solvability search.
"""

import random

from repro.combinatorics import (
    covering_numbers,
    distributed_domination_number,
    equal_domination_number,
)
from repro.graphs import (
    cycle,
    domination_number,
    graph_power,
    greedy_dominating_set,
    random_digraph,
    symmetric_closure,
    union_of_stars,
    wheel,
)
from repro.topology import (
    Pseudosphere,
    reduced_betti_numbers,
    uninterpreted_complex_of_closed_above,
)
from repro.verification import decide_one_round_solvability


def test_bench_exact_domination_random16(benchmark):
    g = random_digraph(16, random.Random(5), 0.2)
    gamma = benchmark(domination_number, g)
    assert 1 <= gamma <= 16


def test_bench_greedy_domination_random16(benchmark):
    """Ablation partner of the exact solver (same instance)."""
    g = random_digraph(16, random.Random(5), 0.2)
    members = benchmark(greedy_dominating_set, g)
    assert g.dominates(members)


def test_bench_equal_domination_cycle10(benchmark):
    value = benchmark(equal_domination_number, cycle(10))
    assert value == 9


def test_bench_covering_profile_cycle12(benchmark):
    profile = benchmark(covering_numbers, cycle(12))
    assert profile[0] == 2


def test_bench_distributed_domination_stars(benchmark):
    sym = sorted(symmetric_closure([union_of_stars(6, (0, 1, 2))]))
    value = benchmark(distributed_domination_number, sym)
    assert value == 4  # n - s + 1


def test_bench_pseudosphere_materialise(benchmark):
    ps = Pseudosphere.uniform(tuple(range(4)), tuple(range(3)))
    complex_ = benchmark(ps.to_complex)
    assert len(complex_) == 81


def test_bench_homology_pseudosphere(benchmark):
    complex_ = Pseudosphere.uniform(tuple(range(4)), (0, 1)).to_complex()
    betti = benchmark(reduced_betti_numbers, complex_)
    assert betti == (0, 0, 0, 1)


def test_bench_uninterpreted_complex_wheel4(benchmark):
    complex_ = benchmark(uninterpreted_complex_of_closed_above, [wheel(4)])
    assert complex_.dimension == 3


def test_bench_graph_power_cycle64(benchmark):
    g = cycle(64)
    power = benchmark(graph_power, g, 8)
    assert power.proper_edge_count == 64 * 8


def test_bench_solvability_sat(benchmark):
    generators = sorted(symmetric_closure([wheel(4)]))
    result = benchmark(decide_one_round_solvability, generators, 3)
    assert result.solvable


def test_bench_solvability_unsat(benchmark):
    generators = sorted(symmetric_closure([wheel(4)]))
    result = benchmark(decide_one_round_solvability, generators, 2)
    assert not result.solvable
