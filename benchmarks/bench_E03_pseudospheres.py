"""E3 — Figure 3 / Lemma 4.7: pseudosphere connectivity measured by homology."""

from conftest import run_table

from repro.analysis.tables import e03_pseudosphere_table


def test_bench_e03_pseudospheres(benchmark):
    headers, rows = run_table(benchmark, e03_pseudosphere_table)
    assert rows, "no pseudosphere case ran"
    assert all(row[-1] for row in rows), "Lemma 4.7 violated somewhere"
    # The join structure: the top Betti number is (v-1)^n exactly.
    for n, v, _facets, betti, measured, predicted, _ok in rows:
        assert betti[-1] == (v - 1) ** n
        assert measured == n - 2 == predicted
