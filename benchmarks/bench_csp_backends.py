"""Benchmarks and acceptance checks for the CSP compute backends.

Times the ``reference`` and ``bitset`` backends (and ``sat`` when
`python-sat` is installed) on the two workloads that dominate the E10
frontier's wall-clock:

* the **heaviest n=3 class** (the empty-graph generator, whose symmetric
  closed-above model is all 64 graphs), searching every candidate
  ``k = 1..3`` over the full model — exactly what the monolithic
  ``solvability_shard`` kernel does;
* a **sampled n=4 tail class** (the sparsest 2-edge representative,
  first 256 graphs of its enumerated model, ``k = 1..2``) — the shape of
  the sub-shards the n=4 sweep spends its time in.

Acceptance (run in CI by the ``backends-smoke`` job with
``--benchmark-disable``): the bitset backend is **>= 3x** faster than the
reference on the heaviest n=3 class, with equal verdicts everywhere.
Measured locally (see EXPERIMENTS.md): ~8-10x on n=3, ~7x on the n=4
tail sample.

The last test writes ``BENCH_6.json`` next to this file — the committed
per-backend perf snapshot, first point of the ROADMAP's perf trajectory.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

import repro.store as store_pkg
from repro.engine import KERNEL_CACHE
from repro.verification import decide_one_round_solvability, sat_available

SNAPSHOT = Path(__file__).resolve().parent / "BENCH_6.json"

#: Filled by the timing tests, serialized by test_write_snapshot (file
#: order — pytest runs these top to bottom).
RESULTS: dict[str, dict] = {}

#: The acceptance bound for bitset vs reference on the heaviest n=3
#: class.  Locally ~8-10x; 3x leaves headroom for loaded CI machines.
MIN_SPEEDUP = 3.0


def _heaviest_n3_model():
    """All 64 graphs: the full model of the sparsest n=3 class."""
    from repro.graphs.generators import iter_all_digraphs
    from repro.graphs.symmetry import iter_isomorphism_classes
    from repro.models.closed_above import symmetric_closed_above

    representatives = sorted(
        iter_isomorphism_classes(iter_all_digraphs(3)),
        key=lambda g: (-g.proper_edge_count, g.out_rows),
    )
    model = symmetric_closed_above([representatives[-1]])
    return sorted(model.iter_graphs(max_graphs=1 << 12))


def _n4_tail_sample():
    """First 256 graphs of the sparsest enumerable 2-edge n=4 class."""
    from repro.errors import GraphError
    from repro.graphs.generators import iter_all_digraphs
    from repro.graphs.symmetry import iter_isomorphism_classes
    from repro.models.closed_above import symmetric_closed_above

    representatives = sorted(
        iter_isomorphism_classes(iter_all_digraphs(4)),
        key=lambda g: (-g.proper_edge_count, g.out_rows),
    )
    for g in reversed(representatives):
        try:
            model = symmetric_closed_above([g])
            full = sorted(model.iter_graphs(max_graphs=1 << 10))
        except GraphError:
            continue  # up-set exceeds the budget; densify
        return full[:256]
    raise AssertionError("no enumerable n=4 tail class")


def _time_backend(pool, ks, backend, repeats=2):
    """Min-of-N cold time for the per-k searches; returns (s, verdicts)."""
    best = float("inf")
    verdicts = None
    with store_pkg.RESULT_STORE.disabled():
        for _ in range(repeats):
            KERNEL_CACHE.clear()
            start = time.perf_counter()
            results = [
                decide_one_round_solvability(pool, k, backend=backend)
                for k in ks
            ]
            best = min(best, time.perf_counter() - start)
            verdicts = [
                (r.solvable, r.view_count, r.execution_count) for r in results
            ]
            KERNEL_CACHE.clear()
    return best, verdicts


def _record(workload: str, pool, ks, timings: dict, verdicts) -> None:
    RESULTS[workload] = {
        "graphs": len(pool),
        "ks": list(ks),
        "verdicts": [list(v) for v in verdicts],
        "seconds": {
            name: round(seconds, 4) for name, seconds in timings.items()
        },
        "speedup_vs_reference": {
            name: round(timings["reference"] / seconds, 2)
            for name, seconds in timings.items()
            if name != "reference" and seconds > 0
        },
    }


def test_bitset_acceptance_on_heaviest_n3_class():
    """Acceptance: bitset >= 3x over reference on the heaviest n=3 class,
    identical verdicts (solvable, view count, reduced execution count)."""
    pool = _heaviest_n3_model()
    ks = (1, 2, 3)
    ref_time, ref_verdicts = _time_backend(pool, ks, "reference")
    bit_time, bit_verdicts = _time_backend(pool, ks, "bitset")
    assert bit_verdicts == ref_verdicts
    speedup = ref_time / bit_time
    assert speedup >= MIN_SPEEDUP, (
        f"bitset {bit_time:.3f}s vs reference {ref_time:.3f}s — "
        f"{speedup:.1f}x, need >= {MIN_SPEEDUP}x"
    )
    timings = {"reference": ref_time, "bitset": bit_time}
    if sat_available():
        sat_time, sat_verdicts = _time_backend(pool, ks, "sat")
        assert [v[0] for v in sat_verdicts] == [v[0] for v in ref_verdicts]
        timings["sat"] = sat_time
    _record("n3_heaviest_full_model", pool, ks, timings, ref_verdicts)


def test_backends_agree_on_n4_tail_sample():
    """The n=4 tail shape: bitset must not lose to reference, verdicts
    equal.  (No hard multiple here — the acceptance bound lives on the
    n=3 workload, which CI machines time more stably.)"""
    pool = _n4_tail_sample()
    ks = (1, 2)
    ref_time, ref_verdicts = _time_backend(pool, ks, "reference", repeats=1)
    bit_time, bit_verdicts = _time_backend(pool, ks, "bitset", repeats=1)
    assert bit_verdicts == ref_verdicts
    assert bit_time <= ref_time, (
        f"bitset {bit_time:.3f}s slower than reference {ref_time:.3f}s"
    )
    timings = {"reference": ref_time, "bitset": bit_time}
    if sat_available():
        sat_time, sat_verdicts = _time_backend(pool, ks, "sat", repeats=1)
        assert [v[0] for v in sat_verdicts] == [v[0] for v in ref_verdicts]
        timings["sat"] = sat_time
    _record("n4_tail_sampled_256", pool, ks, timings, ref_verdicts)


@pytest.mark.skipif(not sat_available(), reason="python-sat not installed")
def test_sat_backend_decides_heaviest_n3_class():
    """The sat backend agrees on the heaviest n=3 class (timed above)."""
    pool = _heaviest_n3_model()
    with store_pkg.RESULT_STORE.disabled():
        KERNEL_CACHE.clear()
        for k in (1, 2, 3):
            sat = decide_one_round_solvability(pool, k, backend="sat")
            bit = decide_one_round_solvability(pool, k, backend="bitset")
            assert sat.solvable == bit.solvable
            assert sat.execution_count == bit.execution_count
        KERNEL_CACHE.clear()


def test_write_snapshot():
    """Serialize the measured timings as the committed perf snapshot."""
    assert RESULTS, "timing tests must run before the snapshot is written"
    payload = {
        "bench": "csp_backends",
        "pr": 6,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "acceptance": {
            "n3_heaviest_min_speedup": MIN_SPEEDUP,
            "achieved": RESULTS.get("n3_heaviest_full_model", {})
            .get("speedup_vs_reference", {})
            .get("bitset"),
        },
        "workloads": RESULTS,
    }
    SNAPSHOT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert SNAPSHOT.exists()
