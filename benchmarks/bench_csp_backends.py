"""Benchmarks and acceptance checks for the CSP compute backends.

Times the ``reference`` and ``bitset`` backends (and ``sat`` when
`python-sat` is installed) on the two workloads that dominate the E10
frontier's wall-clock:

* the **heaviest n=3 class** (the empty-graph generator, whose symmetric
  closed-above model is all 64 graphs), searching every candidate
  ``k = 1..3`` over the full model — exactly what the monolithic
  ``solvability_shard`` kernel does;
* a **sampled n=4 tail class** (the sparsest 2-edge representative,
  first 256 graphs of its enumerated model, ``k = 1..2``) — the shape of
  the sub-shards the n=4 sweep spends its time in.

Acceptance (run in CI by the ``backends-smoke`` job with
``--benchmark-disable``): the bitset backend is **>= 3x** faster than the
reference on the heaviest n=3 class, with equal verdicts everywhere.
Measured locally (see EXPERIMENTS.md): ~8-10x on n=3, ~7x on the n=4
tail sample.

Timing goes through :func:`repro.bench.measure` — the same variance
engine behind ``python -m repro bench run`` — so the numbers quoted
here and the ones committed to ``benchmarks/BENCH_<rev>.json`` come
from one code path.  The committed trajectory point itself is produced
by ``python -m repro bench run --out benchmarks/BENCH_8.json``, not by
this file; these tests only *gate*.
"""

from __future__ import annotations

import pytest

import repro.store as store_pkg
from repro.bench import VarianceConfig, measure
from repro.engine import KERNEL_CACHE
from repro.verification import decide_one_round_solvability, sat_available

#: The acceptance bound for bitset vs reference on the heaviest n=3
#: class.  Locally ~8-10x; 3x leaves headroom for loaded CI machines.
MIN_SPEEDUP = 3.0

#: Cold min-of-2, no warmup — the caches are cleared per repeat, so a
#: warmup run would measure nothing different from a timed one.
_COLD_2 = VarianceConfig(
    warmup=0, min_repeats=2, max_repeats=2, cv_threshold=0.0
)
_COLD_1 = VarianceConfig(
    warmup=0, min_repeats=1, max_repeats=1, cv_threshold=0.0
)


def _heaviest_n3_model():
    """All 64 graphs: the full model of the sparsest n=3 class."""
    from repro.graphs.generators import iter_all_digraphs
    from repro.graphs.symmetry import iter_isomorphism_classes
    from repro.models.closed_above import symmetric_closed_above

    representatives = sorted(
        iter_isomorphism_classes(iter_all_digraphs(3)),
        key=lambda g: (-g.proper_edge_count, g.out_rows),
    )
    model = symmetric_closed_above([representatives[-1]])
    return sorted(model.iter_graphs(max_graphs=1 << 12))


def _n4_tail_sample():
    """First 256 graphs of the sparsest enumerable 2-edge n=4 class."""
    from repro.errors import GraphError
    from repro.graphs.generators import iter_all_digraphs
    from repro.graphs.symmetry import iter_isomorphism_classes
    from repro.models.closed_above import symmetric_closed_above

    representatives = sorted(
        iter_isomorphism_classes(iter_all_digraphs(4)),
        key=lambda g: (-g.proper_edge_count, g.out_rows),
    )
    for g in reversed(representatives):
        try:
            model = symmetric_closed_above([g])
            full = sorted(model.iter_graphs(max_graphs=1 << 10))
        except GraphError:
            continue  # up-set exceeds the budget; densify
        return full[:256]
    raise AssertionError("no enumerable n=4 tail class")


def _time_backend(pool, ks, backend, config=_COLD_2):
    """Cold time for the per-k searches; returns (seconds, verdicts).

    Every repeat starts with the kernel cache cleared and the store off
    (scenario isolation: no contamination between backends or between a
    cold phase here and a warm phase elsewhere in the pytest process).
    """
    with store_pkg.RESULT_STORE.disabled():
        KERNEL_CACHE.clear()
        measurement = measure(
            lambda: [
                decide_one_round_solvability(pool, k, backend=backend)
                for k in ks
            ],
            config=config,
            setup=KERNEL_CACHE.clear,
        )
        KERNEL_CACHE.clear()
    verdicts = [
        (r.solvable, r.view_count, r.execution_count)
        for r in measurement.value
    ]
    return measurement.min, verdicts


def test_bitset_acceptance_on_heaviest_n3_class():
    """Acceptance: bitset >= 3x over reference on the heaviest n=3 class,
    identical verdicts (solvable, view count, reduced execution count)."""
    pool = _heaviest_n3_model()
    ks = (1, 2, 3)
    ref_time, ref_verdicts = _time_backend(pool, ks, "reference")
    bit_time, bit_verdicts = _time_backend(pool, ks, "bitset")
    assert bit_verdicts == ref_verdicts
    speedup = ref_time / bit_time
    assert speedup >= MIN_SPEEDUP, (
        f"bitset {bit_time:.3f}s vs reference {ref_time:.3f}s — "
        f"{speedup:.1f}x, need >= {MIN_SPEEDUP}x"
    )
    if sat_available():
        _, sat_verdicts = _time_backend(pool, ks, "sat")
        assert [v[0] for v in sat_verdicts] == [v[0] for v in ref_verdicts]


def test_backends_agree_on_n4_tail_sample():
    """The n=4 tail shape: bitset must not lose to reference, verdicts
    equal.  (No hard multiple here — the acceptance bound lives on the
    n=3 workload, which CI machines time more stably.)"""
    pool = _n4_tail_sample()
    ks = (1, 2)
    ref_time, ref_verdicts = _time_backend(pool, ks, "reference", _COLD_1)
    bit_time, bit_verdicts = _time_backend(pool, ks, "bitset", _COLD_1)
    assert bit_verdicts == ref_verdicts
    assert bit_time <= ref_time, (
        f"bitset {bit_time:.3f}s slower than reference {ref_time:.3f}s"
    )
    if sat_available():
        _, sat_verdicts = _time_backend(pool, ks, "sat", _COLD_1)
        assert [v[0] for v in sat_verdicts] == [v[0] for v in ref_verdicts]


@pytest.mark.skipif(not sat_available(), reason="python-sat not installed")
def test_sat_backend_decides_heaviest_n3_class():
    """The sat backend agrees on the heaviest n=3 class (timed above)."""
    pool = _heaviest_n3_model()
    with store_pkg.RESULT_STORE.disabled():
        KERNEL_CACHE.clear()
        for k in (1, 2, 3):
            sat = decide_one_round_solvability(pool, k, backend="sat")
            bit = decide_one_round_solvability(pool, k, backend="bitset")
            assert sat.solvable == bit.solvable
            assert sat.execution_count == bit.execution_count
        KERNEL_CACHE.clear()
