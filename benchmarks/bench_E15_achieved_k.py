"""E15 — exact achieved k of each witness algorithm vs its guarantee."""

from conftest import run_table

from repro.analysis.tables import e15_achieved_k_table


def test_bench_e15_achieved_k(benchmark):
    headers, rows = run_table(benchmark, e15_achieved_k_table)
    for name, guarantee, achieved, exact in rows:
        assert achieved <= guarantee, f"{name} exceeded its guarantee"
        assert exact is True, f"{name}: analysis not exact for its witness"
