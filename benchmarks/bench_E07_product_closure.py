"""E7 — Sec 6.1: closure-above is not invariant under the path product."""

from conftest import run_table

from repro.analysis.tables import e07_product_closure_report


def test_bench_e07_product_closure(benchmark):
    headers, rows = run_table(benchmark, e07_product_closure_report)
    values = {row[0]: row[1] for row in rows}
    assert values["gap witness found"] is True
    assert values["edges of C_n^2 (proper)"] == 12
