"""Benchmarks and acceptance checks for the distributed executor.

The headline measurement: the full n=3 solvability frontier (16
isomorphism-class shards, the E10 workload) executed serially, on a
2-process pool, and distributed over localhost to two
``python -m repro worker`` subprocesses — all three from a cold kernel
cache and with the persistent store off, so every run pays the real CSP
cost.

Acceptance (plain functions, run in CI with ``--benchmark-disable``):

* **dist wins**: two localhost workers finish the frontier at least 1.5x
  faster than the serial reference (the two heaviest shards are ~2/3 of
  the serial total, so the theoretical ceiling is ~2x; 1.5x leaves
  margin for socket overhead and loaded CI machines);
* **dist transparency**: the distributed run's rows are identical to the
  serial reference's;
* **seeding wins**: against a coordinator holding a warm store, two
  workers with *empty* local stores (``--seed-store on``, the default)
  finish the same frontier at least 2x faster than the same two workers
  unseeded — the store-seeding handshake replaces every CSP search with
  a seed-tier hit, so the seeded run is pure queue service and table
  assembly;
* **splitting wins**: the heaviest ``n = 3`` class (the empty-graph
  generator, whose model is all 64 graphs), decomposed into per-``k``
  sub-shards and distributed over two workers, beats its monolithic
  single-job shard by at least 1.5x with an identical row — the
  load-imbalance scenario dynamic sub-shard scheduling exists for.

Timing goes through :func:`repro.bench.measure` (the ``bench run``
variance engine): worker spawning and the interpreter head start happen
in the per-sample ``setup`` hook, *outside* the timed window, so the
quoted seconds contain only queue service, job execution, and result
streaming.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.store as store_pkg
from repro.analysis.sweeps import solvability_sweep
from repro.bench import VarianceConfig, measure
from repro.dist import DistExecutor, PoolExecutor, SerialExecutor
from repro.engine import KERNEL_CACHE

_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Cold min-of-2 (no warmup: every sample starts from cleared caches,
#: so a warmup would just be a third identical cold run).
_COLD_2 = VarianceConfig(
    warmup=0, min_repeats=2, max_repeats=2, cv_threshold=0.0
)
_COLD_1 = VarianceConfig(
    warmup=0, min_repeats=1, max_repeats=1, cv_threshold=0.0
)


def _worker_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC + (os.pathsep + existing if existing else "")
    env["REPRO_STORE"] = "off"
    return env


def _spawn_workers(address: tuple[str, int], count: int) -> list:
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"{address[0]}:{address[1]}",
                "--retry", "60",
            ],
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for _ in range(count)
    ]


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _measure_serial_sweep(config=_COLD_2):
    """Cold serial frontier through the variance engine: (seconds, rows)."""
    measurement = measure(
        lambda: solvability_sweep(3, executor=SerialExecutor()).rows,
        config=config,
        setup=KERNEL_CACHE.clear,
    )
    return measurement.min, measurement.value


def _measure_dist_sweep(workers: int = 2, config=_COLD_2):
    """The distributed counterpart: fresh worker subprocesses per sample.

    The per-sample ``setup`` hook reaps the previous sample's workers,
    clears the kernel cache, spawns fresh workers against a pre-picked
    port (they retry-connect for up to a minute) and gives them a head
    start for interpreter start-up and imports — the timed window then
    measures queue service and computation, not ``python`` booting.
    """
    state: dict = {"spawned": [], "port": None}

    def _reap() -> None:
        for worker in state["spawned"]:
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
        state["spawned"] = []

    def setup() -> None:
        _reap()
        KERNEL_CACHE.clear()
        state["port"] = _free_port()
        state["spawned"] = _spawn_workers(
            ("127.0.0.1", state["port"]), workers
        )
        time.sleep(2.0)  # interpreter + import head start, off the clock

    def run():
        executor = DistExecutor(f"127.0.0.1:{state['port']}")
        return solvability_sweep(3, executor=executor).rows

    try:
        measurement = measure(run, config=config, setup=setup)
    finally:
        _reap()
    return measurement.min, measurement.value


# ----------------------------------------------------------------------
# Timing benchmarks
# ----------------------------------------------------------------------

def test_bench_frontier_serial(benchmark):
    def once():
        KERNEL_CACHE.clear()
        return solvability_sweep(3, executor=SerialExecutor()).rows

    with store_pkg.RESULT_STORE.disabled():
        rows = benchmark(once)
    assert len(rows) == 16


def test_bench_frontier_dist_two_workers(benchmark):
    def once():
        _, rows = _measure_dist_sweep(2, config=_COLD_1)
        return rows

    with store_pkg.RESULT_STORE.disabled():
        rows = benchmark(once)
    assert len(rows) == 16


# ----------------------------------------------------------------------
# Acceptance checks (run with --benchmark-disable in CI)
# ----------------------------------------------------------------------

@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="a 2-worker speedup needs at least 2 cores",
)
def test_dist_two_workers_at_least_1_5x_faster_than_serial():
    """Acceptance: distributing the frontier over two localhost workers
    beats the serial reference by >=1.5x, with identical rows.

    The two heaviest shards are ~2/3 of the serial total, so the
    theoretical 2-worker ceiling is ~2x; 1.5x leaves room for queue
    overhead and the cross-shard kernel reuse that only the single
    process enjoys.  CI runs this on multi-core runners.
    """
    with store_pkg.RESULT_STORE.disabled():
        serial, serial_rows = _measure_serial_sweep()
        dist, dist_rows = _measure_dist_sweep(2)
    KERNEL_CACHE.clear()
    assert dist_rows == serial_rows
    assert dist * 1.5 <= serial, (
        f"dist (2 workers) {dist:.2f}s vs serial {serial:.2f}s "
        f"({serial / dist:.2f}x)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="the unseeded 2-worker reference needs at least 2 cores",
)
def test_seeded_dist_beats_unseeded():
    """Acceptance: store seeding turns a cold 2-worker frontier run into
    a warm one — at least 2x faster than the unseeded reference, with
    identical rows.

    Both runs use fresh ``python -m repro worker`` subprocesses started
    with ``REPRO_STORE=off`` (empty local stores, the remote-host
    scenario).  Only the coordinator side differs: the unseeded run has
    no active store, the seeded run holds the warm store built serially
    beforehand and streams it at handshake.  The real measured gap is
    ~10x+ (the whole CSP cost vanishes); 2x leaves room for loaded CI
    machines.
    """
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        store = store_pkg.configure(
            path=os.path.join(tmp, "seed-bench.sqlite"), mode="rw"
        )
        try:
            KERNEL_CACHE.clear()
            reference = solvability_sweep(3, executor=SerialExecutor())
            store.flush()

            with store.disabled():
                unseeded, unseeded_rows = _measure_dist_sweep(
                    2, config=_COLD_1
                )
            seeded, seeded_rows = _measure_dist_sweep(2, config=_COLD_1)
        finally:
            store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
            KERNEL_CACHE.clear()
    assert unseeded_rows == reference.rows
    assert seeded_rows == reference.rows
    assert seeded * 2 <= unseeded, (
        f"seeded (2 workers) {seeded:.2f}s vs unseeded {unseeded:.2f}s "
        f"({unseeded / seeded:.2f}x)"
    )


def _heaviest_n3_class():
    """The sparsest n=3 representative: the class that dominates E10."""
    from repro.graphs.generators import iter_all_digraphs
    from repro.graphs.symmetry import iter_isomorphism_classes

    representatives = sorted(
        iter_isomorphism_classes(iter_all_digraphs(3)),
        key=lambda g: (-g.proper_edge_count, g.out_rows),
    )
    return representatives[-1]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="a 2-worker split speedup needs at least 2 cores",
)
def test_split_subshards_beat_monolithic_on_heaviest_class():
    """Acceptance: sub-sharding the heaviest n=3 class over two workers
    beats the monolithic shard by >=1.5x, with an identical row.

    The monolithic shard runs every candidate k's CSP in sequence inside
    one indivisible job — the single worker holding it is the sweep's
    critical path.  The split plan turns the same class into a bounds
    job plus one job per candidate k: the UNSAT searches distribute
    across the two workers, and k >= n is answered analytically (every
    valid map decides at most n values), skipping the class's single
    most expensive search outright.  Measured locally: ~0.47s monolithic
    vs ~0.1s split end-to-end over two workers (~4.5x); 1.5x leaves
    room for loaded CI machines and queue overhead.
    """
    from repro.analysis.sweeps import plan_sweep, sweep_row

    g = _heaviest_n3_class()
    state: dict = {"spawned": [], "port": None}

    def _reap() -> None:
        for worker in state["spawned"]:
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
        state["spawned"] = []

    def split_setup() -> None:
        _reap()
        KERNEL_CACHE.clear()
        state["port"] = _free_port()
        state["spawned"] = _spawn_workers(("127.0.0.1", state["port"]), 2)
        time.sleep(2.0)  # interpreter head start, outside the window

    def split_run():
        plan = plan_sweep([g], 3, split_threshold=1)
        result = DistExecutor(f"127.0.0.1:{state['port']}").run(
            list(plan.tasks), reductions=plan.reductions
        )
        (reduced,) = result.reduction_results
        return reduced.value

    with store_pkg.RESULT_STORE.disabled():
        mono_measurement = measure(
            lambda: sweep_row(g, 3),
            config=_COLD_2,
            setup=KERNEL_CACHE.clear,
        )
        mono, mono_row = mono_measurement.min, mono_measurement.value

        try:
            split_measurement = measure(
                split_run, config=_COLD_2, setup=split_setup
            )
        finally:
            _reap()
        split, split_row = split_measurement.min, split_measurement.value
    KERNEL_CACHE.clear()
    assert split_row == mono_row
    assert split * 1.5 <= mono, (
        f"split (2 workers) {split:.2f}s vs monolithic {mono:.2f}s "
        f"({mono / split:.2f}x)"
    )


def test_dist_matches_pool_rows():
    """Transparency: pool and dist agree shard for shard."""
    with store_pkg.RESULT_STORE.disabled():
        KERNEL_CACHE.clear()
        pool = solvability_sweep(3, limit=8, executor=PoolExecutor(2))
        KERNEL_CACHE.clear()
        _, dist_rows = _measure_dist_sweep(2, config=_COLD_1)
    KERNEL_CACHE.clear()
    assert dist_rows[:8] == pool.rows
