"""E4 — Figure 4: the shellability checker on the paper's two complexes."""

from conftest import run_table

from repro.analysis.tables import e04_shellability_table


def test_bench_e04_shellability(benchmark):
    headers, rows = run_table(benchmark, e04_shellability_table)
    assert all(row[-1] for row in rows), "shellability verdict mismatch"
    by_name = {row[0]: row[3] for row in rows}
    assert by_name["Fig 4a (triangles sharing edge)"] is True
    assert by_name["Fig 4b (triangles sharing vertex)"] is False
