"""E11 — Thms 6.3/6.7: multi-round upper bounds, γ(G^r) decay."""

from conftest import run_table

from repro.analysis.tables import e11_multiround_upper_table


def test_bench_e11_multiround_upper(benchmark):
    headers, rows = run_table(benchmark, e11_multiround_upper_table)
    # γ(G^r) is non-increasing in r for every family.
    by_graph: dict[str, list[int]] = {}
    for name, r, gamma, _seq in rows:
        by_graph.setdefault(name, []).append(gamma)
    for name, gammas in by_graph.items():
        assert all(a >= b for a, b in zip(gammas, gammas[1:])), name
    # Spot values from the table.
    assert by_graph["cycle(6)"] == [3, 2, 2]
    assert by_graph["cycle(7)"] == [4, 3, 2]
