"""Shared helpers for the experiment benchmarks.

Each ``bench_E*.py`` regenerates one experiment of EXPERIMENTS.md: it runs
the corresponding table builder from :mod:`repro.analysis.tables` under
pytest-benchmark, prints the table (visible with ``pytest -s``), and asserts
the correctness column so that a drifting reproduction fails loudly.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the benchmarks without installing the package first.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.render import render_table  # noqa: E402


def run_table(benchmark, builder, *args, **kwargs):
    """Benchmark a table builder and echo its rows."""
    headers, rows = benchmark(builder, *args, **kwargs)
    print()
    print(render_table(headers, rows))
    return headers, rows
