"""E2 — Figure 2: the uninterpreted simplex of a concrete graph."""

from conftest import run_table

from repro.analysis.tables import e02_figure2_report


def test_bench_e02_figure2(benchmark):
    headers, rows = run_table(benchmark, e02_figure2_report)
    assert all(row[-1] for row in rows), "a view deviates from Fig 2b"
