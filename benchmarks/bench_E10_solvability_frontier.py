"""E10 — the exhaustive one-round solvability frontier on n = 3.

For every isomorphism class of symmetric single-generator closed-above
models on 3 processes, the exact solvable k (CSP search over the *full*
allowed graph set) must lie inside the paper's (lower, upper] interval.
"""

from conftest import run_table

from repro.analysis.tables import e10_solvability_frontier_table


def test_bench_e10_solvability_frontier(benchmark):
    headers, rows = run_table(benchmark, e10_solvability_frontier_table, 3)
    assert len(rows) == 16  # isomorphism classes of digraphs on 3 nodes
    assert all(row[3] for row in rows), "an exact value escaped the bounds"
    tight = sum(1 for row in rows if row[4])
    print(f"\nexact frontier tight in {tight}/{len(rows)} model classes")
