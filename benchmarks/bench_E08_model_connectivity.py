"""E8 — Thm 4.12 / Cor 4.9: (n-2)-connectivity of uninterpreted complexes."""

from conftest import run_table

from repro.analysis.tables import e08_model_connectivity_table


def test_bench_e08_model_connectivity(benchmark):
    headers, rows = run_table(benchmark, e08_model_connectivity_table)
    assert all(row[-1] for row in rows), "a model missed (n-2)-connectivity"
