"""E13 — Lemma 4.8: ↑G's uninterpreted complex equals the pseudosphere."""

from conftest import run_table

from repro.analysis.tables import e13_lemma48_table


def test_bench_e13_lemma48(benchmark):
    headers, rows = run_table(benchmark, e13_lemma48_table)
    assert all(row[-1] for row in rows), "Lemma 4.8 failed on some graph"
