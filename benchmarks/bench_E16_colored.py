"""E16 — colored vs oblivious one-round power (the Sec 5 remark)."""

from conftest import run_table

from repro.analysis.tables import e16_colored_vs_oblivious_table


def test_bench_e16_colored(benchmark):
    headers, rows = run_table(benchmark, e16_colored_vs_oblivious_table)
    assert all(row[-1] for row in rows), (
        "colored and oblivious verdicts diverged on a full model — "
        "the Sec 5 remark would be violated"
    )
    # On the star generators identity genuinely helps (subset only).
    star_row = next(r for r in rows if r[0] == "Sym(↑star(3))" and r[1] == 1)
    assert star_row[2] == "False/True"
