"""E5 — Thm 3.2 / 5.1 tightness on simple closed-above models.

For each generator family: MinOfDominatingSet verifiably achieves γ(G)-set
agreement in one round, and the exact CSP search proves (γ(G)-1)-set
agreement impossible (UNSAT on {G} implies UNSAT on ↑G).
"""

from conftest import run_table

from repro.analysis.tables import e05_simple_tightness_table


def test_bench_e05_simple_tightness(benchmark):
    headers, rows = run_table(benchmark, e05_simple_tightness_table)
    for name, gamma, verified, search, confirmed in rows:
        assert verified is True, f"Thm 3.2 failed on {name}"
        if gamma > 1:
            assert search == "UNSAT", f"Thm 5.1 not confirmed on {name}"
