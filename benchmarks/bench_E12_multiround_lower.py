"""E12 — Thms 6.10/6.11: multi-round oblivious lower bounds vs uppers."""

from conftest import run_table

from repro.analysis.tables import e12_multiround_lower_table


def test_bench_e12_multiround_lower(benchmark):
    headers, rows = run_table(benchmark, e12_multiround_lower_table)
    for model, r, impossible, solvable, gap in rows:
        assert impossible < solvable, (model, r)
        assert gap == solvable - impossible - 1
        if model.startswith("Sym(stars"):
            # Thm 6.13: the bracket is round-independent and tight.
            assert gap == 0
