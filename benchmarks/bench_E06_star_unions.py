"""E6 — Thm 5.4 / 6.13: the tight union-of-s-stars family."""

from conftest import run_table

from repro.analysis.tables import e06_star_union_table


def test_bench_e06_star_unions(benchmark):
    headers, rows = run_table(benchmark, e06_star_union_table)
    for n, s, gd, paper_gd, lower, paper_lower, upper, paper_upper, tight in rows:
        assert gd == paper_gd == n - s + 1
        assert lower == paper_lower == n - s
        assert upper == paper_upper == n - s + 1
        assert tight is True
