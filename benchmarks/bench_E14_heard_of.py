"""E14 — Sec 2.1's classical models under the paper's bounds."""

from conftest import run_table

from repro.analysis.tables import e14_heard_of_table


def test_bench_e14_heard_of(benchmark):
    headers, rows = run_table(benchmark, e14_heard_of_table)
    by_name = {row[0]: row for row in rows}
    kernel = by_name["non-empty kernel"]
    # The kernel model is Sym(star): tight at γ_eq = n (Thm 6.13, s=1).
    assert kernel[3] == 4 and kernel[6] is True
    tournament = by_name["tournament (closed-above)"]
    assert tournament[2] == 64  # all tournaments on 4 processes
