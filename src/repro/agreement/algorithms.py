"""Oblivious algorithms for k-set agreement (Secs 3 and 6).

All the paper's upper bounds are realised by two families:

* :class:`MinOfDominatingSet` — one round; decide the minimum value received
  from a precomputed dominating set of the generator (Thm 3.2, simple
  closed-above models).
* :class:`FloodMin` — flood known pairs for ``r`` rounds, decide the overall
  minimum (Thms 3.4/3.7 with ``r = 1``; Thms 6.4/6.5/6.7/6.9 for ``r > 1``).

Both are *oblivious* (Def 2.5): their decision depends only on the flattened
set of known ``(process, value)`` pairs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable

from .._bitops import bits_tuple, popcount
from ..errors import AlgorithmError
from ..graphs.digraph import Digraph
from ..graphs.dominating import minimum_dominating_set
from .views import ObliviousView

__all__ = ["ObliviousAlgorithm", "MinOfDominatingSet", "FloodMin"]


class ObliviousAlgorithm(ABC):
    """An oblivious full-information protocol (Def 2.5).

    Subclasses fix the number of communication rounds and a decision map
    over flattened views.  The decision map must be total on the views the
    target model can produce; a partial map signals a model mismatch by
    raising :class:`AlgorithmError`.
    """

    def __init__(self, rounds: int):
        if rounds < 1:
            raise AlgorithmError(f"need at least one round, got {rounds}")
        self._rounds = rounds

    @property
    def rounds(self) -> int:
        """Number of communication rounds before deciding."""
        return self._rounds

    @abstractmethod
    def decide(self, view: ObliviousView) -> Hashable:
        """Decision map ``δ`` on a flattened view (set of (proc, value))."""

    def name(self) -> str:
        """Human-readable identifier for tables and reports."""
        return type(self).__name__


class MinOfDominatingSet(ObliviousAlgorithm):
    """Thm 3.2's algorithm for simple closed-above models ``↑G``.

    One round of flooding, then decide the minimum initial value among a
    fixed minimum dominating set of ``G`` (computed upfront — ``G`` is
    known).  Every allowed graph contains ``G``, so every process hears at
    least one dominator; at most ``γ(G)`` values are ever decided.
    """

    def __init__(self, generator: Digraph, dominating_set: Iterable[int] | None = None):
        super().__init__(rounds=1)
        self._generator = generator
        if dominating_set is None:
            members = minimum_dominating_set(generator)
        else:
            members = 0
            for p in dominating_set:
                if not 0 <= p < generator.n:
                    raise AlgorithmError(f"process {p} out of range")
                members |= 1 << p
            if not generator.dominates(members):
                raise AlgorithmError(
                    f"{sorted(dominating_set)} does not dominate the generator"
                )
        self._members = members

    @property
    def dominating_set(self) -> tuple[int, ...]:
        """The fixed dominating set used by the decision map."""
        return bits_tuple(self._members)

    @property
    def guarantee(self) -> int:
        """The k this algorithm achieves: ``|dominating set|`` (≥ γ(G))."""
        return popcount(self._members)

    def decide(self, view: ObliviousView) -> Hashable:
        candidates = [v for p, v in view if self._members >> p & 1]
        if not candidates:
            raise AlgorithmError(
                "no value from the dominating set received — the execution "
                "left the simple closed-above model of the generator"
            )
        return min(candidates)

    def name(self) -> str:
        return f"MinOfDominatingSet({self.dominating_set})"


class FloodMin(ObliviousAlgorithm):
    """Flood for ``r`` rounds, decide the minimum known value.

    The workhorse of every other upper bound: Thm 3.4 (``γ_eq``), Thm 3.7
    (covering numbers), and the multi-round Thms 6.4/6.5/6.7/6.9 — the
    guarantees differ only in the analysis, the algorithm is identical.
    """

    def __init__(self, rounds: int = 1):
        super().__init__(rounds=rounds)

    def decide(self, view: ObliviousView) -> Hashable:
        if not view:
            raise AlgorithmError("empty view: a process always knows itself")
        return min(v for _, v in view)

    def name(self) -> str:
        return f"FloodMin(rounds={self.rounds})"
