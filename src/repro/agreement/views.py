"""Process views: full-information and oblivious (Def 2.5).

A *full-information* view after ``r`` rounds is the nested transcript of
everything ever received: at round 0 a process's view is its raw initial
value; after each round the view of ``p`` becomes the set of pairs
``(q, previous view of q)`` over the processes ``q`` that ``p`` heard.

An *oblivious* view forgets the nesting: only the set of
``(process, initial value)`` pairs survives (the paper's ``flat``).
Oblivious algorithms are exactly the full-information protocols whose
decision map factors through ``flat``.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from ..errors import AlgorithmError
from ..graphs.digraph import Digraph

__all__ = [
    "ObliviousView",
    "initial_full_view",
    "full_information_round",
    "run_full_information",
    "flatten_view",
    "initial_oblivious_view",
    "oblivious_round",
    "run_oblivious",
]

#: An oblivious view: the known (process, initial value) pairs.
ObliviousView = frozenset


# ----------------------------------------------------------------------
# Full-information protocol
# ----------------------------------------------------------------------

def initial_full_view(process: int, value: Hashable):
    """Round-0 full-information view: the raw initial value."""
    del process  # the value alone is the paper's round-0 payload
    return value


def full_information_round(
    views: Sequence, graph: Digraph
) -> list[frozenset]:
    """One communication round of the full-information protocol.

    ``views[q]`` is ``q``'s view before the round; afterwards ``p`` holds
    ``{(q, views[q]) | q ∈ In_G(p)}``.
    """
    if len(views) != graph.n:
        raise AlgorithmError(
            f"{len(views)} views for a graph on {graph.n} processes"
        )
    return [
        frozenset((q, views[q]) for q in graph.in_neighbors(p))
        for p in graph.processes()
    ]


def run_full_information(
    inputs: Mapping[int, Hashable], graphs: Sequence[Digraph]
) -> list:
    """Full-information views after playing the given graph sequence."""
    if not graphs:
        raise AlgorithmError("need at least one round")
    n = graphs[0].n
    _check_inputs(inputs, n)
    views: list = [initial_full_view(p, inputs[p]) for p in range(n)]
    for g in graphs:
        if g.n != n:
            raise AlgorithmError("all round graphs must share the process count")
        views = full_information_round(views, g)
    return views


def flatten_view(view, *, _process: int | None = None) -> ObliviousView:
    """The paper's ``flat`` (Def 2.5): extract known (process, value) pairs.

    ``view`` must be a full-information view produced after at least one
    round, i.e. a frozenset of ``(process, subview)`` pairs where leaf
    subviews are raw initial values.
    """
    if not isinstance(view, frozenset):
        raise AlgorithmError(
            "flatten_view expects a post-round view (frozenset of pairs); "
            f"got {view!r}"
        )
    pairs: set[tuple[int, Hashable]] = set()
    for process, sub in view:
        if isinstance(sub, frozenset):
            pairs |= flatten_view(sub)
        else:
            pairs.add((process, sub))
    return frozenset(pairs)


# ----------------------------------------------------------------------
# Oblivious protocol (works directly on flattened knowledge)
# ----------------------------------------------------------------------

def initial_oblivious_view(process: int, value: Hashable) -> ObliviousView:
    """Round-0 oblivious knowledge: a process knows its own pair."""
    return frozenset({(process, value)})


def oblivious_round(
    views: Sequence[ObliviousView], graph: Digraph
) -> list[ObliviousView]:
    """One round of oblivious knowledge propagation.

    ``p``'s new knowledge is the union of the knowledge of everyone it
    heard.  Equals ``flat ∘ full_information_round`` — a property test
    asserts the commutation.
    """
    if len(views) != graph.n:
        raise AlgorithmError(
            f"{len(views)} views for a graph on {graph.n} processes"
        )
    merged: list[ObliviousView] = []
    for p in graph.processes():
        acc: set = set()
        for q in graph.in_neighbors(p):
            acc |= views[q]
        merged.append(frozenset(acc))
    return merged


def run_oblivious(
    inputs: Mapping[int, Hashable], graphs: Sequence[Digraph]
) -> list[ObliviousView]:
    """Oblivious knowledge of every process after the graph sequence."""
    if not graphs:
        raise AlgorithmError("need at least one round")
    n = graphs[0].n
    _check_inputs(inputs, n)
    views = [initial_oblivious_view(p, inputs[p]) for p in range(n)]
    for g in graphs:
        if g.n != n:
            raise AlgorithmError("all round graphs must share the process count")
        views = oblivious_round(views, g)
    return views


def _check_inputs(inputs: Mapping[int, Hashable], n: int) -> None:
    if set(inputs) != set(range(n)):
        raise AlgorithmError(
            f"inputs must cover exactly processes 0..{n - 1}, "
            f"got {sorted(inputs)}"
        )
