"""Running arbitrary decision maps as oblivious algorithms.

The solvability search (:mod:`repro.verification.solvability`) returns
witness decision maps; wrapping one in :class:`DecisionMapAlgorithm` turns
the SAT certificate into a runnable algorithm that the execution engine and
exhaustive verifier accept — closing the loop between "a map exists" and
"here is the protocol, watch it run".
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from ..errors import AlgorithmError
from .algorithms import ObliviousAlgorithm
from .views import ObliviousView

__all__ = ["DecisionMapAlgorithm"]


class DecisionMapAlgorithm(ObliviousAlgorithm):
    """An oblivious algorithm given by an explicit (finite) decision map.

    Parameters
    ----------
    decision_map:
        Maps flattened views (``frozenset[(process, value)]``) to decided
        values.  Must cover every view the target model can produce; a miss
        raises :class:`AlgorithmError` at decision time.
    rounds:
        Communication rounds before the map is applied.
    enforce_validity:
        When True (default), constructing the algorithm verifies that each
        entry decides a value present in its view — the validity-by-
        construction property of the paper's algorithms.
    """

    def __init__(
        self,
        decision_map: Mapping[ObliviousView, Hashable],
        rounds: int = 1,
        enforce_validity: bool = True,
    ):
        super().__init__(rounds=rounds)
        if not decision_map:
            raise AlgorithmError("decision map is empty")
        if enforce_validity:
            for view, value in decision_map.items():
                values_in_view = {v for _, v in view}
                if value not in values_in_view:
                    raise AlgorithmError(
                        f"map decides {value!r} on a view containing only "
                        f"{sorted(values_in_view, key=repr)} — validity "
                        "would break"
                    )
        self._map = dict(decision_map)

    @property
    def size(self) -> int:
        """Number of views the map covers."""
        return len(self._map)

    def decide(self, view: ObliviousView) -> Hashable:
        try:
            return self._map[view]
        except KeyError:
            raise AlgorithmError(
                f"decision map does not cover the view {sorted(view, key=repr)}; "
                "the execution left the graph/input universe the map was "
                "built for"
            ) from None

    def name(self) -> str:
        return f"DecisionMapAlgorithm(|map|={len(self._map)}, rounds={self.rounds})"
