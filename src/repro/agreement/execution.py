"""Round-based execution engine.

Runs an oblivious algorithm against a communication model driven by an
adversary, or against an explicit scripted graph sequence, and checks the
resulting decisions against a :class:`~repro.agreement.task.KSetAgreement`
instance.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, field

from ..errors import AlgorithmError
from ..graphs.digraph import Digraph
from ..models.adversary import Adversary, RandomAdversary
from ..models.communication import CommunicationModel
from .algorithms import ObliviousAlgorithm
from .task import AgreementOutcome, KSetAgreement
from .views import ObliviousView, run_oblivious

__all__ = ["ExecutionResult", "execute", "execute_with_adversary", "random_trials"]


@dataclass(frozen=True)
class ExecutionResult:
    """Everything observable about one finished execution."""

    inputs: dict[int, Hashable]
    graphs: tuple[Digraph, ...]
    views: tuple[ObliviousView, ...]
    decisions: dict[int, Hashable]
    outcome: AgreementOutcome | None = field(default=None)

    @property
    def ok(self) -> bool:
        """True iff checked and both task properties hold."""
        return self.outcome is not None and self.outcome.ok


def execute(
    algorithm: ObliviousAlgorithm,
    inputs: Mapping[int, Hashable],
    graphs: Sequence[Digraph],
    task: KSetAgreement | None = None,
) -> ExecutionResult:
    """Run the algorithm on a scripted sequence of graphs.

    The sequence length must equal the algorithm's round count; decisions
    are taken on the final oblivious views.
    """
    graphs = tuple(graphs)
    if len(graphs) != algorithm.rounds:
        raise AlgorithmError(
            f"{algorithm.name()} needs {algorithm.rounds} rounds, "
            f"got a script of {len(graphs)}"
        )
    views = run_oblivious(inputs, graphs)
    decisions = {p: algorithm.decide(view) for p, view in enumerate(views)}
    outcome = task.check(inputs, decisions) if task is not None else None
    return ExecutionResult(
        inputs=dict(inputs),
        graphs=graphs,
        views=tuple(views),
        decisions=decisions,
        outcome=outcome,
    )


def execute_with_adversary(
    algorithm: ObliviousAlgorithm,
    inputs: Mapping[int, Hashable],
    adversary: Adversary,
    task: KSetAgreement | None = None,
) -> ExecutionResult:
    """Run the algorithm with graphs chosen round-by-round by an adversary."""
    graphs = [
        adversary.graph_for_round(r) for r in range(algorithm.rounds)
    ]
    return execute(algorithm, inputs, graphs, task)


def random_trials(
    algorithm: ObliviousAlgorithm,
    model: CommunicationModel,
    task: KSetAgreement,
    trials: int,
    rng: random.Random,
) -> list[ExecutionResult]:
    """Monte-Carlo harness: random inputs and random model executions.

    Returns every trial's result; callers typically assert ``all(r.ok)``.
    """
    if trials < 1:
        raise AlgorithmError(f"need at least one trial, got {trials}")
    adversary = RandomAdversary(model, rng)
    values = task.values
    results = []
    for _ in range(trials):
        inputs = {p: rng.choice(values) for p in range(model.n)}
        results.append(execute_with_adversary(algorithm, inputs, adversary, task))
    return results
