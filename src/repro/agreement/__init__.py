"""The k-set agreement task, oblivious algorithms, and the execution engine."""

from .algorithms import FloodMin, MinOfDominatingSet, ObliviousAlgorithm
from .decision_map import DecisionMapAlgorithm
from .execution import (
    ExecutionResult,
    execute,
    execute_with_adversary,
    random_trials,
)
from .task import AgreementOutcome, KSetAgreement
from .views import (
    ObliviousView,
    flatten_view,
    full_information_round,
    initial_full_view,
    initial_oblivious_view,
    oblivious_round,
    run_full_information,
    run_oblivious,
)

__all__ = [
    "DecisionMapAlgorithm",
    "FloodMin",
    "MinOfDominatingSet",
    "ObliviousAlgorithm",
    "ExecutionResult",
    "execute",
    "execute_with_adversary",
    "random_trials",
    "AgreementOutcome",
    "KSetAgreement",
    "ObliviousView",
    "flatten_view",
    "full_information_round",
    "initial_full_view",
    "initial_oblivious_view",
    "oblivious_round",
    "run_full_information",
    "run_oblivious",
]
