"""The k-set agreement task [Chaudhuri 93].

Every process starts with an input value and must decide a value such that

* **validity** — every decided value is some process's input;
* **k-agreement** — at most ``k`` distinct values are decided;
* **termination** — every process decides (our round-based executions
  always run to the decision round, so this is structural here).

``1``-set agreement is consensus.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass

from ..errors import AlgorithmError

__all__ = ["KSetAgreement", "AgreementOutcome"]


@dataclass(frozen=True)
class AgreementOutcome:
    """Verdict of checking one execution's decisions against the task."""

    valid: bool
    agreement: bool
    decided_values: frozenset
    distinct_count: int

    @property
    def ok(self) -> bool:
        """True iff both validity and agreement hold."""
        return self.valid and self.agreement


class KSetAgreement:
    """The ``k``-set agreement task over a totally ordered value domain.

    Parameters
    ----------
    k:
        Maximum number of distinct decided values (``k >= 1``).
    values:
        The input domain.  The paper's algorithms pick minima, so a total
        order is required; any sortable hashables work.
    """

    def __init__(self, k: int, values: Sequence[Hashable]):
        if k < 1:
            raise AlgorithmError(f"k must be at least 1, got {k}")
        values = tuple(values)
        if len(set(values)) != len(values):
            raise AlgorithmError("input domain has duplicate values")
        if not values:
            raise AlgorithmError("input domain is empty")
        self._k = k
        self._values = tuple(sorted(values))

    @property
    def k(self) -> int:
        """The agreement parameter."""
        return self._k

    @property
    def values(self) -> tuple:
        """The (sorted) input domain."""
        return self._values

    def check(
        self,
        inputs: Mapping[int, Hashable],
        decisions: Mapping[int, Hashable],
    ) -> AgreementOutcome:
        """Check one execution's decisions.

        ``inputs`` and ``decisions`` map process ids to values; every process
        that appears in ``inputs`` must have decided.
        """
        if set(decisions) != set(inputs):
            raise AlgorithmError(
                "decisions must cover exactly the processes that got inputs"
            )
        input_values = frozenset(inputs.values())
        decided = frozenset(decisions.values())
        valid = decided <= input_values
        agreement = len(decided) <= self._k
        return AgreementOutcome(
            valid=valid,
            agreement=agreement,
            decided_values=decided,
            distinct_count=len(decided),
        )

    def interesting_inputs(self, n: int) -> bool:
        """True iff the domain can exhibit a violation at all.

        With fewer than ``k + 1`` distinct values (or fewer processes than
        ``k + 1``) every execution trivially satisfies ``k``-agreement.
        """
        return len(self._values) > self._k and n > self._k

    def __repr__(self) -> str:
        return f"KSetAgreement(k={self._k}, |values|={len(self._values)})"
