"""ASCII rendering of graphs, complexes and tables for reports and benches."""

from __future__ import annotations

from collections.abc import Sequence

from ..graphs.digraph import Digraph
from ..topology.complexes import SimplicialComplex
from ..topology.simplex import Simplex, stable_key

__all__ = ["render_graph", "render_simplex", "render_complex", "render_table"]


def render_graph(g: Digraph, label: str | None = None) -> str:
    """Adjacency-list rendering with the paper's ``p1..pn`` names."""
    lines = []
    if label:
        lines.append(f"{label}:")
    for u in g.processes():
        heard_by = ", ".join(f"p{v + 1}" for v in g.out_neighbors(u) if v != u)
        lines.append(f"  p{u + 1} -> [{heard_by}]")
    return "\n".join(lines)


def _view_str(view) -> str:
    if isinstance(view, frozenset):
        inner = ", ".join(
            str(x) if not isinstance(x, tuple) else f"p{x[0] + 1}={x[1]}"
            for x in sorted(view, key=stable_key)
        )
        return "{" + inner + "}"
    return str(view)


def render_simplex(s: Simplex) -> str:
    """One-line rendering of a colored simplex."""
    parts = []
    for color, view in s:
        name = f"p{color + 1}" if isinstance(color, int) else str(color)
        parts.append(f"({name}, {_view_str(view)})")
    return "{" + ", ".join(parts) + "}"


def render_complex(c: SimplicialComplex, max_facets: int = 16) -> str:
    """Facet-by-facet rendering, truncated for huge complexes."""
    lines = [repr(c)]
    for i, facet in enumerate(c):
        if i >= max_facets:
            lines.append(f"  ... ({len(c) - max_facets} more facets)")
            break
        lines.append(f"  {render_simplex(facet)}")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain monospace table used by every benchmark's report output."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = []
    for index, row in enumerate(cells):
        out.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)
