"""Run every experiment and emit the EXPERIMENTS.md body.

Usage::

    python -m repro.analysis.experiments            # all experiments
    python -m repro.analysis.experiments E1 E6      # a subset
    python -m repro experiments --jobs 4            # parallel fan-out

Each experiment is submitted as one engine job
(:func:`repro.engine.batch.run_batch`), so ``jobs=N`` fans them out over
worker processes; the serial default produces byte-identical tables.  The
heavy experiments (E10 at n=3, E5's searches) take a couple of minutes
combined; everything else is seconds.  Every table is followed by a cache
footer — the kernel-cache hits/misses attributable to that experiment —
so caching regressions show up directly in the report output.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable

from ..engine.batch import Job, describe_dist_metrics, run_batch
from ..engine.cache import CacheStats
from .render import render_table
from .tables import (
    e01_figure1_table,
    e02_figure2_report,
    e03_pseudosphere_table,
    e04_shellability_table,
    e05_simple_tightness_table,
    e06_star_union_table,
    e07_product_closure_report,
    e08_model_connectivity_table,
    e09_covering_sequence_table,
    e10_solvability_frontier_table,
    e11_multiround_upper_table,
    e12_multiround_lower_table,
    e13_lemma48_table,
    e14_heard_of_table,
    e15_achieved_k_table,
    e16_colored_vs_oblivious_table,
)

EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "E1": ("Figure 1 / Sec 3.2 worked example", e01_figure1_table),
    "E2": ("Figure 2: uninterpreted simplex", e02_figure2_report),
    "E3": ("Figure 3 / Lemma 4.7: pseudosphere connectivity", e03_pseudosphere_table),
    "E4": ("Figure 4: shellability", e04_shellability_table),
    "E5": ("Thm 3.2 / 5.1 tightness on simple models", e05_simple_tightness_table),
    "E6": ("Thm 5.4 / 6.13: union-of-stars family", e06_star_union_table),
    "E7": ("Sec 6.1: product vs closure gap", e07_product_closure_report),
    "E8": ("Thm 4.12: closed-above connectivity", e08_model_connectivity_table),
    "E9": ("Thm 6.7 / 6.9: covering sequences", e09_covering_sequence_table),
    "E10": ("Exhaustive solvability frontier (n=3)", e10_solvability_frontier_table),
    "E11": ("Thm 6.3 / 6.7: multi-round uppers", e11_multiround_upper_table),
    "E12": ("Thm 6.10 / 6.11: multi-round lowers", e12_multiround_lower_table),
    "E13": ("Lemma 4.8 machine check", e13_lemma48_table),
    "E14": ("Heard-Of models (Sec 2.1)", e14_heard_of_table),
    "E15": ("Achieved k vs theorem guarantee", e15_achieved_k_table),
    "E16": ("Colored vs oblivious one-round power", e16_colored_vs_oblivious_table),
}


def _run_experiment(key: str) -> tuple[list[str], list[list[object]]]:
    """Compute one experiment's table; the engine job behind :func:`run`."""
    _, builder = EXPERIMENTS[key]
    return builder()


def _cache_footer(stats: CacheStats, store_stats=None) -> str:
    """One-line cache (and, when persistence is on, store) summary."""
    line = (
        f"cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate)"
    )
    if store_stats is not None:
        line += (
            f"; store: {store_stats.hits} hits / {store_stats.misses} misses"
            f" / {store_stats.writes} writes"
        )
    return line


def run(
    selected: list[str] | None = None,
    stream=None,
    jobs: int = 1,
    executor=None,
) -> None:
    """Run the selected experiments (default: all), printing tables.

    ``stream`` defaults to the *current* ``sys.stdout`` (resolved at call
    time so output capture/redirection works).  ``jobs`` fans the
    experiments out over worker processes; an ``executor``
    (:func:`repro.dist.make_executor`) overrides ``jobs`` and can fan
    them out over remote workers instead.  Tables are printed in request
    order either way, byte-identical across all three execution modes.
    """
    if stream is None:
        stream = sys.stdout
    chosen = selected or list(EXPERIMENTS)
    for key in chosen:
        if key not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {key!r}; choose from {', '.join(EXPERIMENTS)}"
            )
    tasks = [Job(name=key, fn=_run_experiment, args=(key,)) for key in chosen]
    start = time.perf_counter()
    batch = run_batch(tasks, jobs=jobs, executor=executor)
    wall = time.perf_counter() - start
    for key, result in zip(chosen, batch.results):
        title, _ = EXPERIMENTS[key]
        headers, rows = result.value
        print(f"## {key} — {title}  ({result.elapsed:.1f}s)", file=stream)
        print(file=stream)
        print("```", file=stream)
        print(render_table(headers, rows), file=stream)
        print(f"[{_cache_footer(result.stats, result.store_stats)}]", file=stream)
        print("```", file=stream)
        print(file=stream)
    if batch.jobs > 1:
        print(
            f"ran {len(chosen)} experiment(s) on {batch.jobs} workers in "
            f"{wall:.1f}s ({batch.elapsed:.1f}s of compute); "
            f"{_cache_footer(batch.stats, batch.store_stats)}",
            file=stream,
        )
    if batch.dist_metrics is not None:
        # Coordinator-side accounting of a distributed run: how the
        # cluster behaved, not just what it computed.
        print(describe_dist_metrics(batch.dist_metrics), file=stream)


if __name__ == "__main__":
    run(sys.argv[1:] or None)
