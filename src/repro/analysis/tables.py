"""Experiment table builders (the E1..E14 index of DESIGN.md).

Each ``e*_...`` function computes one experiment's rows and returns
``(headers, rows)``; the matching ``benchmarks/bench_E*.py`` times it and
prints the table, and EXPERIMENTS.md records the outputs next to the
paper's claims.

The heavyweight builders compute each row through a module-level row
function submitted to the engine's batch driver
(:func:`repro.engine.batch.run_batch`), so a ``jobs=N`` argument fans the
rows out across worker processes; ``jobs=1`` (the default) runs the same
jobs serially in-process with identical results.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from ..agreement.algorithms import FloodMin, MinOfDominatingSet
from ..agreement.task import KSetAgreement
from ..bounds.lower import (
    lower_bound_general,
    lower_bound_general_multi_round,
    lower_bound_simple,
    lower_bound_simple_multi_round,
    lower_bound_star_unions,
)
from ..bounds.report import bound_report
from ..bounds.upper import (
    best_upper_bound,
    upper_bound_covering_sequence,
    upper_bound_gamma_eq,
    upper_bound_simple,
    upper_bound_simple_multi_round,
)
from ..combinatorics.covering import covering_number, covering_numbers
from ..combinatorics.distributed import (
    distributed_domination_number,
    max_covering_coefficient,
    max_covering_number,
)
from ..combinatorics.domination import (
    equal_domination_number,
    equal_domination_number_of_set,
)
from ..combinatorics.sequences import covering_sequence, rounds_to_reach_all
from ..engine.batch import Job, run_batch
from ..graphs.digraph import Digraph
from ..graphs.dominating import domination_number
from ..graphs.families import (
    bidirectional_cycle,
    cycle,
    figure1_second,
    figure1_star,
    figure2_graph,
    out_tree,
    star,
    tournament,
    union_of_stars,
    wheel,
)
from ..graphs.operations import graph_power
from ..graphs.symmetry import symmetric_closure
from ..models.closed_above import simple_closed_above, symmetric_closed_above
from ..models.heard_of import nonempty_kernel_model, tournament_closed_above
from ..models.products import closure_product_gap
from ..topology.complexes import SimplicialComplex
from ..topology.connectivity import verify_lemma_4_8
from ..topology.homology import (
    homological_connectivity,
    reduced_betti_numbers,
)
from ..topology.pseudosphere import Pseudosphere
from ..topology.shelling import is_shellable
from ..topology.simplex import Simplex
from ..topology.uninterpreted import (
    uninterpreted_complex_of_closed_above,
    uninterpreted_simplex,
)
from ..verification.exhaustive import verify_algorithm
from ..verification.solvability import decide_one_round_solvability

Table = tuple[list[str], list[list[object]]]

__all__ = [
    "figure4a_complex",
    "figure4b_complex",
    "e01_figure1_table",
    "e02_figure2_report",
    "e03_pseudosphere_table",
    "e04_shellability_table",
    "e05_simple_tightness_table",
    "e06_star_union_table",
    "e07_product_closure_report",
    "e08_model_connectivity_table",
    "e09_covering_sequence_table",
    "e10_solvability_frontier_table",
    "e11_multiround_upper_table",
    "e12_multiround_lower_table",
    "e13_lemma48_table",
    "e14_heard_of_table",
    "e15_achieved_k_table",
    "e16_colored_vs_oblivious_table",
]


# ----------------------------------------------------------------------
# Figure 4's two complexes
# ----------------------------------------------------------------------

def figure4a_complex() -> SimplicialComplex:
    """Fig 4a: two triangles glued along an edge — shellable."""
    t1 = Simplex([(0, "v"), (1, "v"), (2, "v")])
    t2 = Simplex([(1, "v"), (2, "v"), (3, "v")])
    return SimplicialComplex.from_simplices([t1, t2])


def figure4b_complex() -> SimplicialComplex:
    """Fig 4b: two triangles sharing only one vertex — not shellable."""
    t1 = Simplex([(0, "v"), (1, "v"), (2, "v")])
    t2 = Simplex([(2, "v"), (3, "v"), (4, "v")])
    return SimplicialComplex.from_simplices([t1, t2])


# ----------------------------------------------------------------------
# E1 — Figure 1 + Sec 3.2 worked example
# ----------------------------------------------------------------------

def e01_figure1_table() -> Table:
    """Combinatorial numbers and one-round bounds for Fig 1's two models."""
    headers = [
        "model",
        "n",
        "gamma_eq",
        "cov_1..cov_3",
        "best Thm3.7 k",
        "Thm3.4 k",
        "best upper k",
        "lower (impossible k)",
        "tight",
    ]
    rows: list[list[object]] = []
    for name, g in (("Sym(star)", figure1_star()), ("Sym(fig1-right)", figure1_second())):
        sym = tuple(symmetric_closure([g]))
        n = g.n
        gamma_eq = equal_domination_number_of_set(sym)
        covs = [
            min(covering_number(h, i) for h in sym) for i in range(1, 4)
        ]
        covering_ks = [
            i + (n - min(covering_number(h, i) for h in sym))
            for i in range(1, gamma_eq)
        ]
        report = bound_report(sym)
        rows.append(
            [
                name,
                n,
                gamma_eq,
                "/".join(map(str, covs)),
                min(covering_ks) if covering_ks else "-",
                upper_bound_gamma_eq(sym).k,
                report.best_upper.k,
                report.best_lower.k,
                report.tight,
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# E2 — Figure 2
# ----------------------------------------------------------------------

def e02_figure2_report() -> Table:
    """The uninterpreted simplex of Fig 2's graph, vertex by vertex."""
    g = figure2_graph()
    sigma = uninterpreted_simplex(g)
    expected = {
        0: frozenset({0, 2}),
        1: frozenset({0, 1}),
        2: frozenset({2}),
    }
    headers = ["process", "view In_G(p)", "paper (Fig 2b)", "match"]
    rows = []
    for p in range(g.n):
        view = sigma.view_of(p)
        rows.append(
            [
                f"p{p + 1}",
                "{" + ",".join(f"p{q + 1}" for q in sorted(view)) + "}",
                "{" + ",".join(f"p{q + 1}" for q in sorted(expected[p])) + "}",
                view == expected[p],
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# E3 — pseudospheres (Fig 3, Lemmas 4.6/4.7)
# ----------------------------------------------------------------------

def e03_pseudosphere_table(max_n: int = 5) -> Table:
    """Lemma 4.7 measured: connectivity of φ(n processes; v values each)."""
    headers = [
        "n",
        "views/process",
        "facets",
        "reduced betti",
        "measured conn",
        "Lemma 4.7 (n-2)",
        "match",
    ]
    rows = []
    for n in range(2, max_n + 1):
        for v in (2, 3):
            if v**n > 300:
                continue
            ps = Pseudosphere.uniform(tuple(range(n)), tuple(range(v)))
            complex_ = ps.to_complex()
            betti = reduced_betti_numbers(complex_)
            measured = homological_connectivity(complex_)
            predicted = ps.predicted_connectivity()
            rows.append(
                [
                    n,
                    v,
                    len(complex_),
                    betti,
                    measured,
                    predicted,
                    measured >= predicted,
                ]
            )
    return headers, rows


# ----------------------------------------------------------------------
# E4 — shellability (Fig 4)
# ----------------------------------------------------------------------

def e04_shellability_table() -> Table:
    """Fig 4's complexes plus control cases through the shelling checker."""
    tetra = Simplex([(i, "v") for i in range(4)])
    boundary = SimplicialComplex.from_simplices(tetra.boundary())
    wedge_of_circles = SimplicialComplex.from_simplices(
        [
            *Simplex([(i, "v") for i in (0, 1, 2)]).boundary(),
            *Simplex([(i, "v") for i in (2, 3, 4)]).boundary(),
        ]
    )
    disconnected = SimplicialComplex.from_simplices(
        [Simplex([(0, "v"), (1, "v")]), Simplex([(2, "v"), (3, "v")])]
    )
    cases = [
        ("Fig 4a (triangles sharing edge)", figure4a_complex(), True),
        ("Fig 4b (triangles sharing vertex)", figure4b_complex(), False),
        ("boundary of tetrahedron", boundary, True),
        # 1-dimensional controls: shellable graphs are exactly the
        # connected ones.
        ("wedge of two circles (connected)", wedge_of_circles, True),
        ("two disjoint edges (disconnected)", disconnected, False),
    ]
    headers = ["complex", "dim", "facets", "shellable", "paper/expected", "match"]
    rows = []
    for name, complex_, expected in cases:
        got = is_shellable(complex_)
        rows.append(
            [name, complex_.dimension, len(complex_), got, expected, got == expected]
        )
    return headers, rows


# ----------------------------------------------------------------------
# E5 — tightness on simple closed-above models (Thm 3.2 / 5.1)
# ----------------------------------------------------------------------

def _e05_row(name: str, g: Digraph, include_search: bool) -> list[object]:
    """One candidate of E5; a batch job of :func:`e05_simple_tightness_table`."""
    gamma = domination_number(g)
    model = simple_closed_above(g)
    algorithm = MinOfDominatingSet(g)
    task = KSetAgreement(gamma, range(gamma + 1))
    verified = verify_algorithm(
        algorithm, model, task, superset_samples=5
    ).ok
    if gamma == 1 or not include_search:
        search_result = "n/a"
        confirmed = "vacuous" if gamma == 1 else "skipped"
    else:
        result = decide_one_round_solvability([g], gamma - 1)
        search_result = "UNSAT" if not result.solvable else "SAT(!)"
        confirmed = not result.solvable
    return [name, gamma, verified, search_result, confirmed]


def e05_simple_tightness_table(
    include_search: bool = True,
    jobs: int = 1,
) -> Table:
    """γ(G)-set solvable (verified) and (γ(G)-1)-set impossible (searched)."""
    candidates: list[tuple[str, Digraph]] = [
        ("star(4)", star(4, 0)),
        ("cycle(4)", cycle(4)),
        ("wheel(4)", wheel(4)),
        ("cycle(5)", cycle(5)),
        ("out_tree(5)", out_tree(5)),
        ("tournament(4)", tournament(4)),
        ("union_of_stars(5,2)", union_of_stars(5, (0, 1))),
    ]
    headers = [
        "generator G",
        "gamma(G)",
        "Thm3.2 verified",
        "search k=gamma-1",
        "Thm5.1 confirmed",
    ]
    tasks = [
        Job(name=f"E5:{name}", fn=_e05_row, args=(name, g, include_search))
        for name, g in candidates
    ]
    return headers, list(run_batch(tasks, jobs=jobs).values)


# ----------------------------------------------------------------------
# E6 — union-of-stars models (Thm 5.4 / 6.13)
# ----------------------------------------------------------------------

def _e06_row(n: int, s: int) -> list[object]:
    """One ``(n, s)`` case of E6; a batch job of :func:`e06_star_union_table`."""
    sym = tuple(sorted(symmetric_closure([union_of_stars(n, tuple(range(s)))])))
    gd = distributed_domination_number(sym)
    lower = lower_bound_general(sym)
    upper = best_upper_bound(sym)
    closed_form = lower_bound_star_unions(n, s)
    return [
        n,
        s,
        gd,
        n - s + 1,
        lower.k,
        closed_form.k,
        upper.k,
        n - s + 1,
        upper.k == lower.k + 1,
    ]


def e06_star_union_table(
    cases: Sequence[tuple[int, int]] | None = None, jobs: int = 1
) -> Table:
    """The paper's flagship tight family: unions of ``s`` stars on ``n``."""
    if cases is None:
        cases = [(4, 1), (4, 2), (4, 3), (5, 1), (5, 2), (5, 3), (5, 4), (6, 2), (6, 3)]
    headers = [
        "n",
        "s",
        "gamma_dist",
        "paper n-s+1",
        "lower (Thm5.4) k",
        "paper impossible n-s",
        "upper (best) k",
        "paper solvable n-s+1",
        "tight",
    ]
    tasks = [
        Job(name=f"E6:n={n},s={s}", fn=_e06_row, args=(n, s)) for n, s in cases
    ]
    return headers, list(run_batch(tasks, jobs=jobs).values)


# ----------------------------------------------------------------------
# E7 — products vs closure (Sec 6.1)
# ----------------------------------------------------------------------

def e07_product_closure_report(n: int = 6) -> Table:
    """The C_n ⊗ C_n example: closure-above is not product-invariant."""
    g = cycle(n)
    squared = graph_power(g, 2)
    witnesses = closure_product_gap(g, g, max_witnesses=1)
    headers = ["quantity", "value"]
    rows: list[list[object]] = [
        ["cycle n", n],
        ["edges of C_n^2 (proper)", squared.proper_edge_count],
        ["gap witness found", bool(witnesses)],
    ]
    if witnesses:
        extra = sorted(
            set(witnesses[0].proper_edges()) - set(squared.proper_edges())
        )
        rows.append(["witness extra edge(s)", extra])
    return headers, rows


# ----------------------------------------------------------------------
# E8 — connectivity of closed-above models (Thm 4.12)
# ----------------------------------------------------------------------

def _e08_row(name: str, generators: list[Digraph]) -> list[object]:
    """One model of E8; a batch job of :func:`e08_model_connectivity_table`."""
    n = generators[0].n
    complex_ = uninterpreted_complex_of_closed_above(generators)
    measured = homological_connectivity(complex_)
    return [name, n, len(complex_), measured, n - 2, measured >= n - 2]


def e08_model_connectivity_table(jobs: int = 1) -> Table:
    """(n-2)-connectivity of uninterpreted complexes, measured by homology."""
    cases: list[tuple[str, list[Digraph]]] = [
        ("simple: fig2 (n=3)", [figure2_graph()]),
        ("simple: cycle(3)", [cycle(3)]),
        ("simple: cycle(4)", [cycle(4)]),
        ("simple: star(4)", [star(4, 0)]),
        ("general: Sym(cycle(3))", sorted(symmetric_closure([cycle(3)]))),
        (
            "general: {cycle(4), wheel(4)}",
            [cycle(4), wheel(4)],
        ),
        (
            "general: Sym(union_of_stars(4,2))",
            sorted(symmetric_closure([union_of_stars(4, (0, 1))])),
        ),
    ]
    headers = ["model", "n", "facets", "measured conn", "Thm 4.12 (n-2)", "ok"]
    tasks = [
        Job(name=f"E8:{name}", fn=_e08_row, args=(name, generators))
        for name, generators in cases
    ]
    return headers, list(run_batch(tasks, jobs=jobs).values)


# ----------------------------------------------------------------------
# E9 — covering sequences (Thm 6.7 / 6.9)
# ----------------------------------------------------------------------

def e09_covering_sequence_table() -> Table:
    """Rounds for the i-th covering sequence to flood, plus verified runs."""
    cases: list[tuple[str, Digraph, int]] = [
        ("cycle(4)", cycle(4), 1),
        ("cycle(5)", cycle(5), 1),
        ("cycle(6)", cycle(6), 1),
        ("cycle(6)", cycle(6), 2),
        ("bidi_cycle(6)", bidirectional_cycle(6), 1),
        ("out_tree(7)", out_tree(7), 1),
        ("wheel(4)", wheel(4), 2),
    ]
    headers = [
        "G",
        "i",
        "covering sequence",
        "rounds to n",
        "FloodMin verified",
    ]
    rows = []
    for name, g, i in cases:
        seq = covering_sequence(g, i)
        rounds = rounds_to_reach_all(g, i)
        if rounds is None:
            verified = "n/a (stalls)"
        else:
            model = simple_closed_above(g)
            task = KSetAgreement(i, range(i + 1))
            report = verify_algorithm(
                FloodMin(rounds), model, task, superset_samples=2
            )
            verified = report.ok
        rows.append([name, i, seq, rounds, verified])
    return headers, rows


# ----------------------------------------------------------------------
# E10 — exhaustive one-round solvability frontier
# ----------------------------------------------------------------------

def e10_solvability_frontier_table(n: int = 3, jobs: int = 1) -> Table:
    """Exact solvable k for every symmetric model on n processes vs bounds.

    Enumerates symmetric closed-above models generated by a single graph
    class on ``n`` processes (deduplicated up to isomorphism).  For each,
    finds the exact smallest solvable ``k`` by CSP search over the *full*
    allowed graph set, and compares with the paper's interval.

    Delegates to :func:`repro.analysis.sweeps.solvability_sweep`: each
    isomorphism class is one resumable shard whose verdict persists in
    the result store, so reruns (and the ``n = 4`` sweep behind ``python
    -m repro sweep``) only pay for classes never seen before.
    """
    from .sweeps import solvability_sweep

    report = solvability_sweep(n, jobs=jobs)
    return report.headers, report.rows


# ----------------------------------------------------------------------
# E11 — multi-round upper bounds
# ----------------------------------------------------------------------

def e11_multiround_upper_table(max_rounds: int = 3) -> Table:
    """γ(G^r) decay and friends (Thms 6.3, 6.7)."""
    cases = [
        ("cycle(6)", cycle(6)),
        ("cycle(7)", cycle(7)),
        ("bidi_cycle(7)", bidirectional_cycle(7)),
        ("out_tree(7)", out_tree(7)),
        ("wheel(5)", wheel(5)),
    ]
    headers = ["G", "r", "gamma(G^r) [Thm6.3]", "cov-seq k=1 rounds [Thm6.7]"]
    rows = []
    for name, g in cases:
        seq_rounds = rounds_to_reach_all(g, 1)
        for r in range(1, max_rounds + 1):
            bound = upper_bound_simple_multi_round(g, r)
            rows.append(
                [name, r, bound.k, seq_rounds if r == 1 else ""]
            )
    return headers, rows


# ----------------------------------------------------------------------
# E12 — multi-round lower bounds (Thms 6.10 / 6.11)
# ----------------------------------------------------------------------

def e12_multiround_lower_table(max_rounds: int = 3) -> Table:
    """Impossible vs solvable k per family and round count (oblivious)."""
    cases = [
        ("cycle(6)", [cycle(6)]),
        ("cycle(7)", [cycle(7)]),
        ("Sym(stars s=2, n=4)", sorted(symmetric_closure([union_of_stars(4, (0, 1))]))),
        ("Sym(stars s=2, n=5)", sorted(symmetric_closure([union_of_stars(5, (0, 1))]))),
    ]
    headers = ["model", "r", "impossible k (6.10/6.11)", "solvable k (6.3/6.4)", "gap"]
    rows = []
    for name, generators in cases:
        for r in range(1, max_rounds + 1):
            if len(generators) == 1:
                lower = lower_bound_simple_multi_round(generators[0], r)
                upper = upper_bound_simple_multi_round(generators[0], r)
            else:
                lower = lower_bound_general_multi_round(generators, r)
                upper = best_upper_bound(generators, r)
            rows.append([name, r, lower.k, upper.k, upper.k - lower.k - 1])
    return headers, rows


# ----------------------------------------------------------------------
# E13 — Lemma 4.8 machine check
# ----------------------------------------------------------------------

def e13_lemma48_table(samples: int = 5, n: int = 3, seed: int = 7) -> Table:
    """↑G's uninterpreted complex equals the predicted pseudosphere."""
    from ..graphs.generators import random_digraph

    rng = random.Random(seed)
    cases = [("fig2", figure2_graph()), ("cycle(3)", cycle(3)), ("star(3)", star(3, 0))]
    for index in range(samples):
        cases.append((f"random#{index}", random_digraph(n, rng, 0.4)))
    headers = ["G", "|↑G|", "Lemma 4.8 holds"]
    rows = []
    for name, g in cases:
        from ..graphs.closure import upward_closure_size

        rows.append([name, upward_closure_size(g), verify_lemma_4_8(g)])
    return headers, rows


# ----------------------------------------------------------------------
# E14 — Heard-Of style models (Sec 2.1)
# ----------------------------------------------------------------------

def e15_achieved_k_table() -> Table:
    """Exact achieved k of each witness algorithm vs the theorem guarantee.

    The worst-case adversary search measures what the constructed algorithm
    *actually* achieves over generator executions — showing where the
    theorem's analysis is exact for its own witness.
    """
    from ..models.closed_above import simple_closed_above
    from ..verification.adversarial import achieved_k

    cases = [
        (
            "MinDom on ↑wheel(4)",
            MinOfDominatingSet(wheel(4)),
            simple_closed_above(wheel(4)),
            upper_bound_simple(wheel(4)).k,
        ),
        (
            "MinDom on ↑cycle(4)",
            MinOfDominatingSet(cycle(4)),
            simple_closed_above(cycle(4)),
            upper_bound_simple(cycle(4)).k,
        ),
        (
            "MinDom on ↑cycle(5)",
            MinOfDominatingSet(cycle(5)),
            simple_closed_above(cycle(5)),
            upper_bound_simple(cycle(5)).k,
        ),
        (
            "FloodMin on Sym(↑C4)",
            FloodMin(1),
            symmetric_closed_above([cycle(4)]),
            3,  # γ_eq
        ),
        (
            "FloodMin on Sym(↑wheel4)",
            FloodMin(1),
            symmetric_closed_above([wheel(4)]),
            3,  # covering bound (Thm 3.7)
        ),
        (
            "FloodMin on Sym(↑stars(5,2))",
            FloodMin(1),
            symmetric_closed_above([union_of_stars(5, (0, 1))]),
            4,  # γ_eq = n - s + 1
        ),
    ]
    headers = ["algorithm/model", "guarantee k", "achieved k", "analysis exact"]
    rows = []
    for name, algorithm, model, guarantee in cases:
        achieved = achieved_k(algorithm, model)
        rows.append([name, guarantee, achieved, achieved == guarantee])
    return headers, rows


def e16_colored_vs_oblivious_table() -> Table:
    """Sec 5 remark: identity adds no one-round power on full models.

    Over generator *subsets* colored maps can win (the star case); over the
    full closed-above graph set the verdicts coincide — machine-checking
    "a one round full information protocol is an oblivious algorithm".
    """
    from ..models.closed_above import simple_closed_above
    from ..verification.colored import decide_one_round_solvability_colored

    cases = [
        ("Sym(↑star(3))", symmetric_closed_above([star(3, 0)])),
        ("↑cycle(3)", simple_closed_above(cycle(3))),
        ("Sym(↑cycle(3))", symmetric_closed_above([cycle(3)])),
        ("↑fig2", simple_closed_above(figure2_graph())),
    ]
    headers = [
        "model", "k",
        "generators: obl/colored",
        "full model: obl/colored",
        "full-model equal",
    ]
    rows = []
    for name, model in cases:
        generators = sorted(model.generators)
        full = sorted(model.iter_graphs())
        for k in (1, 2):
            gen_o = decide_one_round_solvability(generators, k).solvable
            gen_c = decide_one_round_solvability_colored(generators, k).solvable
            full_o = decide_one_round_solvability(full, k).solvable
            full_c = decide_one_round_solvability_colored(full, k).solvable
            rows.append(
                [
                    name, k,
                    f"{gen_o}/{gen_c}",
                    f"{full_o}/{full_c}",
                    full_o == full_c,
                ]
            )
    return headers, rows


def e14_heard_of_table(n: int = 4) -> Table:
    """Classical predicates as closed-above models, with their intervals."""
    kernel_model = nonempty_kernel_model(n)
    tournament_model = tournament_closed_above(n)
    cases = [
        ("non-empty kernel", kernel_model),
        ("tournament (closed-above)", tournament_model),
    ]
    headers = [
        "model",
        "n",
        "generators",
        "gamma_eq",
        "upper k",
        "lower k",
        "tight",
    ]
    rows = []
    for name, model in cases:
        generators = sorted(model.generators)
        report = bound_report(generators)
        rows.append(
            [
                name,
                n,
                len(generators),
                equal_domination_number_of_set(generators),
                report.best_upper.k,
                report.best_lower.k,
                report.tight,
            ]
        )
    return headers, rows
