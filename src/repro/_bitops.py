"""Bit-set utilities used throughout the library.

Processes are numbered ``0 .. n-1`` and sets of processes are represented as
Python integers interpreted as bitmasks: bit ``i`` is set iff process ``i``
belongs to the set.  Python's arbitrary-precision integers make this exact for
any ``n``, and popcount / subset iteration compile down to fast C loops.

All public graph and combinatorics code accepts and returns ordinary
``frozenset``/``tuple`` views where convenient, but the inner loops work on
masks produced by the helpers in this module.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit",
    "mask_of",
    "full_mask",
    "popcount",
    "iter_bits",
    "bits_tuple",
    "iter_subsets",
    "iter_subsets_of_size",
    "iter_supersets",
    "lowest_bit",
    "is_subset",
]


def bit(i: int) -> int:
    """Return the mask containing only element ``i``."""
    if i < 0:
        raise ValueError(f"bit index must be non-negative, got {i}")
    return 1 << i


def mask_of(elements: Iterable[int]) -> int:
    """Return the mask of an iterable of element indices."""
    mask = 0
    for element in elements:
        if element < 0:
            raise ValueError(f"element must be non-negative, got {element}")
        mask |= 1 << element
    return mask


def full_mask(n: int) -> int:
    """Return the mask of the full set ``{0, ..., n-1}``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return (1 << n) - 1


def popcount(mask: int) -> int:
    """Return the number of elements in ``mask``."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the element indices present in ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_tuple(mask: int) -> tuple[int, ...]:
    """Return the elements of ``mask`` as a sorted tuple."""
    return tuple(iter_bits(mask))


def lowest_bit(mask: int) -> int:
    """Return the index of the lowest set bit of a non-empty mask."""
    if mask == 0:
        raise ValueError("mask is empty")
    return (mask & -mask).bit_length() - 1


def is_subset(a: int, b: int) -> bool:
    """Return True iff mask ``a`` is a subset of mask ``b``."""
    return a & ~b == 0


def iter_subsets(mask: int) -> Iterator[int]:
    """Yield every subset of ``mask``, including ``0`` and ``mask`` itself.

    Uses the standard descending subset-enumeration trick; subsets are yielded
    in decreasing numeric order starting from ``mask``.  Mask-native: the
    loop allocates nothing beyond the yielded integers.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_subsets_of_size(mask: int, size: int) -> Iterator[int]:
    """Yield every subset of ``mask`` containing exactly ``size`` elements.

    This runs in the innermost loop of every covering/domination number,
    so both paths avoid per-subset element tuples:

    * contiguous masks (``{0..k-1}``, i.e. every ``full_mask(n)`` universe
      — the overwhelmingly common call) use Gosper's hack, pure integer
      arithmetic yielding subsets in increasing numeric order;
    * sparse masks precompute the single-bit masks once and fold each
      combination with ``|``, skipping the index→mask translation that
      :func:`mask_of` would redo per subset.

    The enumeration order is unspecified beyond being deterministic per
    mask; callers needing a canonical order sort the (small) result.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    count = mask.bit_count()
    if size > count:
        return
    if size == 0:
        yield 0
        return
    if size == count:
        yield mask
        return
    if mask == (1 << count) - 1:
        sub = (1 << size) - 1
        limit = 1 << count
        while sub < limit:
            yield sub
            low = sub & -sub
            ripple = sub + low
            sub = ripple | (((sub ^ ripple) >> 2) // low)
        return
    from itertools import combinations

    single_bits = []
    rest = mask
    while rest:
        low = rest & -rest
        single_bits.append(low)
        rest ^= low
    for combo in combinations(single_bits, size):
        sub = 0
        for bit_mask in combo:
            sub |= bit_mask
        yield sub


def iter_supersets(mask: int, universe: int) -> Iterator[int]:
    """Yield every superset of ``mask`` inside ``universe``.

    ``mask`` must be a subset of ``universe``.  The number of supersets is
    ``2**(popcount(universe) - popcount(mask))``; callers are responsible for
    keeping that tractable.  Mask-native: the loop allocates nothing beyond
    the yielded integers.
    """
    if not is_subset(mask, universe):
        raise ValueError("mask must be a subset of universe")
    free = universe & ~mask
    sub = free
    while True:
        yield mask | sub
        if sub == 0:
            return
        sub = (sub - 1) & free
