"""Exact worst-case analysis of a fixed algorithm against a model.

Where :mod:`repro.verification.solvability` quantifies over *algorithms*
(is any decision map good?), this module quantifies over *executions* for a
given algorithm: the exact worst number of distinct decisions an oblivious
adversary can force.  This measures the *achieved* ``k`` of each paper
algorithm and shows where a theorem's guarantee is conservative for the
specific witness it constructs.

The search space is generator sequences × input assignments (optionally ×
sampled supersets); for the paper's min-based algorithms the generators are
the binding choices, and the exhaustive-closure option removes the gap on
small models.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from itertools import product

from ..agreement.algorithms import ObliviousAlgorithm
from ..agreement.execution import ExecutionResult, execute
from ..errors import VerificationError
from ..models.closed_above import ClosedAboveModel
from .exhaustive import exhaustive_inputs

__all__ = ["WorstCase", "worst_case_decisions", "achieved_k"]


@dataclass(frozen=True)
class WorstCase:
    """The most distinct decisions the adversary forced, with a witness."""

    distinct: int
    witness: ExecutionResult
    executions_searched: int

    def describe(self) -> str:
        return (
            f"worst case: {self.distinct} distinct decisions "
            f"(over {self.executions_searched} executions); witness inputs "
            f"{self.witness.inputs}"
        )


def worst_case_decisions(
    algorithm: ObliviousAlgorithm,
    model: ClosedAboveModel,
    values: Sequence[Hashable],
    superset_samples: int = 0,
    exhaustive_closure: bool = False,
    closure_budget: int = 1 << 14,
    rng: random.Random | None = None,
) -> WorstCase:
    """Maximise the number of distinct decided values over executions.

    With ``exhaustive_closure`` the result is the exact worst case over the
    entire model; otherwise it is exact over generator sequences and a
    lower bound in general (sampled supersets can only raise it).
    """
    values = tuple(values)
    if len(values) < 1:
        raise VerificationError("need at least one value")
    rng = rng or random.Random(0)
    if exhaustive_closure:
        pool = list(model.iter_graphs(max_graphs=closure_budget))
    else:
        pool = list(model.iter_generators())
    best: WorstCase | None = None
    searched = 0
    inputs_list = list(exhaustive_inputs(model.n, values))
    from ..graphs.closure import sample_superset

    for sequence in product(pool, repeat=algorithm.rounds):
        variants = [tuple(sequence)]
        if not exhaustive_closure:
            for _ in range(superset_samples):
                variants.append(tuple(sample_superset(g, rng) for g in sequence))
        for graphs in variants:
            for inputs in inputs_list:
                result = execute(algorithm, inputs, graphs)
                searched += 1
                distinct = len(set(result.decisions.values()))
                if best is None or distinct > best.distinct:
                    best = WorstCase(distinct, result, searched)
    assert best is not None
    return WorstCase(best.distinct, best.witness, searched)


def achieved_k(
    algorithm: ObliviousAlgorithm,
    model: ClosedAboveModel,
    values: Sequence[Hashable] | None = None,
    **kwargs,
) -> int:
    """The exact ``k`` the algorithm achieves (over the searched space).

    ``values`` defaults to ``n`` distinct values — enough to expose any
    worst case of a one-shot decision rule.
    """
    if values is None:
        values = tuple(range(model.n))
    return worst_case_decisions(algorithm, model, values, **kwargs).distinct
