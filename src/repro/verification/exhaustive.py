"""Exhaustive verification of algorithms against models.

For small ``n`` we can quantify over *all* input assignments and *all*
relevant graph choices, turning the paper's upper-bound theorems into
machine-checked facts rather than spot checks.

Graph coverage for closed-above models: enumerating ``⋃↑S`` entirely is
exponential, so :func:`verify_algorithm` checks every sequence of
*generator* graphs exhaustively and augments it with randomly sampled
supersets.  For the paper's min-based algorithms the generators are the
adversary's stingiest choice, but the sampling guards against monotonicity
assumptions being wrong — and `exhaustive_closure=True` removes the gap
entirely when the closure is small enough to enumerate.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterator, Sequence
from itertools import product

from ..agreement.algorithms import ObliviousAlgorithm
from ..agreement.execution import ExecutionResult, execute
from ..agreement.task import KSetAgreement
from ..errors import VerificationError
from ..graphs.closure import sample_superset
from ..graphs.digraph import Digraph
from ..models.closed_above import ClosedAboveModel

__all__ = ["exhaustive_inputs", "verify_algorithm", "VerificationReport"]


def exhaustive_inputs(
    n: int, values: Sequence[Hashable]
) -> Iterator[dict[int, Hashable]]:
    """Every input assignment ``values^n`` (|values|**n of them)."""
    if not values:
        raise VerificationError("need at least one input value")
    for combo in product(values, repeat=n):
        yield dict(enumerate(combo))


class VerificationReport:
    """Outcome of an exhaustive/randomised verification run."""

    def __init__(self) -> None:
        self.executions = 0
        self.failures: list[ExecutionResult] = []

    @property
    def ok(self) -> bool:
        """True iff no execution violated the task."""
        return not self.failures

    def record(self, result: ExecutionResult) -> None:
        """Count a finished execution, keeping failures as counterexamples."""
        self.executions += 1
        if not result.ok:
            self.failures.append(result)

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return f"VerificationReport({status}, executions={self.executions})"


def verify_algorithm(
    algorithm: ObliviousAlgorithm,
    model: ClosedAboveModel,
    task: KSetAgreement,
    superset_samples: int = 20,
    exhaustive_closure: bool = False,
    closure_budget: int = 1 << 14,
    rng: random.Random | None = None,
    stop_at_first_failure: bool = False,
) -> VerificationReport:
    """Verify an algorithm on every input and every generator sequence.

    Parameters
    ----------
    superset_samples:
        Per generator sequence, how many randomly-superset-ed variants to
        additionally test (0 disables).
    exhaustive_closure:
        Enumerate the *entire* allowed graph set instead of generators +
        samples; raises through the closure budget if too large.
    stop_at_first_failure:
        Abort early with the first counterexample.
    """
    rng = rng or random.Random(0)
    report = VerificationReport()
    if exhaustive_closure:
        graph_pool = list(model.iter_graphs(max_graphs=closure_budget))
    else:
        graph_pool = list(model.iter_generators())
    inputs_list = list(exhaustive_inputs(model.n, task.values))
    for sequence in product(graph_pool, repeat=algorithm.rounds):
        variants: list[tuple[Digraph, ...]] = [tuple(sequence)]
        if not exhaustive_closure:
            for _ in range(superset_samples):
                variants.append(
                    tuple(sample_superset(g, rng) for g in sequence)
                )
        for graphs in variants:
            for inputs in inputs_list:
                result = execute(algorithm, inputs, graphs, task)
                report.record(result)
                if stop_at_first_failure and not result.ok:
                    return report
    return report
