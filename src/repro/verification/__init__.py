"""Machine verification: exhaustive algorithm checks, exact solvability
searches, and counterexample certificates."""

from .adversarial import WorstCase, achieved_k, worst_case_decisions
from .backends import available_backends, resolve_backend, sat_available
from .certificates import find_violation, tightness_certificate
from .colored import decide_one_round_solvability_colored
from .exhaustive import VerificationReport, exhaustive_inputs, verify_algorithm
from .multi_round import decide_multi_round_solvability
from .tightness import (
    TightnessAnalysis,
    analyze_tightness,
    exact_one_round_frontier,
)
from .solvability import (
    SolvabilityResult,
    SolvabilitySearch,
    decide_one_round_solvability,
)

__all__ = [
    "WorstCase",
    "achieved_k",
    "worst_case_decisions",
    "available_backends",
    "resolve_backend",
    "sat_available",
    "decide_one_round_solvability_colored",
    "find_violation",
    "tightness_certificate",
    "VerificationReport",
    "exhaustive_inputs",
    "verify_algorithm",
    "SolvabilityResult",
    "SolvabilitySearch",
    "decide_one_round_solvability",
    "decide_multi_round_solvability",
    "TightnessAnalysis",
    "analyze_tightness",
    "exact_one_round_frontier",
]
