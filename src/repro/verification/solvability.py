"""Exact one-round solvability of k-set agreement by oblivious algorithms.

This module decides, by exhaustive constraint search, whether *any*
oblivious decision map solves ``k``-set agreement in one round against an
explicit set of graphs.  It is the ground truth the paper's bounds are
measured against in experiments E5/E10:

* **UNSAT** on a subset of a model's graphs ⟹ impossibility on the model
  (more graphs only constrain further) — certifying lower bounds;
* **SAT** on the *full* allowed graph set ⟹ solvability — certifying that
  an upper bound is not just sufficient but achieved by some map.

Formulation.  A one-round oblivious algorithm is a map ``δ`` from flattened
views (sets of ``(process, value)`` pairs) to values.  With at least two
input values, validity forces ``δ(v)`` to pick a value present in ``v``
(otherwise the adversary completes the execution so that ``δ(v)`` is
nobody's input).  Each execution — a graph ``G`` and an input assignment —
constrains the set ``{δ(view_p)}`` to at most ``k`` distinct values.

The CSP is solved by backtracking with forward checking: once an execution
has ``k`` distinct decided values, the domains of its still-undecided views
are restricted to those values; an emptied domain backtracks immediately.
Variables are chosen fail-first (smallest live domain, then most
constrained).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from itertools import product

from ..agreement.views import ObliviousView
from ..engine.cache import cached_kernel
from ..engine.canonical import graph_set_key
from ..errors import VerificationError
from ..graphs.digraph import Digraph

__all__ = ["SolvabilitySearch", "decide_one_round_solvability", "SolvabilityResult"]


@dataclass(frozen=True)
class SolvabilityResult:
    """Verdict of the search, with a witness decision map when solvable."""

    solvable: bool
    k: int
    view_count: int
    execution_count: int
    decision_map: dict[ObliviousView, Hashable] | None
    rounds: int = 1

    def describe(self) -> str:
        verdict = "solvable" if self.solvable else "IMPOSSIBLE"
        word = "round" if self.rounds == 1 else "rounds"
        return (
            f"{self.k}-set agreement ({self.rounds} {word}): {verdict} "
            f"[{self.view_count} views, {self.execution_count} executions]"
        )


def _solve_csp(
    view_index: dict,
    executions: list[tuple[int, ...]],
    k: int,
    rounds: int = 1,
    domains: list[tuple] | None = None,
) -> SolvabilityResult:
    """Shared CSP core: views, per-execution ≤k-distinct constraints.

    Deduplicates and subsumption-reduces the execution rows, restricts each
    view's domain to the values it contains (validity) unless explicit
    ``domains`` are given (the colored search keys variables by
    ``(process, view)`` and supplies domains itself), then backtracks with
    forward checking.  Used by the one-round, multi-round and colored
    searches.
    """
    executions = list(dict.fromkeys(executions))
    exec_sets = [frozenset(e) for e in executions]
    keep = []
    for i, es in enumerate(exec_sets):
        if not any(i != j and es < other for j, other in enumerate(exec_sets)):
            keep.append(executions[i])
    executions = keep
    views: list[ObliviousView | None] = [None] * len(view_index)
    for view, idx in view_index.items():
        views[idx] = view
    occurs: list[list[int]] = [[] for _ in views]
    for e, exec_views in enumerate(executions):
        for idx in exec_views:
            occurs[idx].append(e)
    if domains is None:
        base_domains = [tuple(sorted({v for _, v in view})) for view in views]
    else:
        base_domains = domains
    solvable, assignment = _backtrack_decision_map(
        executions, occurs, base_domains, k
    )
    decision_map = None
    if solvable:
        decision_map = {view: assignment[idx] for idx, view in enumerate(views)}
    return SolvabilityResult(
        solvable=solvable,
        k=k,
        view_count=len(views),
        execution_count=len(executions),
        decision_map=decision_map,
        rounds=rounds,
    )


def _backtrack_decision_map(
    executions: list[tuple[int, ...]],
    occurs: list[list[int]],
    base_domains: list[tuple],
    k: int,
) -> tuple[bool, list]:
    """Forward-checking backtracker; returns (solvable, assignment)."""
    nviews = len(base_domains)
    domains: list[set] = [set(d) for d in base_domains]
    assignment: list = [None] * nviews
    decided: list[set] = [set() for _ in executions]
    trail: list[tuple[int, Hashable]] = []

    def prune(view: int, value) -> bool:
        domains[view].discard(value)
        trail.append((view, value))
        return bool(domains[view])

    def assign(idx: int, value) -> tuple[bool, int, list[int]]:
        mark = len(trail)
        touched = []
        assignment[idx] = value
        ok = True
        for e in occurs[idx]:
            dec = decided[e]
            if value not in dec:
                dec.add(value)
                touched.append(e)
                if len(dec) == k:
                    for other in executions[e]:
                        if assignment[other] is None:
                            for bad in [x for x in domains[other] if x not in dec]:
                                if not prune(other, bad):
                                    ok = False
                                    break
                        if not ok:
                            break
                elif len(dec) > k:  # pragma: no cover - pruned earlier
                    ok = False
            if not ok:
                break
        return ok, mark, touched

    def undo(idx: int, mark: int, touched: list[int], value) -> None:
        assignment[idx] = None
        while len(trail) > mark:
            view, removed = trail.pop()
            domains[view].add(removed)
        for e in touched:
            decided[e].discard(value)

    def pick_variable() -> int | None:
        best = None
        best_key = None
        for idx in range(nviews):
            if assignment[idx] is not None:
                continue
            key = (len(domains[idx]), -len(occurs[idx]))
            if best_key is None or key < best_key:
                best_key = key
                best = idx
        return best

    def backtrack() -> bool:
        idx = pick_variable()
        if idx is None:
            return True
        for value in sorted(domains[idx], key=repr):
            ok, mark, touched = assign(idx, value)
            if ok and backtrack():
                return True
            undo(idx, mark, touched, value)
        return False

    return backtrack(), assignment


class SolvabilitySearch:
    """Backtracking + forward-checking CSP search over decision maps."""

    def __init__(
        self,
        graphs: Sequence[Digraph],
        k: int,
        values: Sequence[Hashable],
    ):
        graphs = tuple(graphs)
        if not graphs:
            raise VerificationError("need at least one graph")
        n = graphs[0].n
        if any(g.n != n for g in graphs):
            raise VerificationError("graphs must share the process count")
        if k < 1:
            raise VerificationError(f"k must be positive, got {k}")
        values = tuple(values)
        if len(values) < 2:
            raise VerificationError(
                "need at least two values (one value makes the task trivial "
                "and breaks the validity-restriction argument)"
            )
        self._graphs = graphs
        self._n = n
        self._k = k
        self._values = values
        self._build_csp()

    def _build_csp(self) -> None:
        """Index distinct views and the per-execution constraint rows."""
        view_index: dict[ObliviousView, int] = {}
        executions: list[tuple[int, ...]] = []
        for g in self._graphs:
            in_neighbors = [g.in_neighbors(p) for p in range(self._n)]
            for assignment in product(self._values, repeat=self._n):
                exec_views = set()
                for p in range(self._n):
                    view = frozenset(
                        (q, assignment[q]) for q in in_neighbors[p]
                    )
                    idx = view_index.setdefault(view, len(view_index))
                    exec_views.add(idx)
                executions.append(tuple(sorted(exec_views)))
        self._view_index = view_index
        self._raw_executions = executions

    # ------------------------------------------------------------------
    def solve(self) -> SolvabilityResult:
        """Run the search; see the module docstring for the strategy."""
        return _solve_csp(self._view_index, self._raw_executions, self._k)


def decide_one_round_solvability(
    graphs: Sequence[Digraph],
    k: int,
    values: Sequence[Hashable] | None = None,
) -> SolvabilityResult:
    """Decide one-round oblivious solvability of ``k``-set agreement.

    ``values`` defaults to ``0..k`` (``k + 1`` values), which is sufficient
    to witness impossibility: a violation needs ``k + 1`` distinct decided
    values.  A SAT answer over ``graphs`` that are the *complete* model is
    a genuine algorithm; over a subset it only means "not disproved here".

    Results are memoized per *graph set* (order- and duplicate-insensitive)
    in the kernel cache, and — when the persistent store
    (:mod:`repro.store`) is active — across processes too: the CSP search
    is the single most expensive kernel in the repo, so warm-starting it
    is where the store pays for itself.  The kernel version is pinned
    explicitly (bump it on any change to the search semantics, including
    witness tie-breaking) so cosmetic edits don't cold-start the store.
    Every field of the verdict is a function of the set; the witness
    ``decision_map`` is one valid witness for it, shared across equal
    sets.  Treat the returned result as immutable.
    """
    if values is None:
        values = tuple(range(k + 1))
    return _decide_one_round_solvability(tuple(graphs), k, tuple(values))


@cached_kernel(
    name="one_round_solvability",
    key=lambda graphs, k, values: (graph_set_key(graphs), k, values),
    version="1",
)
def _decide_one_round_solvability(
    graphs: tuple[Digraph, ...], k: int, values: tuple[Hashable, ...]
) -> SolvabilityResult:
    return SolvabilitySearch(graphs, k, values).solve()
