"""Exact one-round solvability of k-set agreement by oblivious algorithms.

This module decides, by exhaustive constraint search, whether *any*
oblivious decision map solves ``k``-set agreement in one round against an
explicit set of graphs.  It is the ground truth the paper's bounds are
measured against in experiments E5/E10:

* **UNSAT** on a subset of a model's graphs ⟹ impossibility on the model
  (more graphs only constrain further) — certifying lower bounds;
* **SAT** on the *full* allowed graph set ⟹ solvability — certifying that
  an upper bound is not just sufficient but achieved by some map.

Formulation.  A one-round oblivious algorithm is a map ``δ`` from flattened
views (sets of ``(process, value)`` pairs) to values.  With at least two
input values, validity forces ``δ(v)`` to pick a value present in ``v``
(otherwise the adversary completes the execution so that ``δ(v)`` is
nobody's input).  Each execution — a graph ``G`` and an input assignment —
constrains the set ``{δ(view_p)}`` to at most ``k`` distinct values.

The CSP is solved by backtracking with forward checking: once an execution
has ``k`` distinct decided values, the domains of its still-undecided views
are restricted to those values; an emptied domain backtracks immediately.
Variables are chosen fail-first (smallest live domain, then most
constrained).

The search itself runs on one of the pluggable compute backends in
:mod:`repro.verification.backends` (``reference``, ``bitset``, ``sat``),
selected by the ``backend=`` parameter or ``REPRO_CSP_BACKEND``; this
module builds the abstract CSP (views, executions, value indexing) and
decodes the backend's integer assignment back into a decision map.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from itertools import product

from ..agreement.views import ObliviousView
from ..engine.cache import cached_kernel
from ..engine.canonical import graph_set_key
from ..errors import VerificationError
from ..graphs.digraph import Digraph
from .backends import CSP_BACKEND_VARIANTS, resolve_backend, solve_csp

__all__ = ["SolvabilitySearch", "decide_one_round_solvability", "SolvabilityResult"]


@dataclass(frozen=True)
class SolvabilityResult:
    """Verdict of the search, with a witness decision map when solvable."""

    solvable: bool
    k: int
    view_count: int
    execution_count: int
    decision_map: dict[ObliviousView, Hashable] | None
    rounds: int = 1

    def describe(self) -> str:
        verdict = "solvable" if self.solvable else "IMPOSSIBLE"
        word = "round" if self.rounds == 1 else "rounds"
        return (
            f"{self.k}-set agreement ({self.rounds} {word}): {verdict} "
            f"[{self.view_count} views, {self.execution_count} executions]"
        )


def _solve_csp(
    view_index: dict,
    executions: list[tuple[int, ...]],
    k: int,
    rounds: int = 1,
    domains: list[tuple] | None = None,
    backend: str | None = None,
) -> SolvabilityResult:
    """Shared CSP core: views, per-execution ≤k-distinct constraints.

    Deduplicates the execution rows, restricts each view's domain to the
    values it contains (validity) unless explicit ``domains`` are given
    (the colored search keys variables by ``(process, view)`` and
    supplies domains itself), maps values to small ints, and hands the
    abstract CSP to the selected compute backend (which owns the
    subsumption reduction and the search).  Used by the one-round,
    multi-round and colored searches.
    """
    executions = list(dict.fromkeys(executions))
    views: list[ObliviousView | None] = [None] * len(view_index)
    for view, idx in view_index.items():
        views[idx] = view
    if domains is None:
        base_domains = [tuple(sorted({v for _, v in view})) for view in views]
    else:
        base_domains = domains
    # Index values by first appearance across the domains in view order —
    # deterministic without per-node string formatting, and independent of
    # whether the values themselves are sortable.
    value_index: dict[Hashable, int] = {}
    for domain in base_domains:
        for value in domain:
            if value not in value_index:
                value_index[value] = len(value_index)
    values_by_index = list(value_index)
    int_domains = [
        tuple(sorted(value_index[v] for v in domain)) for domain in base_domains
    ]
    solvable, assignment, reduced_count = solve_csp(
        executions, int_domains, k, backend=backend
    )
    decision_map = None
    if solvable:
        decision_map = {
            view: values_by_index[assignment[idx]]
            for idx, view in enumerate(views)
        }
    return SolvabilityResult(
        solvable=solvable,
        k=k,
        view_count=len(views),
        execution_count=reduced_count,
        decision_map=decision_map,
        rounds=rounds,
    )


class SolvabilitySearch:
    """Backtracking + forward-checking CSP search over decision maps."""

    def __init__(
        self,
        graphs: Sequence[Digraph],
        k: int,
        values: Sequence[Hashable],
    ):
        graphs = tuple(graphs)
        if not graphs:
            raise VerificationError("need at least one graph")
        n = graphs[0].n
        if any(g.n != n for g in graphs):
            raise VerificationError("graphs must share the process count")
        if k < 1:
            raise VerificationError(f"k must be positive, got {k}")
        values = tuple(values)
        if len(values) < 2:
            raise VerificationError(
                "need at least two values (one value makes the task trivial "
                "and breaks the validity-restriction argument)"
            )
        self._graphs = graphs
        self._n = n
        self._k = k
        self._values = values
        self._build_csp()

    def _build_csp(self) -> None:
        """Index distinct views and the per-execution constraint rows."""
        view_index: dict[ObliviousView, int] = {}
        executions: list[tuple[int, ...]] = []
        for g in self._graphs:
            in_neighbors = [g.in_neighbors(p) for p in range(self._n)]
            for assignment in product(self._values, repeat=self._n):
                exec_views = set()
                for p in range(self._n):
                    view = frozenset(
                        (q, assignment[q]) for q in in_neighbors[p]
                    )
                    idx = view_index.setdefault(view, len(view_index))
                    exec_views.add(idx)
                executions.append(tuple(sorted(exec_views)))
        self._view_index = view_index
        self._raw_executions = executions

    # ------------------------------------------------------------------
    def solve(self, backend: str | None = None) -> SolvabilityResult:
        """Run the search; see the module docstring for the strategy."""
        return _solve_csp(
            self._view_index, self._raw_executions, self._k, backend=backend
        )


def decide_one_round_solvability(
    graphs: Sequence[Digraph],
    k: int,
    values: Sequence[Hashable] | None = None,
    backend: str | None = None,
) -> SolvabilityResult:
    """Decide one-round oblivious solvability of ``k``-set agreement.

    ``values`` defaults to ``0..k`` (``k + 1`` values), which is sufficient
    to witness impossibility: a violation needs ``k + 1`` distinct decided
    values.  A SAT answer over ``graphs`` that are the *complete* model is
    a genuine algorithm; over a subset it only means "not disproved here".

    ``backend`` selects the compute backend
    (:mod:`repro.verification.backends`); every backend returns the same
    verdict, but memoization is backend-scoped: the kernel version carries
    the resolved backend name as a suffix so the store never replays one
    backend's rows as another's.

    Results are memoized per *graph set* (order- and duplicate-insensitive)
    in the kernel cache, and — when the persistent store
    (:mod:`repro.store`) is active — across processes too: the CSP search
    is the single most expensive kernel in the repo, so warm-starting it
    is where the store pays for itself.  The kernel version is pinned
    explicitly (bump it on any change to the search semantics, including
    witness tie-breaking) so cosmetic edits don't cold-start the store.
    Every field of the verdict is a function of the set; the witness
    ``decision_map`` is one valid witness for it, shared across equal
    sets.  Treat the returned result as immutable.
    """
    if values is None:
        values = tuple(range(k + 1))
    return _decide_one_round_solvability(
        tuple(graphs), k, tuple(values), backend=backend
    )


@cached_kernel(
    name="one_round_solvability",
    key=lambda graphs, k, values, backend=None: (graph_set_key(graphs), k, values),
    version="2",
    variant=lambda graphs, k, values, backend=None: resolve_backend(backend),
    variants=CSP_BACKEND_VARIANTS,
)
def _decide_one_round_solvability(
    graphs: tuple[Digraph, ...],
    k: int,
    values: tuple[Hashable, ...],
    backend: str | None = None,
) -> SolvabilityResult:
    return SolvabilitySearch(graphs, k, values).solve(backend=backend)
