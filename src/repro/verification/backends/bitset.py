"""Bitmask re-encoding of the reference CSP search.

Values are small ints, so every set the reference backend manipulates
becomes a plain Python integer treated as a bitmask (:mod:`repro._bitops`
conventions): each view's live domain, each execution's decided-value
set, and the prune trail are ints; propagation is ``&``/``|``; fail-first
selection is a popcount; undo restores a saved mask in one assignment.
The traversal order is identical to the reference backend — ascending
value index at every node, same fail-first tie-breaking — so the two
produce the *same witness*, not merely the same verdict.

The subsumption reduction is bitmask-native too, and that matters more
than the backtracker: on the heaviest enumerable classes the quadratic
``frozenset`` containment scan dominates the reference backend's time.
Here rows are masks grouped by popcount (a row can only be strictly
contained in a strictly larger one), and containment is one integer
comparison ``small | big == big``.
"""

from __future__ import annotations

from ..._bitops import mask_of

__all__ = ["reduce_executions", "solve"]


def reduce_executions(
    executions: list[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Drop rows strictly contained in another row; keep original order.

    The caller has already deduplicated, so containment plus unequal size
    is strict containment.  Scanning in decreasing-popcount order means a
    row only needs testing against kept rows of strictly larger popcount
    (the ``barrier`` prefix) — equal-size distinct masks never contain
    each other.
    """
    masks = [mask_of(row) for row in executions]
    order = sorted(
        range(len(masks)), key=lambda i: masks[i].bit_count(), reverse=True
    )
    kept: list[int] = []
    kept_masks: list[int] = []
    barrier = 0
    current_size = -1
    for i in order:
        m = masks[i]
        size = m.bit_count()
        if size != current_size:
            barrier = len(kept_masks)
            current_size = size
        for j in range(barrier):
            big = kept_masks[j]
            if m | big == big:
                break
        else:
            kept.append(i)
            kept_masks.append(m)
    kept.sort()
    return [executions[i] for i in kept]


def solve(
    executions: list[tuple[int, ...]],
    domains: list[tuple[int, ...]],
    k: int,
) -> tuple[bool, list[int | None], int]:
    """Mask-native subsumption reduction + forward-checking backtracker."""
    executions = reduce_executions(executions)
    nviews = len(domains)
    occurs: list[list[int]] = [[] for _ in range(nviews)]
    for e, exec_views in enumerate(executions):
        for idx in exec_views:
            occurs[idx].append(e)

    # Per-view live domains and per-execution decided sets as masks.
    dom: list[int] = [mask_of(d) for d in domains]
    dec_mask: list[int] = [0] * len(executions)
    dec_count: list[int] = [0] * len(executions)
    assignment: list[int] = [-1] * nviews
    # Prune trail of (view, previous domain mask) whole-mask snapshots,
    # restored LIFO on undo — cheaper than per-value bookkeeping.
    trail: list[tuple[int, int]] = []
    occ_len = [len(o) for o in occurs]

    def backtrack() -> bool:
        # Fail-first: smallest live domain, ties to the most-occurring
        # view — numerically identical to the reference pick_variable.
        best = -1
        best_size = 0
        best_occ = 0
        for idx in range(nviews):
            if assignment[idx] >= 0:
                continue
            size = dom[idx].bit_count()
            occ = occ_len[idx]
            if best < 0 or size < best_size or (
                size == best_size and occ > best_occ
            ):
                best = idx
                best_size = size
                best_occ = occ
        if best < 0:
            return True
        idx = best
        rest = dom[idx]
        while rest:
            vbit = rest & -rest
            rest ^= vbit
            # --- assign(idx, vbit) ---
            mark = len(trail)
            touched: list[int] = []
            assignment[idx] = vbit.bit_length() - 1
            ok = True
            for e in occurs[idx]:
                if dec_mask[e] & vbit:
                    continue
                dec_mask[e] |= vbit
                dec_count[e] += 1
                touched.append(e)
                if dec_count[e] == k:
                    allowed = dec_mask[e]
                    for other in executions[e]:
                        if assignment[other] < 0:
                            narrowed = dom[other] & allowed
                            if narrowed != dom[other]:
                                trail.append((other, dom[other]))
                                dom[other] = narrowed
                                if not narrowed:
                                    ok = False
                                    break
                elif dec_count[e] > k:  # pragma: no cover - pruned earlier
                    ok = False
                if not ok:
                    break
            if ok and backtrack():
                return True
            # --- undo ---
            assignment[idx] = -1
            while len(trail) > mark:
                view, previous = trail.pop()
                dom[view] = previous
            for e in touched:
                dec_mask[e] ^= vbit
                dec_count[e] -= 1
        return False

    solvable = backtrack()
    decoded: list[int | None] = [
        value if value >= 0 else None for value in assignment
    ]
    return solvable, decoded, len(executions)
