"""The original pure-Python CSP search, kept as the semantics oracle.

This is the PR-1 backtracker from ``verification/solvability.py`` moved
behind the backend interface, byte-for-byte in its search behaviour with
one deliberate exception: values are now small ints, so the value order
at each node is plain ascending order instead of ``sorted(..., key=repr)``
(same order for the default ``0..k`` values, no string formatting per
node; the kernel version was bumped because witness tie-breaking can
change for exotic value sets).

Every other backend is cross-checked against this one — keep it simple
and obviously correct rather than fast.
"""

from __future__ import annotations

__all__ = ["solve"]


def solve(
    executions: list[tuple[int, ...]],
    domains: list[tuple[int, ...]],
    k: int,
) -> tuple[bool, list[int | None], int]:
    """Subsumption-reduce the rows, then backtrack with forward checking."""
    exec_sets = [frozenset(e) for e in executions]
    keep = []
    for i, es in enumerate(exec_sets):
        if not any(i != j and es < other for j, other in enumerate(exec_sets)):
            keep.append(executions[i])
    executions = keep
    occurs: list[list[int]] = [[] for _ in domains]
    for e, exec_views in enumerate(executions):
        for idx in exec_views:
            occurs[idx].append(e)
    solvable, assignment = _backtrack_decision_map(
        executions, occurs, domains, k
    )
    return solvable, assignment, len(executions)


def _backtrack_decision_map(
    executions: list[tuple[int, ...]],
    occurs: list[list[int]],
    base_domains: list[tuple[int, ...]],
    k: int,
) -> tuple[bool, list[int | None]]:
    """Forward-checking backtracker; returns (solvable, assignment)."""
    nviews = len(base_domains)
    domains: list[set[int]] = [set(d) for d in base_domains]
    assignment: list[int | None] = [None] * nviews
    decided: list[set[int]] = [set() for _ in executions]
    trail: list[tuple[int, int]] = []

    def prune(view: int, value: int) -> bool:
        domains[view].discard(value)
        trail.append((view, value))
        return bool(domains[view])

    def assign(idx: int, value: int) -> tuple[bool, int, list[int]]:
        mark = len(trail)
        touched = []
        assignment[idx] = value
        ok = True
        for e in occurs[idx]:
            dec = decided[e]
            if value not in dec:
                dec.add(value)
                touched.append(e)
                if len(dec) == k:
                    for other in executions[e]:
                        if assignment[other] is None:
                            for bad in [x for x in domains[other] if x not in dec]:
                                if not prune(other, bad):
                                    ok = False
                                    break
                        if not ok:
                            break
                elif len(dec) > k:  # pragma: no cover - pruned earlier
                    ok = False
            if not ok:
                break
        return ok, mark, touched

    def undo(idx: int, mark: int, touched: list[int], value: int) -> None:
        assignment[idx] = None
        while len(trail) > mark:
            view, removed = trail.pop()
            domains[view].add(removed)
        for e in touched:
            decided[e].discard(value)

    def pick_variable() -> int | None:
        best = None
        best_key = None
        for idx in range(nviews):
            if assignment[idx] is not None:
                continue
            key = (len(domains[idx]), -len(occurs[idx]))
            if best_key is None or key < best_key:
                best_key = key
                best = idx
        return best

    def backtrack() -> bool:
        idx = pick_variable()
        if idx is None:
            return True
        for value in sorted(domains[idx]):
            ok, mark, touched = assign(idx, value)
            if ok and backtrack():
                return True
            undo(idx, mark, touched, value)
        return False

    return backtrack(), assignment
