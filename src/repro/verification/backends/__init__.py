"""Pluggable compute backends for the solvability CSP kernels.

Every solvability search in :mod:`repro.verification` (one-round,
multi-round, colored) bottoms out in the same abstract problem: given
execution rows over view indices and a per-view domain of candidate
values, is there an assignment in which every execution decides at most
``k`` distinct values?  This package isolates that question behind one
interface so the hot kernel can be swapped without touching the
search-construction layers above it:

``reference``
    The original pure-Python search over ``set`` objects, kept verbatim
    as the semantics oracle every other backend is cross-checked against.
``bitset``
    The same search re-encoded over integer bitmasks — domains, decided
    sets and the prune trail are plain ints, so propagation is bitwise
    AND/OR and fail-first selection is a popcount.  Same traversal order
    as ``reference``, an order of magnitude less interpreter work.
``sat``
    A CNF encoding (selector var per (view, value), sequential-counter
    cardinality per execution) handed to `python-sat` when importable.
    Useful on instances whose backtracking tree blows up; optional
    because the dependency is not in the runtime requirements.

Backend contract: ``solve(executions, domains, k)`` where ``executions``
are deduplicated tuples of view indices and ``domains`` are sorted tuples
of *small value indices* (the caller maps real values to ints and back).
Returns ``(solvable, assignment, reduced_count)`` with ``assignment`` a
per-view value index (or None) and ``reduced_count`` the number of
execution rows left after subsumption reduction — each backend owns that
reduction because it dominates build cost on the heaviest classes.

Selection: the ``backend=`` parameter threaded through the public search
functions, else the ``REPRO_CSP_BACKEND`` environment variable, else
``auto`` (currently the bitset backend).  The pseudo-backend ``check``
runs every available backend and asserts identical verdicts — the tests
and CI smoke jobs use it to keep the implementations pinned together.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from ...errors import VerificationError

__all__ = [
    "BACKEND_NAMES",
    "CSP_BACKEND_VARIANTS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backends",
    "resolve_backend",
    "sat_available",
    "solve_csp",
    "witness_ok",
]

#: Environment variable consulted when no explicit ``backend=`` is given.
ENV_VAR = "REPRO_CSP_BACKEND"

#: Concrete single-implementation backends.
BACKEND_NAMES = ("reference", "bitset", "sat")

#: What ``auto`` resolves to.  The bitset backend is the default because
#: it is exhaustively cross-checked against ``reference`` and strictly
#: faster; ``sat`` stays opt-in so cluster runs never depend on whether a
#: worker happens to have `python-sat` installed.
DEFAULT_BACKEND = "bitset"

#: Every version suffix a CSP kernel can run under — the store registers
#: all of them as live so ``store vacuum`` keeps rows of every backend.
CSP_BACKEND_VARIANTS = BACKEND_NAMES + ("check",)

_SAT_AVAILABLE: bool | None = None


def sat_available() -> bool:
    """True when `python-sat` is importable (checked once per process)."""
    global _SAT_AVAILABLE
    if _SAT_AVAILABLE is None:
        try:
            from pysat.solvers import Solver  # noqa: F401
        except ImportError:
            _SAT_AVAILABLE = False
        else:
            _SAT_AVAILABLE = True
    return _SAT_AVAILABLE


def available_backends() -> tuple[str, ...]:
    """The concrete backends usable in this process."""
    names = ("reference", "bitset")
    return names + ("sat",) if sat_available() else names


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend request to a concrete name (or ``check``).

    ``None`` or ``""`` falls back to :data:`ENV_VAR`, then to ``auto``.
    Raises :class:`VerificationError` for unknown names and for ``sat``
    when `python-sat` is not importable.
    """
    raw = name if name else os.environ.get(ENV_VAR, "")
    raw = str(raw).strip().lower() or "auto"
    if raw == "auto":
        return DEFAULT_BACKEND
    if raw == "check":
        return "check"
    if raw not in BACKEND_NAMES:
        choices = ", ".join(("auto", "check") + BACKEND_NAMES)
        raise VerificationError(
            f"unknown CSP backend {raw!r} (choose from: {choices})"
        )
    if raw == "sat" and not sat_available():
        raise VerificationError(
            "CSP backend 'sat' requires python-sat "
            "(pip install python-sat); use backend='bitset' or "
            "'reference' instead"
        )
    return raw


def _solver(name: str):
    if name == "reference":
        from . import reference

        return reference.solve
    if name == "bitset":
        from . import bitset

        return bitset.solve
    if name == "sat":
        from . import sat

        return sat.solve
    raise VerificationError(f"no solver for backend {name!r}")


def witness_ok(
    executions: Sequence[tuple[int, ...]],
    domains: Sequence[tuple[int, ...]],
    assignment: Sequence[int | None],
    k: int,
) -> bool:
    """Validate a witness against the *unreduced* constraint rows.

    Every view must be assigned a value from its own domain (validity)
    and every execution must decide at most ``k`` distinct values.
    """
    for idx, domain in enumerate(domains):
        if assignment[idx] is None or assignment[idx] not in domain:
            return False
    for row in executions:
        if len({assignment[idx] for idx in row}) > k:
            return False
    return True


def solve_csp(
    executions: list[tuple[int, ...]],
    domains: list[tuple[int, ...]],
    k: int,
    backend: str | None = None,
) -> tuple[bool, list[int | None], int]:
    """Dispatch the abstract CSP to the resolved backend.

    With ``backend='check'`` every available backend is run and their
    verdicts (solvable, reduced row count) must agree, each SAT witness
    must validate — the reference answer is returned.
    """
    name = resolve_backend(backend)
    if name != "check":
        return _solver(name)(executions, domains, k)

    results = {
        candidate: _solver(candidate)(executions, domains, k)
        for candidate in available_backends()
    }
    reference = results["reference"]
    for candidate, (solvable, assignment, reduced) in results.items():
        if solvable != reference[0]:
            raise VerificationError(
                f"backend cross-check failed: {candidate} says "
                f"solvable={solvable}, reference says {reference[0]}"
            )
        if reduced != reference[2]:
            raise VerificationError(
                f"backend cross-check failed: {candidate} kept {reduced} "
                f"executions after reduction, reference kept {reference[2]}"
            )
        if solvable and not witness_ok(executions, domains, assignment, k):
            raise VerificationError(
                f"backend cross-check failed: {candidate} produced an "
                f"invalid witness for k={k}"
            )
    return reference
