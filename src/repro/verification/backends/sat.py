"""CNF encoding of the solvability CSP for `python-sat`.

Encoding, per fixed ``k``:

* one selector variable per (view, candidate value) — validity is
  structural because only values from the view's own domain get vars;
* one at-least-one clause per view (a decision map is total);
* per candidate value of each execution, a *used* variable implied by
  every selector of that value in the execution's views;
* per execution, ``≤ k`` of its used vars true, via python-sat's
  sequential-counter cardinality encoding (``EncType.seqcounter``).

No at-most-one clause per view is needed: the decoder takes the lowest
true selector, and any extra true selectors only make the cardinality
constraint harder, never easier — a satisfying model stays satisfying
when projected to one value per view.

Rows are subsumption-reduced with the bitset backend's mask reduction
first (shared helper) so ``reduced_count`` matches the other backends
exactly — the cross-check mode asserts it.

The module imports `python-sat` lazily and only when
:func:`repro.verification.backends.sat_available` said it is importable;
the dependency stays optional at runtime.
"""

from __future__ import annotations

from .bitset import reduce_executions

__all__ = ["solve"]


def solve(
    executions: list[tuple[int, ...]],
    domains: list[tuple[int, ...]],
    k: int,
) -> tuple[bool, list[int | None], int]:
    """Encode to CNF, solve, decode the model back to an assignment."""
    from pysat.card import CardEnc, EncType
    from pysat.solvers import Solver

    executions = reduce_executions(executions)
    nviews = len(domains)

    next_id = 1
    # sel[idx][value] -> CNF variable "view idx decides value".
    sel: list[dict[int, int]] = []
    clauses: list[list[int]] = []
    for domain in domains:
        row = {}
        for value in domain:
            row[value] = next_id
            next_id += 1
        sel.append(row)
        clauses.append(list(row.values()))  # at-least-one per view

    card_blocks: list[list[int]] = []
    for row_views in executions:
        candidates: dict[int, list[int]] = {}
        for idx in row_views:
            for value, var in sel[idx].items():
                candidates.setdefault(value, []).append(var)
        if len(candidates) <= k:
            continue  # can't exceed k distinct values, no constraint
        used_vars = []
        for value, selectors in sorted(candidates.items()):
            used = next_id
            next_id += 1
            used_vars.append(used)
            for var in selectors:
                clauses.append([-var, used])  # sel -> used
        card_blocks.append(used_vars)

    top = next_id - 1
    for used_vars in card_blocks:
        enc = CardEnc.atmost(
            lits=used_vars, bound=k, top_id=top, encoding=EncType.seqcounter
        )
        clauses.extend(enc.clauses)
        top = max(top, enc.nv)

    with Solver(name="m22", bootstrap_with=clauses) as solver:
        if not solver.solve():
            return False, [None] * nviews, len(executions)
        model = set(solver.get_model())

    assignment: list[int | None] = [None] * nviews
    for idx, row in enumerate(sel):
        for value in sorted(row):
            if row[value] in model:
                assignment[idx] = value
                break
    return True, assignment, len(executions)
