"""Automated tightness analysis: paper interval vs exact frontier.

For a model small enough to enumerate, :func:`exact_one_round_frontier`
finds the smallest solvable ``k`` by CSP search over the *complete* allowed
graph set, and :func:`analyze_tightness` compares it against the paper's
``(lower, upper]`` interval — the engine behind experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bounds.report import BoundReport, bound_report
from ..errors import VerificationError
from ..models.closed_above import ClosedAboveModel
from .solvability import decide_one_round_solvability

__all__ = ["TightnessAnalysis", "exact_one_round_frontier", "analyze_tightness"]


@dataclass(frozen=True)
class TightnessAnalysis:
    """Comparison of the paper's interval with the exact frontier."""

    report: BoundReport
    exact_k: int

    @property
    def lower_sound(self) -> bool:
        """The impossibility claim did not overshoot the exact frontier."""
        return self.report.best_lower.k < self.exact_k

    @property
    def upper_sound(self) -> bool:
        """The solvability claim is indeed solvable."""
        return self.exact_k <= self.report.best_upper.k

    @property
    def lower_tight(self) -> bool:
        """The impossibility claim is exactly one below the frontier."""
        return self.report.best_lower.k == self.exact_k - 1

    @property
    def upper_tight(self) -> bool:
        """The solvability claim meets the frontier."""
        return self.report.best_upper.k == self.exact_k

    def describe(self) -> str:
        return (
            f"paper ({self.report.best_lower.k}, {self.report.best_upper.k}]"
            f" vs exact k={self.exact_k}: lower "
            f"{'tight' if self.lower_tight else ('sound' if self.lower_sound else 'UNSOUND')},"
            f" upper {'tight' if self.upper_tight else ('sound' if self.upper_sound else 'UNSOUND')}"
        )


def exact_one_round_frontier(
    model: ClosedAboveModel, max_graphs: int = 1 << 12
) -> int:
    """Smallest ``k`` with one-round ``k``-set agreement solvable — exact.

    Enumerates the full allowed graph set (guarded by ``max_graphs``) and
    sweeps ``k`` upward; ``k = n`` always succeeds (everyone decides their
    own value), so the sweep terminates.
    """
    graphs = sorted(model.iter_graphs(max_graphs=max_graphs))
    for k in range(1, model.n + 1):
        if decide_one_round_solvability(graphs, k).solvable:
            return k
    raise VerificationError(
        "unreachable: n-set agreement is solvable by deciding own input"
    )


def analyze_tightness(
    model: ClosedAboveModel,
    semantics: str = "pointwise",
    max_graphs: int = 1 << 12,
) -> TightnessAnalysis:
    """Run the full comparison for a (small) closed-above model."""
    report = bound_report(sorted(model.generators), semantics=semantics)
    exact = exact_one_round_frontier(model, max_graphs=max_graphs)
    return TightnessAnalysis(report=report, exact_k=exact)
