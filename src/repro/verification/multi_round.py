"""Exact multi-round solvability for oblivious algorithms.

Generalises the one-round CSP of :mod:`repro.verification.solvability`:
an ``r``-round oblivious algorithm is a decision map over the *flattened*
knowledge accumulated through ``r`` rounds (Def 2.5 — oblivious algorithms
remember pairs, not history).  Executions are sequences of graphs; for a
model given by an explicit graph pool we quantify over all ``pool^r``
sequences and all input assignments.

Soundness mirrors the one-round case:

* UNSAT over a subset of the model's graphs ⟹ no oblivious algorithm on
  the model (certifies Thm 6.10/6.11 instances);
* SAT over the complete allowed set ⟹ a genuine oblivious algorithm.

The search cost grows as ``|pool|^r · |values|^n`` executions, so this is a
small-``n``, small-``r`` instrument.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from itertools import product

from ..agreement.views import initial_oblivious_view, oblivious_round
from ..errors import VerificationError
from ..graphs.digraph import Digraph
from .solvability import SolvabilityResult, _solve_csp

__all__ = ["decide_multi_round_solvability"]


def decide_multi_round_solvability(
    graphs: Sequence[Digraph],
    rounds: int,
    k: int,
    values: Sequence[Hashable] | None = None,
    backend: str | None = None,
) -> SolvabilityResult:
    """Decide ``r``-round oblivious solvability of ``k``-set agreement.

    ``graphs`` is the per-round pool (each round's graph drawn from it
    independently — the oblivious adversary); ``values`` defaults to
    ``0..k``; ``backend`` selects the CSP compute backend
    (:mod:`repro.verification.backends`).
    """
    graphs = tuple(graphs)
    if not graphs:
        raise VerificationError("need at least one graph")
    if rounds < 1:
        raise VerificationError(f"rounds must be positive, got {rounds}")
    if k < 1:
        raise VerificationError(f"k must be positive, got {k}")
    n = graphs[0].n
    if any(g.n != n for g in graphs):
        raise VerificationError("graphs must share the process count")
    if values is None:
        values = tuple(range(k + 1))
    values = tuple(values)
    if len(values) < 2:
        raise VerificationError("need at least two values")

    view_index: dict = {}
    executions: list[tuple[int, ...]] = []
    for sequence in product(graphs, repeat=rounds):
        for assignment in product(values, repeat=n):
            views = [initial_oblivious_view(p, assignment[p]) for p in range(n)]
            for g in sequence:
                views = oblivious_round(views, g)
            exec_views = set()
            for view in views:
                idx = view_index.setdefault(view, len(view_index))
                exec_views.add(idx)
            executions.append(tuple(sorted(exec_views)))
    return _solve_csp(view_index, executions, k, rounds=rounds, backend=backend)
