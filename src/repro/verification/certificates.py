"""Counterexample certificates.

Lower bounds say "no algorithm achieves k"; these helpers find the concrete
executions on which a *given* algorithm fails a target ``k`` — useful to
show the paper's upper bounds are not slack (the witnessing algorithm really
cannot do better) and to debug candidate algorithms.
"""

from __future__ import annotations

import random
from itertools import product

from ..agreement.algorithms import ObliviousAlgorithm
from ..agreement.execution import ExecutionResult, execute
from ..agreement.task import KSetAgreement
from ..errors import VerificationError
from ..models.closed_above import ClosedAboveModel
from .exhaustive import exhaustive_inputs

__all__ = ["find_violation", "tightness_certificate"]


def find_violation(
    algorithm: ObliviousAlgorithm,
    model: ClosedAboveModel,
    k: int,
    values=None,
    superset_samples: int = 10,
    rng: random.Random | None = None,
) -> ExecutionResult | None:
    """An execution on which the algorithm decides more than ``k`` values.

    Searches generator sequences exhaustively plus sampled supersets.
    Returns None when no violation was found (which does **not** prove the
    algorithm achieves ``k`` unless the search was exhaustive over the
    model — see :func:`repro.verification.exhaustive.verify_algorithm`).
    """
    if values is None:
        values = tuple(range(k + 1))
    task = KSetAgreement(k, values)
    rng = rng or random.Random(0)
    generators = list(model.iter_generators())
    inputs_list = list(exhaustive_inputs(model.n, values))
    from ..graphs.closure import sample_superset

    for sequence in product(generators, repeat=algorithm.rounds):
        variants = [tuple(sequence)]
        for _ in range(superset_samples):
            variants.append(tuple(sample_superset(g, rng) for g in sequence))
        for graphs in variants:
            for inputs in inputs_list:
                result = execute(algorithm, inputs, graphs, task)
                if not result.ok:
                    return result
    return None


def tightness_certificate(
    algorithm: ObliviousAlgorithm,
    model: ClosedAboveModel,
    achieved_k: int,
) -> ExecutionResult:
    """Certificate that the algorithm achieves exactly ``achieved_k``.

    Asserts a violation of ``achieved_k - 1`` exists and returns it; raises
    :class:`VerificationError` if the algorithm seems to do strictly better
    (meaning the claimed ``k`` is slack for this algorithm).
    """
    if achieved_k < 2:
        raise VerificationError(
            "tightness certificates need achieved_k >= 2 (a violation of "
            "k - 1 >= 1 must be expressible)"
        )
    violation = find_violation(algorithm, model, achieved_k - 1)
    if violation is None:
        raise VerificationError(
            f"no execution forces {achieved_k} distinct decisions; the "
            f"algorithm may actually solve {achieved_k - 1}-set agreement"
        )
    return violation
