"""Colored (process-aware) one-round solvability.

The paper remarks (end of Sec 5) that its one-round lower bounds apply to
*general* algorithms because "a one round full information protocol is an
oblivious algorithm".  Formally, a general one-round decision map may
depend on the deciding process's identity — its variables are the vertices
``(p, view)`` of the chromatic protocol complex — while an oblivious map
(Def 2.5) is keyed by the flattened view alone.

This module implements the colored search so the remark can be *tested*:
:func:`decide_one_round_solvability_colored` quantifies over all colored
maps; comparing with the oblivious search on enumerable models checks that
the extra freedom never helps in one round.  (It cannot *hurt* — every
oblivious map is a colored map — so the interesting direction is colored
SAT ⟹ oblivious SAT.)
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from itertools import product

from ..errors import VerificationError
from ..graphs.digraph import Digraph
from .solvability import SolvabilityResult, _solve_csp

__all__ = ["decide_one_round_solvability_colored"]


def decide_one_round_solvability_colored(
    graphs: Sequence[Digraph],
    k: int,
    values: Sequence[Hashable] | None = None,
    backend: str | None = None,
) -> SolvabilityResult:
    """Is there a *colored* one-round decision map for k-set agreement?

    Variables are ``(process, view)`` pairs; validity still restricts each
    variable to the values present in the view (the adversary argument is
    identity-independent).  Same soundness caveats as the oblivious search:
    UNSAT on a subset of a model is sound, SAT needs the full model.
    ``backend`` selects the CSP compute backend
    (:mod:`repro.verification.backends`).
    """
    graphs = tuple(graphs)
    if not graphs:
        raise VerificationError("need at least one graph")
    n = graphs[0].n
    if any(g.n != n for g in graphs):
        raise VerificationError("graphs must share the process count")
    if k < 1:
        raise VerificationError(f"k must be positive, got {k}")
    if values is None:
        values = tuple(range(k + 1))
    values = tuple(values)
    if len(values) < 2:
        raise VerificationError("need at least two values")

    index: dict = {}
    domains: list[tuple] = []
    executions: list[tuple[int, ...]] = []
    for g in graphs:
        in_neighbors = [g.in_neighbors(p) for p in range(n)]
        for assignment in product(values, repeat=n):
            exec_vars = set()
            for p in range(n):
                view = frozenset((q, assignment[q]) for q in in_neighbors[p])
                key = (p, view)
                if key not in index:
                    index[key] = len(index)
                    domains.append(tuple(sorted({v for _, v in view})))
                exec_vars.add(index[key])
            executions.append(tuple(sorted(exec_vars)))
    return _solve_csp(index, executions, k, domains=domains, backend=backend)
