"""Command-line interface.

Usage::

    python -m repro bounds --family wheel --n 4 [--symmetric] [--rounds 2]
    python -m repro search --family cycle --n 4 --k 1 [--full]
    python -m repro verify --family cycle --n 4 --k 2 [--rounds 3]
    python -m repro experiments [E1 E6 ...] [--jobs 4]
    python -m repro cache-stats [--n 5] [--passes 3]

``--family`` names any zero/one-argument constructor from
:mod:`repro.graphs.families` (star, cycle, wheel, path, out_tree,
tournament, ...); ``union_of_stars`` additionally takes ``--centers``.
"""

from __future__ import annotations

import argparse
import sys

from . import graphs as graph_families
from .agreement import FloodMin, KSetAgreement
from .bounds import bound_report
from .graphs import Digraph, symmetric_closure
from .models import simple_closed_above, symmetric_closed_above
from .verification import decide_one_round_solvability, verify_algorithm

_FAMILIES = (
    "star", "cycle", "bidirectional_cycle", "path", "wheel",
    "out_tree", "in_tree", "tournament", "complete_graph", "empty_graph",
    "union_of_stars",
)


def _build_graph(args: argparse.Namespace) -> Digraph:
    if args.family not in _FAMILIES:
        raise SystemExit(
            f"unknown family {args.family!r}; choose from {', '.join(_FAMILIES)}"
        )
    constructor = getattr(graph_families, args.family)
    if args.family == "union_of_stars":
        centers = tuple(int(c) for c in (args.centers or "0").split(","))
        return constructor(args.n, centers)
    return constructor(args.n)


def _generators(args: argparse.Namespace) -> list[Digraph]:
    g = _build_graph(args)
    if args.symmetric:
        return sorted(symmetric_closure([g]))
    return [g]


def cmd_bounds(args: argparse.Namespace) -> int:
    report = bound_report(_generators(args), rounds=args.rounds)
    print(report.describe())
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    generators = _generators(args)
    if args.full:
        model = (
            symmetric_closed_above(generators)
            if args.symmetric
            else simple_closed_above(generators[0])
        )
        pool = sorted(model.iter_graphs(max_graphs=args.budget))
        scope = f"full model ({len(pool)} graphs)"
    else:
        pool = generators
        scope = f"generators ({len(pool)} graphs)"
    result = decide_one_round_solvability(pool, args.k)
    print(f"[{scope}] {result.describe()}")
    if not args.full and result.solvable:
        print(
            "note: SAT over generators only means 'not disproved here'; "
            "rerun with --full for a definitive answer on small models"
        )
    return 0 if result.solvable else 1


def cmd_verify(args: argparse.Namespace) -> int:
    generators = _generators(args)
    model = (
        symmetric_closed_above(generators)
        if args.symmetric
        else simple_closed_above(generators[0])
    )
    task = KSetAgreement(args.k, range(args.k + 1))
    report = verify_algorithm(
        FloodMin(args.rounds), model, task, superset_samples=args.samples
    )
    status = "OK" if report.ok else "FAILED"
    print(
        f"FloodMin({args.rounds}) @ k={args.k}: {status} over "
        f"{report.executions} executions"
    )
    for failure in report.failures[:3]:
        print(f"  counterexample: inputs={failure.inputs} "
              f"decisions={failure.decisions}")
    return 0 if report.ok else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis.experiments import run

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be a positive integer, got {args.jobs}")
    run(args.ids or None, jobs=args.jobs)
    return 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    from .engine.diagnostics import cache_probe

    if args.passes < 2:
        raise SystemExit(
            f"--passes must be at least 2 (one cold, one warm), got {args.passes}"
        )
    report = cache_probe(n=args.n, passes=args.passes)
    print(report.describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="K-set agreement bounds in round-based models "
        "(Shimi & Castañeda, PODC 2020) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", required=True, help="graph family name")
        p.add_argument("--n", type=int, required=True, help="process count")
        p.add_argument("--centers", help="for union_of_stars: e.g. 0,1")
        p.add_argument(
            "--symmetric", action="store_true",
            help="use the symmetric closure of the generator",
        )

    p_bounds = sub.add_parser("bounds", help="print the paper's bound report")
    add_model_args(p_bounds)
    p_bounds.add_argument("--rounds", type=int, default=1)
    p_bounds.set_defaults(func=cmd_bounds)

    p_search = sub.add_parser(
        "search", help="exact one-round solvability (CSP search)"
    )
    add_model_args(p_search)
    p_search.add_argument("--k", type=int, required=True)
    p_search.add_argument(
        "--full", action="store_true",
        help="search over the fully enumerated model (small n only)",
    )
    p_search.add_argument("--budget", type=int, default=1 << 12)
    p_search.set_defaults(func=cmd_search)

    p_verify = sub.add_parser(
        "verify", help="exhaustively verify FloodMin at a given k"
    )
    add_model_args(p_verify)
    p_verify.add_argument("--k", type=int, required=True)
    p_verify.add_argument("--rounds", type=int, default=1)
    p_verify.add_argument("--samples", type=int, default=5)
    p_verify.set_defaults(func=cmd_verify)

    p_exp = sub.add_parser("experiments", help="run experiment tables")
    p_exp.add_argument("ids", nargs="*", help="e.g. E1 E6 (default: all)")
    p_exp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment batch (default: 1)",
    )
    p_exp.set_defaults(func=cmd_experiments)

    p_cache = sub.add_parser(
        "cache-stats",
        help="probe the kernel cache: cold vs warm pass timings and hit rates",
    )
    p_cache.add_argument(
        "--n", type=int, default=5, help="process count of the probe families"
    )
    p_cache.add_argument(
        "--passes", type=int, default=3, help="workload passes (first is cold)"
    )
    p_cache.set_defaults(func=cmd_cache_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
