"""Command-line interface.

Usage::

    python -m repro bounds --family wheel --n 4 [--symmetric] [--rounds 2]
    python -m repro search --family cycle --n 4 --k 1 [--full]
                           [--backend bitset|reference|sat|check]
    python -m repro verify --family cycle --n 4 --k 2 [--rounds 3]
    python -m repro experiments [E1 E6 ...] [--jobs 4 | --distributed :7071]
                                [--trace FILE]
    python -m repro cache-stats [--n 5] [--passes 3] [--json]
    python -m repro sweep --n 4 [--jobs 4 | --distributed :7071] [--limit K]
                          [--split-threshold 2048] [--subshard on|off]
                          [--backend bitset|reference|sat|check]
                          [--trace FILE]
                          [--checkpoint FILE] [--resume-from FILE]
    python -m repro worker --connect HOST:7071 [--jobs 2] [--retry 30]
                           [--spawn auto|N [--max-respawns 3]]
    python -m repro dist status HOST:7071 [--json] [--watch N [--interval S]]
    python -m repro trace summary FILE [--json] [--top 8]
    python -m repro bench run [--quick] [--out FILE] [--scenario NAME ...]
    python -m repro bench compare OLD.json NEW.json [--tolerance PCT] [--json]
    python -m repro bench list [--quick] [--json]
    python -m repro store stats [--json]
    python -m repro store probe [--n 5] [--passes 2] [--json]
    python -m repro store vacuum | clear | integrity
    python -m repro store prune --max-age-days 30 --max-size-mb 256
    python -m repro store export --out backup.sqlite

``--family`` names any zero/one-argument constructor from
:mod:`repro.graphs.families` (star, cycle, wheel, path, out_tree,
tournament, ...); ``union_of_stars`` additionally takes ``--centers``.

Compute backends: the solvability CSP kernels run on a pluggable backend
(``--backend`` on ``search`` and ``sweep``, or ``REPRO_CSP_BACKEND``):
``bitset`` (the default under ``auto``), the ``reference`` pure-Python
search, the optional ``sat`` CNF encoding (requires ``python-sat``), or
``check`` which runs every available backend and asserts identical
verdicts.  Results are backend-independent; store rows are not shared
across backends (each backend persists under its own kernel version).

Persistence: set ``REPRO_STORE=rw`` (and optionally
``REPRO_STORE_PATH=...``) to warm-start every command from a persistent
result store; the ``store`` subcommands manage that file (``--path``
overrides the environment for one invocation).

Distributed execution: ``--distributed HOST:PORT`` (on ``experiments``
and ``sweep``) binds a TCP coordinator and serves the same jobs to every
``python -m repro worker --connect HOST:PORT`` on any machine, instead of
forking a local pool; results are identical to serial/pool runs and only
the coordinator writes the result store.  With ``--seed-store on`` (the
default) the coordinator also streams its store's relevant rows to every
connecting remote worker and answers their store misses over the wire,
so hosts without a shared filesystem start warm; ``python -m repro dist
status HOST:PORT`` probes a live coordinator for queue depth, leases,
per-worker throughput, and rows seeded/served (``--watch N`` polls).

Tracing: ``--trace FILE`` (on ``experiments`` and ``sweep``, or
``REPRO_TRACE=FILE`` for any command) records spans across every layer —
kernel calls with cache-tier attribution, store flushes, job lifecycle,
coordinator events — into a Chrome ``trace_event`` JSON file loadable in
Perfetto (``ui.perfetto.dev``) or ``chrome://tracing``, with one lane per
worker process, cluster-wide.  ``python -m repro trace summary FILE``
aggregates a recorded trace without leaving the terminal.  Tracing never
changes results; the equivalence tests pin traced == untraced rows.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import graphs as graph_families
from .agreement import FloodMin, KSetAgreement
from .bounds import bound_report
from .graphs import Digraph, symmetric_closure
from .models import simple_closed_above, symmetric_closed_above
from .verification import decide_one_round_solvability, verify_algorithm

_FAMILIES = graph_families.FAMILY_NAMES


def _build_graph(args: argparse.Namespace) -> Digraph:
    from .errors import GraphError

    centers = None
    if args.family == "union_of_stars":
        centers = tuple(int(c) for c in (args.centers or "0").split(","))
    try:
        return graph_families.build_family(args.family, args.n, centers)
    except GraphError as exc:
        raise SystemExit(str(exc)) from exc


def _generators(args: argparse.Namespace) -> list[Digraph]:
    g = _build_graph(args)
    if args.symmetric:
        return sorted(symmetric_closure([g]))
    return [g]


def cmd_bounds(args: argparse.Namespace) -> int:
    report = bound_report(_generators(args), rounds=args.rounds)
    print(report.describe())
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    generators = _generators(args)
    if args.full:
        model = (
            symmetric_closed_above(generators)
            if args.symmetric
            else simple_closed_above(generators[0])
        )
        pool = sorted(model.iter_graphs(max_graphs=args.budget))
        scope = f"full model ({len(pool)} graphs)"
    else:
        pool = generators
        scope = f"generators ({len(pool)} graphs)"
    result = decide_one_round_solvability(pool, args.k, backend=args.backend)
    print(f"[{scope}] {result.describe()}")
    if not args.full and result.solvable:
        print(
            "note: SAT over generators only means 'not disproved here'; "
            "rerun with --full for a definitive answer on small models"
        )
    return 0 if result.solvable else 1


def cmd_verify(args: argparse.Namespace) -> int:
    generators = _generators(args)
    model = (
        symmetric_closed_above(generators)
        if args.symmetric
        else simple_closed_above(generators[0])
    )
    task = KSetAgreement(args.k, range(args.k + 1))
    report = verify_algorithm(
        FloodMin(args.rounds), model, task, superset_samples=args.samples
    )
    status = "OK" if report.ok else "FAILED"
    print(
        f"FloodMin({args.rounds}) @ k={args.k}: {status} over "
        f"{report.executions} executions"
    )
    for failure in report.failures[:3]:
        print(f"  counterexample: inputs={failure.inputs} "
              f"decisions={failure.decisions}")
    return 0 if report.ok else 1


def _executor_for(args: argparse.Namespace):
    """Executor from ``--jobs`` / ``--distributed`` (None = plain jobs).

    One chokepoint: the namespace is lifted onto an
    :class:`repro.config.ExecutorConfig` and the executor built from it,
    so the CLI and programmatic surfaces cannot drift.
    """
    if getattr(args, "distributed", None) is None:
        return None
    from .config import ExecutorConfig
    from .errors import ConfigError, DistError

    try:
        config = ExecutorConfig.from_args(args)
        return config.make(
            log=lambda message: print(f"[dist] {message}", file=sys.stderr),
        )
    except (ConfigError, DistError) as exc:
        raise SystemExit(f"--distributed: {exc}") from exc


def _start_trace(args: argparse.Namespace) -> str | None:
    """Enable span recording for this invocation when ``--trace`` was given.

    Returns the target path (or ``None``), for :func:`_finish_trace`.
    ``REPRO_TRACE=FILE`` reaches the same switch at import time, so the
    flag only needs to handle the explicit opt-in.
    """
    path = getattr(args, "trace", None)
    if not path:
        return None
    from .obs import configure_trace

    configure_trace(path)
    return path


def _finish_trace(path: str | None) -> None:
    """Drain the tracer into the Chrome trace file, if tracing was on."""
    if not path:
        return
    from .obs import write_trace

    count = write_trace(path)
    print(f"[trace] wrote {count} event(s) to {path}", file=sys.stderr)


def cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis.experiments import run

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be a positive integer, got {args.jobs}")
    trace_path = _start_trace(args)
    run(args.ids or None, jobs=args.jobs, executor=_executor_for(args))
    _finish_trace(trace_path)
    return 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    from .engine.diagnostics import cache_probe

    if args.passes < 2:
        raise SystemExit(
            f"--passes must be at least 2 (one cold, one warm), got {args.passes}"
        )
    report = cache_probe(n=args.n, passes=args.passes)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.render import render_table
    from .analysis.sweeps import solvability_sweep

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be a positive integer, got {args.jobs}")
    if args.split_threshold < 1:
        raise SystemExit(
            f"--split-threshold must be a positive integer, "
            f"got {args.split_threshold}"
        )
    from .config import SweepConfig
    from .errors import ConfigError, DistError

    trace_path = _start_trace(args)
    try:
        config = SweepConfig.from_args(args)
    except ConfigError as exc:
        raise SystemExit(f"sweep: {exc}") from exc
    try:
        report = solvability_sweep(
            config=config,
            executor=_executor_for(args),
            checkpoint_path=args.checkpoint,
            resume_from=args.resume_from,
        )
    except DistError as exc:
        # A missing/mismatched checkpoint must fail loudly, not silently
        # become a fresh run.
        raise SystemExit(f"sweep: {exc}") from exc
    if args.json:
        payload = {
            "n": report.n,
            "config": report.config_fingerprint,
            "total_classes": report.total_classes,
            "sharded": report.sharded,
            "resumed": report.resumed,
            "replayed": report.replayed,
            "checkpoint_dropped": report.checkpoint_dropped,
            "split_threshold": report.split_threshold,
            "subshard": report.subshard,
            "backend": report.backend,
            "cost_model": report.cost_model,
            "splits": report.splits,
            "subshards": report.subshards,
            "classes": [cls.to_dict() for cls in report.classes],
            "headers": report.headers,
            "rows": [[repr(cell) for cell in row] for row in report.rows],
            "cache": report.batch.stats.to_dict(),
        }
        if report.batch.store_stats is not None:
            payload["store"] = report.batch.store_stats.to_dict()
        if report.batch.dist_metrics is not None:
            payload["dist"] = report.batch.dist_metrics
        print(json.dumps(payload, indent=2))
    else:
        print(render_table(report.headers, report.rows))
        print(report.describe())
        if report.batch.dist_metrics is not None:
            from .engine.batch import describe_dist_metrics

            print(describe_dist_metrics(report.batch.dist_metrics))
    _finish_trace(trace_path)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        BenchFormatError,
        QUICK_CONFIG,
        VarianceConfig,
        compare_snapshots,
        describe_comparison,
        list_scenarios,
        load_snapshot,
        run_bench,
        write_snapshot,
    )

    if args.action == "list":
        scenarios = list_scenarios(args.scenario or None, quick=args.quick)
        if args.json:
            print(json.dumps(scenarios, indent=2))
        else:
            for scenario in scenarios:
                print(f"{scenario['scenario']}: {scenario['description']}")
                for cell in scenario["cells"]:
                    marker = "  [quick]" if cell["quick"] else ""
                    print(f"  {cell['id']}{marker}")
        return 0

    if args.action == "compare":
        if not args.old or not args.new:
            raise SystemExit("bench compare requires OLD and NEW files")
        if args.tolerance < 0:
            raise SystemExit(
                f"--tolerance must be >= 0, got {args.tolerance}"
            )
        try:
            old = load_snapshot(args.old)
            new = load_snapshot(args.new)
            report = compare_snapshots(
                old, new, tolerance=args.tolerance / 100.0
            )
        except BenchFormatError as exc:
            print(f"bench compare: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(describe_comparison(report))
        return 0 if report["ok"] else 1

    # action == "run"
    config = None
    if args.repeats is not None:
        if args.repeats < 1:
            raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")
        base = QUICK_CONFIG if args.quick else VarianceConfig()
        config = VarianceConfig(
            warmup=base.warmup,
            min_repeats=min(args.repeats, base.min_repeats),
            max_repeats=args.repeats,
            cv_threshold=base.cv_threshold,
        )
    try:
        payload = run_bench(
            args.scenario or None,
            quick=args.quick,
            config=config,
            revision=args.revision,
            progress=lambda line: print(f"[bench] {line}", file=sys.stderr),
        )
    except KeyError as exc:
        raise SystemExit(f"bench run: {exc.args[0]}") from exc
    if args.out:
        write_snapshot(payload, args.out)
        print(
            f"[bench] wrote {len(payload['cells'])} cell(s) to {args.out}",
            file=sys.stderr,
        )
    if args.json or not args.out:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from .config import ServeConfig
    from .errors import ConfigError, DistError, VerificationError
    from .serve import ServeService

    try:
        config = ServeConfig.from_args(args)
    except ConfigError as exc:
        raise SystemExit(f"serve: {exc}") from exc
    try:
        service = ServeService(
            config,
            log=lambda message: print(f"[serve] {message}", file=sys.stderr),
            checkpoint=args.checkpoint,
        ).start()
    except (ConfigError, DistError, VerificationError, OSError) as exc:
        raise SystemExit(f"serve: {exc}") from exc
    try:
        host, port = service.http_address
        dist_host, dist_port = service.dist_address
        print(
            f"serve: queries on http://{host}:{port} "
            f"(try: curl -s http://{host}:{port}/v1/status), "
            f"workers connect to {dist_host}:{dist_port}",
            file=sys.stderr,
        )
        while service.alive:
            _time.sleep(0.5)
    except KeyboardInterrupt:
        print("serve: shutting down", file=sys.stderr)
    finally:
        service.close()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .dist import Supervisor, parse_address, resolve_spawn, run_workers
    from .errors import DistError

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be a positive integer, got {args.jobs}")
    log = lambda message: print(message, file=sys.stderr)  # noqa: E731
    try:
        host, port = parse_address(args.connect)
        if args.spawn is not None:
            # Supervised fleet: keep N workers alive across crashes.
            workers = resolve_spawn(args.spawn)
            report = Supervisor(
                host,
                port,
                workers=workers,
                retry=args.retry,
                max_respawns=args.max_respawns,
                log=log,
            ).run()
            print(report.describe())
            return 0 if report.clean else 1
        reports = run_workers(
            host,
            port,
            jobs=args.jobs,
            retry=args.retry,
            log=log,
        )
    except DistError as exc:
        raise SystemExit(f"worker: {exc}") from exc
    for report in reports:
        print(report.describe())
    return 0


def _render_dist_status(address: str, status: dict) -> str:
    """The human rendering of one coordinator status snapshot."""
    lines = [
        f"coordinator {address}: "
        f"{status['completed']}/{status['jobs']} jobs done, "
        f"queue depth {status['queue_depth']}, "
        f"{status['leases']} lease(s), {status['requeues']} requeue(s), "
        f"{status.get('respawns', 0)} respawn(s), "
        f"{status.get('replayed', 0)} replayed"
        + (
            " [cost-scaled leases]"
            if status.get("lease_scaling")
            else ""
        ),
        f"  store seeding {'on' if status['seed_store'] else 'off'}, "
        f"remote loads {'on' if status['remote_loads'] else 'off'}: "
        f"{status['rows_seeded']} row(s) seeded, "
        f"{status['loads_served']} load(s) served",
    ]
    if status.get("reductions_total"):
        lines.append(
            f"  reductions: {status['reductions_done']}"
            f"/{status['reductions_total']} fired"
        )
    for worker in status["workers"]:
        lines.append(
            f"  worker {worker['worker']}: {worker['completed']} done, "
            f"{worker['failed']} failed, "
            f"{worker['jobs_per_minute']:.1f} jobs/min, "
            f"{worker['seeded_rows']} seeded, "
            f"{worker['loads_served']} served, "
            f"idle {worker['idle']:.1f}s"
        )
    return "\n".join(lines)


def cmd_dist(args: argparse.Namespace) -> int:
    from .dist import probe_status, render_status_json, watch_status
    from .errors import DistError

    # argparse restricts action to "status" already.
    try:
        if args.watch is not None:
            render = (
                None
                if args.json
                else lambda status: _render_dist_status(args.address, status)
            )
            watch_status(
                args.address,
                interval=args.watch,
                count=args.count,
                render=render,
                timeout=args.timeout,
            )
            return 0
        status = probe_status(args.address, timeout=args.timeout)
    except DistError as exc:
        raise SystemExit(f"dist status: {exc}") from exc
    if args.json:
        print(render_status_json(status, indent=2))
        return 0
    print(_render_dist_status(args.address, status))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import describe_summary, load_trace, summarize_trace

    # argparse restricts action to "summary" already.
    try:
        events = load_trace(args.file)
    except OSError as exc:
        raise SystemExit(f"trace summary: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"trace summary: {args.file}: not a trace file "
                         f"({exc})") from exc
    summary = summarize_trace(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(describe_summary(summary, top=args.top))
    return 0


def _store_for_cli(args: argparse.Namespace, mode: str):
    """The global store, reconfigured for this invocation when needed.

    ``store`` subcommands should work on an explicit ``--path`` (or the
    ``REPRO_STORE_PATH`` default) even when ``REPRO_STORE`` is unset, so
    the management CLI never depends on the tiering switch.
    """
    from . import store as store_pkg

    path = args.path or store_pkg.RESULT_STORE.path
    return store_pkg.configure(path=path, mode=mode)


#: ``store`` actions that operate on an *existing* file.  Opening them in
#: rw mode would otherwise create an empty schema-initialised database as
#: a side effect, making a typo'd ``--path`` report a vacuously healthy
#: store.  (``stats`` reports a missing file explicitly; ``probe`` is
#: expected to create/populate the store.)
_STORE_ACTIONS_NEED_FILE = ("vacuum", "clear", "export", "integrity", "prune")


def cmd_store(args: argparse.Namespace) -> int:
    import os

    from . import store as store_pkg
    from .errors import StoreError

    action = args.action
    target = args.path or store_pkg.RESULT_STORE.path
    if action in _STORE_ACTIONS_NEED_FILE and not os.path.exists(target):
        raise SystemExit(f"store {action}: no store file at {target}")
    try:
        if action == "stats":
            store = _store_for_cli(args, "ro")
            info = store.db_stats()
            session = store.stats()
            if args.json:
                print(
                    json.dumps(
                        {"db": info, "session": session.to_dict()}, indent=2
                    )
                )
            else:
                print(
                    f"store {info['path']} (mode {info['mode']}): "
                    f"{info['entries']} entries, {info['file_bytes']} bytes, "
                    f"{info['stale_entries']} stale"
                )
                for row in info["kernels"]:
                    marker = " [stale]" if row["stale"] else ""
                    print(
                        f"  {row['kernel']} @ {row['version']}: "
                        f"{row['entries']} entries, "
                        f"{row['value_bytes']} bytes{marker}"
                    )
        elif action == "probe":
            from .engine.diagnostics import store_probe

            _store_for_cli(args, "rw")
            report = store_probe(n=args.n, passes=args.passes)
            if args.json:
                print(json.dumps(report.to_dict(), indent=2))
            else:
                print(report.describe())
        elif action == "vacuum":
            # Import the kernel-bearing packages so every kernel version
            # is registered before staleness is judged.
            from . import analysis  # noqa: F401

            store = _store_for_cli(args, "rw")
            result = store.vacuum()
            print(
                f"vacuum: deleted {result['deleted']} stale entries, "
                f"{result['remaining']} remain"
            )
        elif action == "prune":
            if args.max_age_days is None and args.max_size_mb is None:
                raise SystemExit(
                    "store prune requires --max-age-days and/or --max-size-mb"
                )
            store = _store_for_cli(args, "rw")
            result = store.prune(
                max_age_days=args.max_age_days,
                max_size_mb=args.max_size_mb,
            )
            print(
                f"prune: evicted {result['deleted_age']} by age, "
                f"{result['deleted_size']} by size; "
                f"{result['remaining']} remain "
                f"({result['file_bytes']} bytes)"
            )
        elif action == "clear":
            store = _store_for_cli(args, "rw")
            removed = store.clear()
            print(f"clear: removed {removed} entries")
        elif action == "export":
            if not args.out:
                raise SystemExit("store export requires --out PATH")
            store = _store_for_cli(args, "ro")
            copied = store.export(args.out)
            print(f"export: copied {copied} entries to {args.out}")
        elif action == "integrity":
            store = _store_for_cli(args, "rw")
            report = store.integrity_report()
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                status = "OK" if report["ok"] else "CORRUPT"
                print(
                    f"integrity: {status} — {report['entries']} entries, "
                    f"{report['corrupt']} corrupt, "
                    f"quick_check={report['quick_check']}"
                )
            return 0 if report["ok"] else 1
        else:  # pragma: no cover - argparse restricts choices
            raise SystemExit(f"unknown store action {action!r}")
    except StoreError as exc:
        raise SystemExit(f"store {action}: {exc}") from exc
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="K-set agreement bounds in round-based models "
        "(Shimi & Castañeda, PODC 2020) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", required=True, help="graph family name")
        p.add_argument("--n", type=int, required=True, help="process count")
        p.add_argument("--centers", help="for union_of_stars: e.g. 0,1")
        p.add_argument(
            "--symmetric", action="store_true",
            help="use the symmetric closure of the generator",
        )

    def add_backend_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=("auto", "reference", "bitset", "sat", "check"),
            default=None,
            help="CSP compute backend (default: REPRO_CSP_BACKEND, else "
            "auto = bitset).  'reference' is the original pure-Python "
            "search, 'bitset' the bitmask re-encoding, 'sat' a CNF "
            "encoding via python-sat (optional dependency), 'check' runs "
            "every available backend and asserts identical verdicts",
        )

    p_bounds = sub.add_parser("bounds", help="print the paper's bound report")
    add_model_args(p_bounds)
    p_bounds.add_argument("--rounds", type=int, default=1)
    p_bounds.set_defaults(func=cmd_bounds)

    p_search = sub.add_parser(
        "search", help="exact one-round solvability (CSP search)"
    )
    add_model_args(p_search)
    p_search.add_argument("--k", type=int, required=True)
    p_search.add_argument(
        "--full", action="store_true",
        help="search over the fully enumerated model (small n only)",
    )
    p_search.add_argument("--budget", type=int, default=1 << 12)
    add_backend_arg(p_search)
    p_search.set_defaults(func=cmd_search)

    p_verify = sub.add_parser(
        "verify", help="exhaustively verify FloodMin at a given k"
    )
    add_model_args(p_verify)
    p_verify.add_argument("--k", type=int, required=True)
    p_verify.add_argument("--rounds", type=int, default=1)
    p_verify.add_argument("--samples", type=int, default=5)
    p_verify.set_defaults(func=cmd_verify)

    def add_distributed_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--distributed", metavar="HOST:PORT",
            help="serve the jobs from a TCP coordinator bound here instead "
            "of a local pool; run 'python -m repro worker --connect "
            "HOST:PORT' (any machine) to execute them.  ':PORT' binds "
            "127.0.0.1; bind 0.0.0.0:PORT explicitly for remote workers "
            "(trusted networks only — the job protocol is pickled frames)",
        )
        p.add_argument(
            "--seed-store", choices=("on", "off"), default="on",
            help="with --distributed and an active result store: stream "
            "the store's relevant rows to each connecting worker at "
            "handshake and answer worker store misses over the wire, so "
            "remote hosts start warm without a shared filesystem "
            "(default: on)",
        )

    def add_trace_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", metavar="FILE",
            help="record spans from every layer (kernel calls with cache-"
            "tier attribution, store flushes, job lifecycle, coordinator "
            "events — including remote workers' spans, shipped home with "
            "their results) into a Chrome trace_event JSON file; open it "
            "in Perfetto, or run 'python -m repro trace summary FILE'.  "
            "REPRO_TRACE=FILE does the same for any command",
        )

    p_exp = sub.add_parser("experiments", help="run experiment tables")
    p_exp.add_argument("ids", nargs="*", help="e.g. E1 E6 (default: all)")
    p_exp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment batch (default: 1)",
    )
    add_distributed_arg(p_exp)
    add_trace_arg(p_exp)
    p_exp.set_defaults(func=cmd_experiments)

    p_serve = sub.add_parser(
        "serve",
        help="persistent solvability query service: answer HTTP/JSON "
        "queries from banked results synchronously, enqueue cold ones "
        "on an embedded coordinator and poll them by job id",
    )
    p_serve.add_argument(
        "--http", metavar="HOST:PORT", default="127.0.0.1:8080",
        help="HTTP listen address for queries (':PORT' binds 127.0.0.1; "
        "default: 127.0.0.1:8080)",
    )
    p_serve.add_argument(
        "--distributed", metavar="HOST:PORT", default=None,
        help="also publish the coordinator's worker port here so external "
        "'python -m repro worker' processes can serve cold queries "
        "(default: an ephemeral localhost port)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="in-process worker threads answering cold queries "
        "(default: 1; 0 relies entirely on external workers)",
    )
    p_serve.add_argument(
        "--budget", type=int, default=1 << 12,
        help="default enumeration budget for queries that omit one",
    )
    p_serve.add_argument(
        "--store", choices=("off", "ro", "rw"), default="off",
        help="persistent result store mode for the service process "
        "(default: off — queries are then answered from the in-memory "
        "kernel cache only)",
    )
    p_serve.add_argument(
        "--store-path", metavar="FILE", default=None,
        help="store database path (default: the store's own default)",
    )
    p_serve.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="snapshot the embedded coordinator's in-flight jobs here; a "
        "restarted service started with the same path resubmits any "
        "submitted-but-unfinished jobs automatically (run-state only — "
        "not part of the config fingerprint)",
    )
    add_backend_arg(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="serve a distributed coordinator: pull jobs, execute them "
        "through the local cache/store tiers, stream results back",
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (the --distributed value of the "
        "sweep/experiments run being served)",
    )
    p_worker.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to run against the coordinator (default: 1)",
    )
    p_worker.add_argument(
        "--retry", type=float, default=10.0,
        help="seconds to keep retrying the initial connection, so workers "
        "may be started before the coordinator (default: 10)",
    )
    p_worker.add_argument(
        "--spawn", metavar="auto|N", default=None,
        help="supervised mode: keep N worker processes ('auto' sizes to "
        "this machine's cores) alive against the coordinator, respawning "
        "any that die without reporting (SIGKILL, OOM) after a jittered "
        "backoff; respawned workers reconnect warm via the incremental "
        "store seed digest.  Supersedes --jobs",
    )
    p_worker.add_argument(
        "--max-respawns", type=int, default=3,
        help="with --spawn: restart budget per worker slot before the "
        "slot is abandoned with an error (default: 3)",
    )
    p_worker.set_defaults(func=cmd_worker)

    p_dist = sub.add_parser(
        "dist",
        help="inspect distributed runs: 'status HOST:PORT' probes a live "
        "coordinator for queue depth, leases, per-worker throughput and "
        "store seeding counters",
    )
    p_dist.add_argument("action", choices=("status",))
    p_dist.add_argument(
        "address", metavar="HOST:PORT",
        help="the coordinator's --distributed address",
    )
    p_dist.add_argument(
        "--timeout", type=float, default=5.0,
        help="seconds to wait for the probe reply (default: 5)",
    )
    p_dist.add_argument(
        "--watch", type=float, default=None, metavar="N",
        help="poll every N seconds instead of probing once, clearing and "
        "reprinting the panel, until the coordinator goes away (the run "
        "finished); with --json, emits one JSON object per poll line",
    )
    p_dist.add_argument(
        "--count", type=int, default=None, metavar="K",
        help="with --watch: stop after K polls (default: until the "
        "coordinator goes away)",
    )
    p_dist.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_dist.set_defaults(func=cmd_dist)

    p_trace = sub.add_parser(
        "trace",
        help="inspect recorded traces: 'summary FILE' aggregates a Chrome "
        "trace written by --trace / REPRO_TRACE (top kernels by self-time, "
        "cache-tier hit rates, per-worker utilization, stragglers)",
    )
    p_trace.add_argument("action", choices=("summary",))
    p_trace.add_argument(
        "file", help="trace file written by --trace FILE / REPRO_TRACE=FILE"
    )
    p_trace.add_argument(
        "--top", type=int, default=8,
        help="kernels to list in the self-time table (default: 8)",
    )
    p_trace.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_trace.set_defaults(func=cmd_trace)

    p_cache = sub.add_parser(
        "cache-stats",
        help="probe the kernel cache: cold vs warm pass timings and hit rates",
    )
    p_cache.add_argument(
        "--n", type=int, default=5, help="process count of the probe families"
    )
    p_cache.add_argument(
        "--passes", type=int, default=3, help="workload passes (first is cold)"
    )
    p_cache.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_cache.set_defaults(func=cmd_cache_stats)

    p_sweep = sub.add_parser(
        "sweep",
        help="exhaustive solvability sweep, sharded by isomorphism class "
        "(resumable against a persistent store)",
    )
    p_sweep.add_argument(
        "--n", type=int, default=4, help="process count (default: 4)"
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the shards"
    )
    p_sweep.add_argument(
        "--limit", type=int, default=None,
        help="only run the first K isomorphism classes (incremental runs)",
    )
    p_sweep.add_argument(
        "--budget", type=int, default=1 << 12,
        help="cap on each shard's fully enumerated model",
    )
    p_sweep.add_argument(
        "--split-threshold", type=int, default=1 << 11,
        help="estimated enumerated-model size at which a class's shard "
        "is split into per-k sub-shards that persist, resume, and "
        "distribute independently (default: 2048 — at n=4 only the "
        "sparse giants split)",
    )
    p_sweep.add_argument(
        "--subshard", choices=("on", "off"), default="on",
        help="dynamic sub-shard scheduling: 'off' forces every class "
        "onto the monolithic one-job-per-class path (the reference the "
        "equivalence tests compare against; default: on)",
    )
    p_sweep.add_argument(
        "--cost-model", choices=("static", "observed"), default="static",
        help="per-class cost estimator feeding job ordering and split "
        "decisions: 'static' uses the 2^missing proxy, 'observed' "
        "prefers wall-clock timings banked by earlier sweeps and bench "
        "runs, falling back to static for unseen classes (default: "
        "static)",
    )
    p_sweep.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="snapshot queue progress (completed job names, requeues) "
        "atomically to FILE as shards land, alongside the store; a "
        "killed sweep resumes from it with --resume-from",
    )
    p_sweep.add_argument(
        "--resume-from", metavar="FILE", default=None, dest="resume_from",
        help="rehydrate the remaining plan from a checkpoint written by "
        "an earlier --checkpoint run: completed jobs replay as warm "
        "store hits (zero kernel recompute), only the remainder is "
        "scheduled.  Pass the same FILE to both flags for a "
        "crash-restart loop",
    )
    p_sweep.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    add_backend_arg(p_sweep)
    add_distributed_arg(p_sweep)
    add_trace_arg(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_bench = sub.add_parser(
        "bench",
        help="variance-aware benchmark matrix: run scenarios, compare "
        "trajectory points, list the matrix",
    )
    p_bench.add_argument(
        "action", choices=("run", "compare", "list"),
    )
    p_bench.add_argument(
        "old", nargs="?", default=None,
        help="compare: the older trajectory point (JSON file)",
    )
    p_bench.add_argument(
        "new", nargs="?", default=None,
        help="compare: the newer trajectory point (JSON file)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="run/list: restrict to each scenario's quick cells and use "
        "the reduced repeat budget (what CI's bench-smoke job runs)",
    )
    p_bench.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run/list: restrict to this scenario (repeatable)",
    )
    p_bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="run: write the snapshot JSON here (e.g. "
        "benchmarks/BENCH_8.json); without it the payload prints to "
        "stdout",
    )
    p_bench.add_argument(
        "--revision", default="BENCH_8",
        help="run: revision label stamped into the snapshot "
        "(default: BENCH_8)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=None,
        help="run: cap the adaptive repeat budget at this many samples",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=25.0, metavar="PCT",
        help="compare: median slowdown headroom in percent before a "
        "cell counts as a regression (default: 25)",
    )
    p_bench.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_bench.set_defaults(func=cmd_bench)

    p_store = sub.add_parser(
        "store",
        help="manage the persistent result store (REPRO_STORE / "
        "REPRO_STORE_PATH)",
    )
    p_store.add_argument(
        "action",
        choices=(
            "stats", "probe", "vacuum", "clear", "export", "integrity",
            "prune",
        ),
    )
    p_store.add_argument(
        "--path", help="store file (default: REPRO_STORE_PATH or "
        ".repro-store.sqlite)",
    )
    p_store.add_argument(
        "--out", help="destination file for 'export'",
    )
    p_store.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune: evict rows not used (read or written) in this many days",
    )
    p_store.add_argument(
        "--max-size-mb", type=float, default=None,
        help="prune: evict least-recently-used rows until the file fits",
    )
    p_store.add_argument(
        "--n", type=int, default=6,
        help="probe: process count (6 makes the cold pass heavy enough "
        "that the warm-start speedup is unambiguous)",
    )
    p_store.add_argument(
        "--passes", type=int, default=2, help="probe: workload passes"
    )
    p_store.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_store.set_defaults(func=cmd_store)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
