"""Query routing of the solvability service.

:class:`QueryApp` is the application half of ``python -m repro serve``:
it maps HTTP routes onto the sweep kernels and the persistent
coordinator.  The split of responsibilities is strict —

* anything *resident* (kernel memo cache or persistent store, via the
  kernels' ``peek``) is answered synchronously with ``"cached": true``;
* anything else is enqueued on the coordinator as an ordinary engine
  job and answered ``202`` with a job id for polling;
* no route ever blocks on a computation.

Both :meth:`QueryApp.handle` (driven by the HTTP frontend) and
:meth:`QueryApp.on_complete` (the coordinator's completion callback) run
on the coordinator's single event-loop thread, so the job registry needs
no locking for correctness; the lock below only guards against external
readers (``ServeService.describe`` and tests poking at state).

Routes::

    POST /v1/solvability  {"family", "n", "k", "centers"?, "budget"?,
                           "backend"?}
    POST /v1/bounds       {"family", "n", "centers"?}
    GET  /v1/jobs/<id>
    GET  /v1/status       (coordinator status_snapshot + a "serve" block)
    GET  /v1/metrics      (the process-wide MetricsRegistry snapshot)

Verdicts answered here are definitionally identical to the serial
reference: ``/v1/solvability`` runs (or recalls) the same
``solvability_subshard`` kernel the sweeps execute, whose body is
``decide_one_round_solvability`` over the full closed-above model.
"""

from __future__ import annotations

import threading

from ..analysis.sweeps import DEFAULT_BUDGET, _class_bounds, _subshard_solvable
from ..engine.batch import Job, JobFailure
from ..engine.canonical import iso_key
from ..errors import DistError, GraphError, VerificationError
from ..graphs import build_family
from ..obs.metrics import METRICS
from ..verification.backends import resolve_backend

__all__ = ["QueryApp"]


class _BadRequest(Exception):
    """Internal: a client error that should surface as an HTTP 400."""


def _int_field(query: dict, name: str, default=None) -> int:
    value = query.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _BadRequest(f"field {name!r} must be an integer")
    return value


class QueryApp:
    """Route solvability queries between banked state and the queue."""

    def __init__(self, *, budget: int = DEFAULT_BUDGET,
                 backend: str | None = None, metrics=METRICS):
        if budget < 1:
            from ..errors import ConfigError

            raise ConfigError(f"budget must be positive, got {budget}")
        self._budget = int(budget)
        self._backend = resolve_backend(backend)  # fail fast on unknown
        self._metrics = metrics
        self._coordinator = None
        self._lock = threading.Lock()
        self._jobs: dict[str, dict] = {}
        self._key_of: dict[str, tuple] = {}
        self._by_key: dict[tuple, str] = {}
        self._by_index: dict[int, str] = {}

    def bind(self, coordinator) -> None:
        """Attach the (started) coordinator jobs are submitted to."""
        self._coordinator = coordinator

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """One request in, ``(status, JSON payload)`` out — never raises
        for client errors (those become 400/404/405/503 bodies)."""
        self._metrics.counter("serve.requests").inc()
        try:
            if path == "/v1/solvability":
                if method != "POST":
                    return self._wrong_method(method, path)
                return self._solvability(self._parse(body))
            if path == "/v1/bounds":
                if method != "POST":
                    return self._wrong_method(method, path)
                return self._bounds(self._parse(body))
            if path.startswith("/v1/jobs/"):
                if method != "GET":
                    return self._wrong_method(method, path)
                return self._job_status(path[len("/v1/jobs/"):])
            if path == "/v1/status":
                if method != "GET":
                    return self._wrong_method(method, path)
                return 200, self.status()
            if path == "/v1/metrics":
                if method != "GET":
                    return self._wrong_method(method, path)
                return 200, self._metrics.snapshot()
        except _BadRequest as exc:
            self._metrics.counter("serve.bad_requests").inc()
            return 400, {"error": str(exc)}
        return 404, {"error": f"no route {path!r}"}

    @staticmethod
    def _wrong_method(method: str, path: str) -> tuple[int, dict]:
        return 405, {"error": f"method {method} not allowed for {path}"}

    @staticmethod
    def _parse(body: bytes) -> dict:
        import json

        if not body:
            raise _BadRequest("empty body; expected a JSON object")
        try:
            query = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(query, dict):
            raise _BadRequest("body must be a JSON object")
        return query

    def _graph_of(self, query: dict):
        family = query.get("family")
        if not isinstance(family, str):
            raise _BadRequest("field 'family' must be a string")
        n = _int_field(query, "n")
        centers = query.get("centers")
        if centers is not None:
            if not (isinstance(centers, list)
                    and all(isinstance(c, int) and not isinstance(c, bool)
                            for c in centers)):
                raise _BadRequest("field 'centers' must be a list of ints")
            centers = tuple(centers)
        try:
            g = build_family(family, n, centers)
        except (GraphError, TypeError, ValueError) as exc:
            raise _BadRequest(str(exc)) from exc
        echo = {"family": family, "n": n}
        if centers is not None:
            echo["centers"] = list(centers)
        return g, n, echo

    # ------------------------------------------------------------------
    # Query routes
    # ------------------------------------------------------------------

    def _solvability(self, query: dict) -> tuple[int, dict]:
        g, n, echo = self._graph_of(query)
        k = _int_field(query, "k")
        if k < 1:
            raise _BadRequest(f"field 'k' must be >= 1, got {k}")
        budget = _int_field(query, "budget", self._budget)
        if budget < 1:
            raise _BadRequest(f"field 'budget' must be >= 1, got {budget}")
        try:
            backend = resolve_backend(query.get("backend") or self._backend)
        except VerificationError as exc:
            raise _BadRequest(str(exc)) from exc
        echo.update(k=k, budget=budget, backend=backend)
        self._metrics.counter("serve.queries").inc()
        found, value = _subshard_solvable.peek(g, n, budget, k, backend=backend)
        if found:
            self._metrics.counter("serve.hits").inc()
            return 200, {**echo, "solvable": bool(value), "cached": True}
        self._metrics.counter("serve.misses").inc()
        key = ("solvability", iso_key(g), n, budget, k, backend)
        job = Job(
            name=f"serve:solvability[{query.get('family')}/{n},k={k}]",
            fn=_subshard_solvable,
            args=(g, n, budget, k),
            kwargs={"backend": backend},
        )
        return self._enqueue("solvability", key, job, echo)

    def _bounds(self, query: dict) -> tuple[int, dict]:
        g, n, echo = self._graph_of(query)
        self._metrics.counter("serve.queries").inc()
        found, value = _class_bounds.peek(g, n)
        if found:
            self._metrics.counter("serve.hits").inc()
            lo, hi = value
            return 200, {**echo, "lower": lo, "upper": hi, "cached": True}
        self._metrics.counter("serve.misses").inc()
        key = ("bounds", iso_key(g), n)
        job = Job(
            name=f"serve:bounds[{query.get('family')}/{n}]",
            fn=_class_bounds,
            args=(g, n),
        )
        return self._enqueue("bounds", key, job, echo)

    def _enqueue(
        self, kind: str, key: tuple, job: Job, echo: dict
    ) -> tuple[int, dict]:
        coordinator = self._coordinator
        if coordinator is None or not coordinator.alive:
            self._metrics.counter("serve.unavailable").inc()
            return 503, {"error": "coordinator unavailable"}
        with self._lock:
            job_id = self._by_key.get(key)
            if job_id is not None:
                # The same question is already in flight: share its id
                # instead of paying for the computation twice.
                return 202, {"job": job_id, "state": "pending", "query": echo}
            try:
                index = coordinator.submit(job)
            except DistError:
                self._metrics.counter("serve.unavailable").inc()
                return 503, {"error": "coordinator unavailable"}
            job_id = f"job-{index}"
            self._jobs[job_id] = {
                "id": job_id, "kind": kind, "state": "pending", "query": echo,
            }
            self._key_of[job_id] = key
            self._by_key[key] = job_id
            self._by_index[index] = job_id
        self._metrics.counter("serve.enqueued").inc()
        return 202, {"job": job_id, "state": "pending", "query": echo}

    # ------------------------------------------------------------------
    # Completion + read-only routes
    # ------------------------------------------------------------------

    def on_complete(self, index: int, outcome) -> None:
        """Coordinator callback: file one finished job under its id."""
        with self._lock:
            job_id = self._by_index.pop(index, None)
            if job_id is None:
                return
            record = self._jobs[job_id]
            self._by_key.pop(self._key_of.pop(job_id, None), None)
            if isinstance(outcome, JobFailure):
                record["state"] = "failed"
                record["error"] = outcome.message
                self._metrics.counter("serve.failed").inc()
            else:
                record["state"] = "done"
                value = outcome.value
                if record["kind"] == "bounds":
                    lo, hi = value
                    record["result"] = {"lower": lo, "upper": hi}
                else:
                    record["result"] = {"solvable": bool(value)}
                record["elapsed"] = outcome.elapsed
                self._metrics.counter("serve.completed").inc()

    def _job_status(self, job_id: str) -> tuple[int, dict]:
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            return 200, dict(record)

    def status(self) -> dict:
        """The ``/v1/status`` payload.

        Same shape as ``python -m repro dist status --json`` — it *is*
        the coordinator's ``status_snapshot()``, the dict the
        ``dist_status`` stats provider feeds into
        ``MetricsRegistry.snapshot()`` — plus a ``"serve"`` block with
        the job registry (dict payloads grow keys, never reshape).
        """
        states = {"pending": 0, "done": 0, "failed": 0}
        with self._lock:
            for record in self._jobs.values():
                states[record["state"]] += 1
        payload: dict = {}
        coordinator = self._coordinator
        if coordinator is not None:
            payload.update(coordinator.status_snapshot())
        payload["serve"] = {
            "backend": self._backend,
            "budget": self._budget,
            "jobs": states,
        }
        return payload
