"""Minimal HTTP/1.1 front end for the coordinator's event loop.

:class:`HttpConnection` implements the coordinator's *frontend handler*
contract — ``feed(data: bytes) -> bytes`` plus a ``done`` flag — so the
query service rides the same ``selectors`` loop as the worker protocol
without the coordinator knowing anything about HTTP.  The dialect is
deliberately tiny: one request per connection (every response carries
``Connection: close``), JSON bodies both ways, no chunked encoding, no
keep-alive.  Query clients poll; they do not stream.

Robustness over features: a request that never finishes its header block
within :data:`MAX_HEADER_BYTES` is answered ``431``, a declared body over
:data:`MAX_BODY_BYTES` is answered ``413``, and anything unparsable is a
``400`` — all without raising into the event loop, which would drop the
connection without a response.  Application exceptions become ``500``
bodies for the same reason.
"""

from __future__ import annotations

import json

__all__ = ["HttpConnection", "MAX_HEADER_BYTES", "MAX_BODY_BYTES"]

#: Cap on the request line + header block; past this without a blank line
#: the request is rejected (431) rather than buffered forever.
MAX_HEADER_BYTES = 64 * 1024

#: Cap on a declared request body.  Queries are a few hundred bytes of
#: JSON; anything near this cap is a mistake or an attack.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """Split a raw header block into ``(method, target, headers)``.

    Raises ``ValueError`` with a client-safe message on anything
    malformed; header names are lower-cased for case-insensitive lookup.
    """
    lines = head.decode("iso-8859-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


class HttpConnection:
    """One HTTP/1.1 connection, fed by the coordinator's event loop.

    ``app`` is anything with ``handle(method, path, body) -> (status,
    payload)`` where ``payload`` is JSON-serialisable; see
    :class:`~repro.serve.app.QueryApp`.  The handler is synchronous by
    design — every route either answers from banked state or enqueues a
    job and answers with its id, so no response ever waits on a
    computation.
    """

    __slots__ = ("_app", "_buf", "done")

    def __init__(self, app):
        self._app = app
        self._buf = bytearray()
        self.done = False

    def feed(self, data: bytes) -> bytes:
        if self.done:
            return b""  # trailing bytes after our response: ignored
        self._buf += data
        head_end = self._buf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(self._buf) > MAX_HEADER_BYTES:
                return self._finish(
                    431, {"error": "request header block too large"}
                )
            return b""
        try:
            method, target, headers = _parse_head(bytes(self._buf[:head_end]))
        except ValueError as exc:
            return self._finish(400, {"error": str(exc)})
        try:
            length = int(headers.get("content-length", "0"))
            if length < 0:
                raise ValueError
        except ValueError:
            return self._finish(400, {"error": "invalid Content-Length"})
        if length > MAX_BODY_BYTES:
            return self._finish(
                413, {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"}
            )
        body_start = head_end + 4
        if len(self._buf) < body_start + length:
            return b""  # body still in flight
        body = bytes(self._buf[body_start : body_start + length])
        path = target.split("?", 1)[0]
        try:
            status, payload = self._app.handle(method, path, body)
        except Exception as exc:  # route bugs must not kill the loop
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        return self._finish(status, payload)

    def _finish(self, status: int, payload: object) -> bytes:
        self.done = True
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("ascii") + body
