"""Solvability-as-a-service: the HTTP query front end.

``python -m repro serve`` keeps a warm process resident — kernel memo
cache, persistent store, and a pool of workers — and answers solvability
questions over HTTP/JSON.  Anything already banked is served
synchronously (sub-millisecond, ``"cached": true``); anything cold is
enqueued on the persistent coordinator and polled by job id.  See
:mod:`repro.serve.app` for the routes and :mod:`repro.serve.service`
for the assembly; configuration is a
:class:`~repro.config.ServeConfig`.

Quickstart (test client)::

    from repro.config import ServeConfig
    from repro.serve import ServeService

    with ServeService(ServeConfig.builder().workers(2).build()) as svc:
        host, port = svc.http_address
        # POST {"family": "cycle", "n": 4, "k": 2} to /v1/solvability
"""

from __future__ import annotations

from .app import QueryApp
from .http import HttpConnection
from .service import ServeService

__all__ = ["HttpConnection", "QueryApp", "ServeService"]
