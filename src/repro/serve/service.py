"""Service assembly: persistent coordinator + HTTP frontend + workers.

:class:`ServeService` wires the pieces of ``python -m repro serve``
together from one :class:`~repro.config.ServeConfig`:

* a :class:`~repro.dist.coordinator.Coordinator` in *persistent* mode
  (jobs arrive via :meth:`~repro.dist.coordinator.Coordinator.submit`,
  the batch never "finishes"), whose event loop also owns the HTTP
  listener as a frontend;
* a :class:`~repro.serve.app.QueryApp` routing queries between banked
  state and the queue;
* ``config.workers`` in-thread workers speaking the ordinary worker
  protocol over loopback.  They are detected as *local* at handshake
  (same host + pid), so they share the process's kernel cache and store
  tiers directly and nothing is seeded or double-absorbed.  External
  workers can additionally join via the published ``--distributed``
  address, exactly like ``python -m repro worker``.

Closing the service broadcasts ``done`` to every idle worker (the
persistent-close path of the coordinator), so in-thread workers unwind
through their normal farewell and the store flushes once, at the single
writer.
"""

from __future__ import annotations

import threading

from ..config import ServeConfig
from ..dist.coordinator import Coordinator
from ..dist.executor import parse_address
from ..dist.worker import run_worker
from ..errors import DistError
from .app import QueryApp
from .http import HttpConnection

__all__ = ["ServeService"]


class ServeService:
    """A running solvability query service (context manager).

    ``with ServeService(config) as service:`` starts everything and
    tears it down on exit; ``service.http_address`` is the bound
    ``(host, port)`` of the HTTP listener (query it with plain
    ``urllib``/``curl``), ``service.dist_address`` the worker port.
    """

    def __init__(self, config: ServeConfig | None = None, *, log=None):
        self._config = config if config is not None else ServeConfig()
        self._log = log or (lambda message: None)
        self._app: QueryApp | None = None
        self._coordinator: Coordinator | None = None
        self._workers: list[threading.Thread] = []
        self._started = False

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def app(self) -> QueryApp:
        if self._app is None:
            raise DistError("service not started")
        return self._app

    @property
    def http_address(self) -> tuple[str, int]:
        if self._coordinator is None:
            raise DistError("service not started")
        return tuple(self._coordinator.frontend_addresses[0])

    @property
    def dist_address(self) -> tuple[str, int]:
        if self._coordinator is None:
            raise DistError("service not started")
        return self._coordinator.address

    @property
    def alive(self) -> bool:
        return self._coordinator is not None and self._coordinator.alive

    def start(self) -> "ServeService":
        if self._started:
            raise DistError("service already started")
        config = self._config
        if config.store.mode != "off":
            # Only touch the global store when the config asks for one;
            # an embedding process (or test) may have configured its own.
            config.store.apply()
        app = QueryApp(budget=config.budget, backend=config.backend)
        http_host, http_port = parse_address(config.http)
        if config.distributed is not None:
            dist_host, dist_port = parse_address(config.distributed)
        else:
            dist_host, dist_port = "127.0.0.1", 0
        coordinator = Coordinator(
            [],
            host=dist_host,
            port=dist_port,
            persistent=True,
            lease_timeout=config.lease_timeout,
            wait_delay=config.wait_delay,
            frontends=[(http_host, http_port, lambda: HttpConnection(app))],
            on_complete=app.on_complete,
            log=self._log,
        )
        host, port = coordinator.start()
        app.bind(coordinator)
        self._app = app
        self._coordinator = coordinator
        self._started = True
        for i in range(config.workers):
            thread = threading.Thread(
                target=self._worker_main,
                args=(host, port, f"serve-worker-{i}"),
                name=f"serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        http = self.http_address
        self._log(
            f"serving queries on http://{http[0]}:{http[1]} "
            f"(workers at {host}:{port}, {config.workers} in-thread)"
        )
        return self

    def _worker_main(self, host: str, port: int, worker_id: str) -> None:
        try:
            run_worker(host, port, worker_id=worker_id, retry=5.0)
        except DistError as exc:  # pragma: no cover - startup race only
            self._log(f"{worker_id}: {exc}")

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()
        for thread in self._workers:
            thread.join(timeout=10.0)
        self._workers = []

    def __enter__(self) -> "ServeService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
