"""Service assembly: persistent coordinator + HTTP frontend + workers.

:class:`ServeService` wires the pieces of ``python -m repro serve``
together from one :class:`~repro.config.ServeConfig`:

* a :class:`~repro.dist.coordinator.Coordinator` in *persistent* mode
  (jobs arrive via :meth:`~repro.dist.coordinator.Coordinator.submit`,
  the batch never "finishes"), whose event loop also owns the HTTP
  listener as a frontend;
* a :class:`~repro.serve.app.QueryApp` routing queries between banked
  state and the queue;
* ``config.workers`` in-thread workers speaking the ordinary worker
  protocol over loopback.  They are detected as *local* at handshake
  (same host + pid), so they share the process's kernel cache and store
  tiers directly and nothing is seeded or double-absorbed.  External
  workers can additionally join via the published ``--distributed``
  address, exactly like ``python -m repro worker``.

Closing the service broadcasts ``done`` to every idle worker (the
persistent-close path of the coordinator), so in-thread workers unwind
through their normal farewell and the store flushes once, at the single
writer.

``checkpoint=PATH`` makes the service crash-survivable: the embedded
coordinator snapshots its submitted-but-unfinished jobs to ``PATH``
(atomically, throttled — see :mod:`repro.dist.checkpoint`), and a
restarted service given the same path resubmits them before accepting
new queries.  Results banked before the crash are unaffected either way
(they live in the store); the checkpoint recovers only the queue.
Checkpointing is run-state, not service identity, so it rides a
constructor keyword rather than :class:`~repro.config.ServeConfig`.
"""

from __future__ import annotations

import os
import threading

from ..config import ServeConfig
from ..dist.checkpoint import CheckpointWriter, load_checkpoint
from ..dist.coordinator import Coordinator
from ..dist.executor import parse_address
from ..dist.worker import run_worker
from ..errors import DistError
from .app import QueryApp
from .http import HttpConnection

__all__ = ["ServeService"]


class ServeService:
    """A running solvability query service (context manager).

    ``with ServeService(config) as service:`` starts everything and
    tears it down on exit; ``service.http_address`` is the bound
    ``(host, port)`` of the HTTP listener (query it with plain
    ``urllib``/``curl``), ``service.dist_address`` the worker port.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        log=None,
        checkpoint: str | None = None,
    ):
        self._config = config if config is not None else ServeConfig()
        self._log = log or (lambda message: None)
        self._checkpoint_path = checkpoint
        self._app: QueryApp | None = None
        self._coordinator: Coordinator | None = None
        self._workers: list[threading.Thread] = []
        self._started = False

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def app(self) -> QueryApp:
        if self._app is None:
            raise DistError("service not started")
        return self._app

    @property
    def http_address(self) -> tuple[str, int]:
        if self._coordinator is None:
            raise DistError("service not started")
        return tuple(self._coordinator.frontend_addresses[0])

    @property
    def dist_address(self) -> tuple[str, int]:
        if self._coordinator is None:
            raise DistError("service not started")
        return self._coordinator.address

    @property
    def alive(self) -> bool:
        return self._coordinator is not None and self._coordinator.alive

    def start(self) -> "ServeService":
        if self._started:
            raise DistError("service already started")
        config = self._config
        if config.store.mode != "off":
            # Only touch the global store when the config asks for one;
            # an embedding process (or test) may have configured its own.
            config.store.apply()
        app = QueryApp(budget=config.budget, backend=config.backend)
        http_host, http_port = parse_address(config.http)
        if config.distributed is not None:
            dist_host, dist_port = parse_address(config.distributed)
        else:
            dist_host, dist_port = "127.0.0.1", 0
        writer = None
        resumed_jobs: tuple = ()
        if self._checkpoint_path is not None:
            fingerprint = config.fingerprint()
            if os.path.exists(self._checkpoint_path):
                state = load_checkpoint(self._checkpoint_path)
                if state.fingerprint != fingerprint:
                    raise DistError(
                        f"checkpoint {self._checkpoint_path!r} belongs to a "
                        f"service configured as {state.fingerprint}, this "
                        f"one is {fingerprint}; delete the checkpoint or "
                        "restart with the original configuration"
                    )
                resumed_jobs = state.pending_jobs
            writer = CheckpointWriter(
                path=self._checkpoint_path,
                fingerprint=fingerprint,
            )
        coordinator = Coordinator(
            [],
            host=dist_host,
            port=dist_port,
            persistent=True,
            lease_timeout=config.lease_timeout,
            wait_delay=config.wait_delay,
            frontends=[(http_host, http_port, lambda: HttpConnection(app))],
            on_complete=app.on_complete,
            checkpoint=writer,
            log=self._log,
        )
        host, port = coordinator.start()
        app.bind(coordinator)
        for job in resumed_jobs:
            # Old job ids died with the old service; clients re-query and
            # find the result banked.  The queue, not the ids, is what
            # the checkpoint recovers.
            coordinator.submit(job)
        if resumed_jobs:
            self._log(
                f"resubmitted {len(resumed_jobs)} in-flight job(s) from "
                f"checkpoint {self._checkpoint_path}"
            )
        self._app = app
        self._coordinator = coordinator
        self._started = True
        for i in range(config.workers):
            thread = threading.Thread(
                target=self._worker_main,
                args=(host, port, f"serve-worker-{i}"),
                name=f"serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        http = self.http_address
        self._log(
            f"serving queries on http://{http[0]}:{http[1]} "
            f"(workers at {host}:{port}, {config.workers} in-thread)"
        )
        return self

    def _worker_main(self, host: str, port: int, worker_id: str) -> None:
        try:
            run_worker(host, port, worker_id=worker_id, retry=5.0)
        except DistError as exc:  # pragma: no cover - startup race only
            self._log(f"{worker_id}: {exc}")

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()
        for thread in self._workers:
            thread.join(timeout=10.0)
        self._workers = []

    def __enter__(self) -> "ServeService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
