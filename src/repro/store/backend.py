"""SQLite-backed persistent result store: the kernel cache's second tier.

A :class:`ResultStore` maps ``(kernel, version, key_hash)`` to a pickled
kernel result.  ``key_hash`` is the content-addressed fingerprint of the
kernel's cache key (:mod:`repro.store.keys`), and ``version`` identifies
the kernel *implementation* — by default a hash of its source — so an
edited kernel never reads results computed by its former self.

Design points:

* **Batched writes.**  ``save`` only appends to an in-memory pending list;
  rows reach SQLite in one transaction per :meth:`flush` (triggered by the
  batch-size high-water mark, :func:`run_batch` progress, or exit).  The
  pending list doubles as a read-through overlay so an unflushed row is
  already visible to :meth:`load`.
* **Fork safety / single writer.**  Connections are opened lazily and
  keyed on the owning PID; a worker forked by
  :func:`~repro.engine.batch.run_batch` never touches the parent's
  connection.  Workers — daemonic pool processes, and any process with
  :attr:`ResultStore.worker_mode` set (distributed workers) — never
  auto-flush: the batch driver or coordinator drains their pending rows
  back to the parent with the job results, which is how parallel and
  distributed runs populate one store file without concurrent writers.
* **Last-used tracking.**  Every row records when it last served a hit
  (``last_used``), updated in the same flush transactions as new rows;
  :meth:`prune` uses it to evict cold rows by age and to shrink the file
  under a size cap, so long-lived shared store files stay bounded.
* **Integrity.**  Every row carries a SHA-256 checksum of its value blob;
  corrupt or unreadable rows are treated as misses and deleted on sight,
  and :meth:`integrity_report` audits the whole file.

Modes: ``rw`` (read + write-back), ``ro`` (warm-start only, never writes),
``off`` (inert).  The module-level switchboard lives in
:mod:`repro.store` (``REPRO_STORE`` / ``REPRO_STORE_PATH``).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from threading import RLock

from ..errors import StoreError
from .keys import fingerprint

__all__ = [
    "MISS",
    "StoreError",
    "StoreStats",
    "StoreDelta",
    "StoreRow",
    "ResultStore",
    "MODES",
]

MODES = ("off", "ro", "rw")

#: Module-private miss sentinel: ``load`` returns it so ``None`` stays a
#: perfectly valid stored value (e.g. "no shelling order exists").
MISS = object()

#: v2 added the ``last_used`` column (prune's eviction signal); v1 files
#: are migrated in place on the first writable connection.
_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    kernel    TEXT NOT NULL,
    version   TEXT NOT NULL,
    key_hash  TEXT NOT NULL,
    value     BLOB NOT NULL,
    checksum  TEXT NOT NULL,
    created   REAL NOT NULL,
    last_used REAL,
    PRIMARY KEY (kernel, version, key_hash)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class StoreStats:
    """Immutable snapshot of store-tier activity, mergeable across workers."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    by_kernel: tuple[tuple[str, int, int, int], ...] = ()
    """Per-kernel ``(name, hits, misses, writes)`` rows, sorted by name."""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "StoreStats") -> "StoreStats":
        """Combine two snapshots (e.g. parent stats + a worker delta)."""
        merged: dict[str, list[int]] = {}
        for name, hits, misses, writes in self.by_kernel + other.by_kernel:
            row = merged.setdefault(name, [0, 0, 0])
            row[0] += hits
            row[1] += misses
            row[2] += writes
        return StoreStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writes=self.writes + other.writes,
            by_kernel=tuple(
                (name, *row) for name, row in sorted(merged.items())
            ),
        )

    def delta_since(self, baseline: "StoreStats") -> "StoreStats":
        """Activity between ``baseline`` and this snapshot."""
        base = {name: (h, m, w) for name, h, m, w in baseline.by_kernel}
        rows = []
        for name, hits, misses, writes in self.by_kernel:
            bh, bm, bw = base.get(name, (0, 0, 0))
            if hits - bh or misses - bm or writes - bw:
                rows.append((name, hits - bh, misses - bm, writes - bw))
        return StoreStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            writes=self.writes - baseline.writes,
            by_kernel=tuple(rows),
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (``store stats --json`` and CI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
            "by_kernel": [
                {"kernel": name, "hits": h, "misses": m, "writes": w}
                for name, h, m, w in self.by_kernel
            ],
        }

    def describe(self) -> str:
        lines = [
            f"result store: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.writes} writes"
        ]
        for name, hits, misses, writes in self.by_kernel:
            total = hits + misses
            rate = hits / total if total else 0.0
            lines.append(
                f"  {name}: {hits}/{total} hits ({rate:.0%}), {writes} writes"
            )
        return "\n".join(lines)


#: One pending/persisted row: ``(kernel, version, key_hash, blob, checksum,
#: created)`` — plain picklable tuples so workers can ship them to the
#: parent with their job results.  ``last_used`` starts equal to
#: ``created`` when the row reaches SQLite.
StoreRow = tuple[str, str, str, bytes, str, float]


@dataclass(frozen=True)
class StoreDelta:
    """A worker's exportable store state: rows, touches, a stats delta.

    The picklable unit the distributed workers ship to the coordinator
    for activity that happened *outside* any job (warmup, stragglers):
    per-job rows and stats already ride inside each ``JobResult``.
    """

    rows: tuple[StoreRow, ...] = ()
    stats: "StoreStats | None" = None
    touches: tuple = ()
    """Last-used refreshes (``((kernel, version, key_hash), when)``) for
    rows this worker served from the store — prune's recency signal."""


@dataclass
class _StoreCounters:
    hits: int = 0
    misses: int = 0
    writes: int = 0


def _checksum(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _in_daemon_process() -> bool:
    return multiprocessing.current_process().daemon


class ResultStore:
    """Content-addressed persistent kernel-result store over SQLite.

    Parameters
    ----------
    path:
        Database file; parent directories are created on first write.
    mode:
        ``"rw"``, ``"ro"`` or ``"off"`` (see the module docstring).
    batch_size:
        Pending-write high-water mark before an automatic :meth:`flush`
        (never triggered inside batch workers).
    """

    def __init__(self, path: str, mode: str = "off", batch_size: int = 64):
        if mode not in MODES:
            raise StoreError(f"mode must be one of {MODES}, got {mode!r}")
        if batch_size < 1:
            raise StoreError(f"batch_size must be positive, got {batch_size}")
        self.path = str(path)
        self.mode = mode
        self.batch_size = batch_size
        #: Distributed-worker switch: when True this process never writes
        #: SQLite — flush defers, rows accumulate for :meth:`drain_pending`
        #: / :meth:`export_delta`, exactly like a daemonic pool worker.
        self.worker_mode = False
        #: Incremented by a dist coordinator serving from this process:
        #: an in-process worker must then leave ``worker_mode`` off, or
        #: it would stall the coordinator's own flushes.
        self.coordinator_owned = 0
        self._pending: dict[tuple[str, str, str], StoreRow] = {}
        self._touched: dict[tuple[str, str, str], float] = {}
        self._counters: dict[str, _StoreCounters] = {}
        self._absorbed = StoreStats()
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        self._broken_pid: int | None = None
        self._lock = RLock()

    # ------------------------------------------------------------------
    # Mode switches
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.mode != "off"

    @property
    def writable(self) -> bool:
        return self.mode == "rw"

    @contextmanager
    def disabled(self):
        """Context manager: run with the store switched off."""
        previous = self.mode
        self.mode = "off"
        try:
            yield self
        finally:
            self.mode = previous

    def _defer_writes(self) -> bool:
        """True when this process must not touch SQLite (batch/dist worker)."""
        return self.worker_mode or _in_daemon_process()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection | None:
        """The per-process connection, or ``None`` when unavailable.

        ``ro`` mode against a missing file is a healthy cold start, not an
        error: every lookup simply misses.  An unreadable file (truncated,
        not SQLite, locked-out schema) likewise degrades to ``None`` —
        persistence is best-effort and must never crash a kernel call —
        and the failure is remembered per process so kernels are not
        slowed by reconnect attempts (:meth:`integrity_report` surfaces
        the breakage).
        """
        with self._lock:
            pid = os.getpid()
            if self._conn is not None and self._conn_pid == pid:
                return self._conn
            if self._broken_pid == pid:
                return None
            # A connection inherited across fork must never be used (and
            # closing it here could corrupt the parent's descriptor state,
            # so it is simply dropped).
            self._conn = None
            if not self.writable and not os.path.exists(self.path):
                return None
            try:
                if self.writable:
                    parent = os.path.dirname(os.path.abspath(self.path))
                    os.makedirs(parent, exist_ok=True)
                # check_same_thread=False: the dist coordinator flushes
                # from its connection-handler threads; every use of the
                # connection is serialised by self._lock, which is the
                # thread-safety SQLite's own check would otherwise insist
                # on seeing.
                conn = sqlite3.connect(
                    self.path, timeout=30.0, check_same_thread=False
                )
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                if self.writable:
                    conn.executescript(_SCHEMA)
                    self._migrate(conn)
                    conn.execute(
                        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                        ("schema_version", str(_SCHEMA_VERSION)),
                    )
                    conn.commit()
            except (sqlite3.Error, OSError):
                self._broken_pid = pid
                return None
            self._conn = conn
            self._conn_pid = pid
            return conn

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Bring a pre-existing file up to the current schema in place.

        v1 -> v2: add ``last_used``, seeding it from ``created`` so prune's
        age cap is immediately meaningful on migrated files.
        """
        columns = {
            row[1] for row in conn.execute("PRAGMA table_info(results)")
        }
        if "last_used" not in columns:
            conn.execute("ALTER TABLE results ADD COLUMN last_used REAL")
            conn.execute("UPDATE results SET last_used = created")

    def close(self) -> None:
        """Flush pending writes and drop the connection."""
        with self._lock:
            self.flush()
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None

    # ------------------------------------------------------------------
    # The read/write hot path
    # ------------------------------------------------------------------
    def load(self, kernel: str, version: str, key: object) -> object:
        """Return the stored value, or the :data:`MISS` sentinel.

        Misses include: store inactive, unfingerprintable key, absent row,
        and corrupt row (which is deleted so it cannot keep failing).
        """
        if not self.active:
            return MISS
        key_hash = fingerprint(key)
        if key_hash is None:
            return MISS
        with self._lock:
            counters = self._counters.setdefault(kernel, _StoreCounters())
            pending = self._pending.get((kernel, version, key_hash))
            if pending is not None:
                counters.hits += 1
                return pickle.loads(pending[3])
            conn = self._connection()
            if conn is None:
                counters.misses += 1
                return MISS
            try:
                row = conn.execute(
                    "SELECT value, checksum FROM results "
                    "WHERE kernel = ? AND version = ? AND key_hash = ?",
                    (kernel, version, key_hash),
                ).fetchone()
            except sqlite3.Error:
                row = None
            if row is None:
                counters.misses += 1
                return MISS
            blob, checksum = row
            if _checksum(blob) != checksum:
                self._drop_row(kernel, version, key_hash)
                counters.misses += 1
                return MISS
            try:
                value = pickle.loads(blob)
            except Exception:
                self._drop_row(kernel, version, key_hash)
                counters.misses += 1
                return MISS
            counters.hits += 1
            if self.writable:
                # Recency signal for prune: applied in the next flush
                # transaction; workers ship theirs home with each job
                # (:meth:`drain_touches`) since their own flush defers.
                self._touched[(kernel, version, key_hash)] = time.time()
            return value

    def save(self, kernel: str, version: str, key: object, value: object) -> None:
        """Queue a computed result for write-back (no-op unless ``rw``)."""
        if not self.writable:
            return
        key_hash = fingerprint(key)
        if key_hash is None:
            return
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable value: persistence is best-effort
        row: StoreRow = (
            kernel, version, key_hash, blob, _checksum(blob), time.time()
        )
        with self._lock:
            self._pending[(kernel, version, key_hash)] = row
            self._counters.setdefault(kernel, _StoreCounters()).writes += 1
            if len(self._pending) >= self.batch_size and not self._defer_writes():
                self.flush()

    def _drop_row(self, kernel: str, version: str, key_hash: str) -> None:
        if not self.writable:
            return
        conn = self._connection()
        if conn is None:
            return
        try:
            conn.execute(
                "DELETE FROM results "
                "WHERE kernel = ? AND version = ? AND key_hash = ?",
                (kernel, version, key_hash),
            )
            conn.commit()
        except sqlite3.Error:
            pass

    # ------------------------------------------------------------------
    # Batching / worker merge
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write all pending rows in one transaction; returns the count.

        Also applies the accumulated last-used touches in the same
        transaction.  Inside a batch/dist worker (daemonic process or
        :attr:`worker_mode`) this is a no-op that *keeps* the pending
        rows: the parent process is the only database writer, and the
        batch driver or coordinator ships the worker's rows home with its
        job results (:meth:`drain_pending` / :meth:`export_delta`).
        """
        if self._defer_writes():
            return 0
        with self._lock:
            if not self.writable:
                # Dropping unwritable pendings keeps ro/off stores bounded.
                count = len(self._pending)
                self._pending.clear()
                self._touched.clear()
                return count
            if not self._pending and not self._touched:
                return 0
            conn = self._connection()
            if conn is None:
                # Unreadable database: best-effort persistence gives up on
                # these rows rather than growing the buffer forever.
                self._pending.clear()
                self._touched.clear()
                return 0
            rows = list(self._pending.values())
            if rows:
                conn.executemany(
                    "INSERT OR REPLACE INTO results "
                    "(kernel, version, key_hash, value, checksum, created, "
                    "last_used) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [row + (row[5],) for row in rows],
                )
            # Touches for rows that are also pending were just written
            # with last_used = created; the UPDATE below refreshes them.
            if self._touched:
                conn.executemany(
                    "UPDATE results SET last_used = ? "
                    "WHERE kernel = ? AND version = ? AND key_hash = ?",
                    [
                        (when, kernel, version, key_hash)
                        for (kernel, version, key_hash), when
                        in self._touched.items()
                    ],
                )
            conn.commit()
            self._pending.clear()
            self._touched.clear()
            return len(rows)

    def drain_pending(self) -> tuple[StoreRow, ...]:
        """Remove and return the pending rows (a worker's write delta).

        The batch driver ships these back with each job result; the parent
        re-absorbs them with :meth:`absorb_rows`, so one process owns all
        database writes.
        """
        with self._lock:
            rows = tuple(self._pending.values())
            self._pending.clear()
            return rows

    def drain_touches(self) -> tuple:
        """Remove and return the accumulated last-used touches.

        A worker's flush never runs, so its touches ride home with each
        job result (alongside :meth:`drain_pending`'s rows) and the
        parent applies them via :meth:`absorb_touches` — otherwise rows
        served inside pool/dist workers would never look recently used
        and :meth:`prune` would evict the hottest shards first.
        """
        with self._lock:
            touches = tuple(self._touched.items())
            self._touched.clear()
            return touches

    def absorb_touches(self, touches) -> None:
        """Merge drained worker touches for this process's next flush."""
        if not touches or not self.writable:
            return
        with self._lock:
            for key, when in touches:
                if self._touched.get(key, 0.0) < when:
                    self._touched[key] = when

    def export_delta(self, since: "StoreStats | None" = None) -> StoreDelta:
        """Drain rows + touches plus a stats delta into one picklable unit.

        ``since`` is the baseline the stats delta is computed against
        (``None`` means "everything this store has seen").  Distributed
        workers ship these to the coordinator for activity outside any
        job; :meth:`import_delta` is the receiving side.
        """
        with self._lock:
            rows = self.drain_pending()
            touches = self.drain_touches()
            stats = self.stats()
            if since is not None:
                stats = stats.delta_since(since)
            return StoreDelta(rows=rows, stats=stats, touches=touches)

    def import_delta(self, delta: object, *, stats: bool = True) -> None:
        """Absorb a worker's :class:`StoreDelta` and flush its rows.

        ``stats=False`` skips the statistics merge — used when the delta
        came from a worker in this very process, whose activity already
        sits in this store's live counters.
        """
        if not isinstance(delta, StoreDelta):
            return
        self.absorb_touches(delta.touches)
        if delta.rows:
            self.absorb_rows(delta.rows)
            self.flush()
        if (
            stats
            and delta.stats is not None
            and delta.stats.lookups + delta.stats.writes
        ):
            self.absorb_stats(delta.stats)

    def absorb_rows(self, rows: tuple[StoreRow, ...] | list[StoreRow]) -> None:
        """Queue rows drained from a worker for this process's next flush."""
        if not rows or not self.writable:
            return
        with self._lock:
            for row in rows:
                self._pending[(row[0], row[1], row[2])] = row

    def absorb_stats(self, delta: StoreStats) -> None:
        """Fold a worker's statistics delta into this store's totals."""
        with self._lock:
            self._absorbed = self._absorbed.merge(delta)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """Snapshot of this process's activity plus absorbed worker deltas."""
        with self._lock:
            local = StoreStats(
                hits=sum(c.hits for c in self._counters.values()),
                misses=sum(c.misses for c in self._counters.values()),
                writes=sum(c.writes for c in self._counters.values()),
                by_kernel=tuple(
                    (name, c.hits, c.misses, c.writes)
                    for name, c in sorted(self._counters.items())
                ),
            )
            return local.merge(self._absorbed)

    def reset_stats(self) -> None:
        with self._lock:
            self._counters.clear()
            self._absorbed = StoreStats()

    def db_stats(self) -> dict:
        """Database-side inventory: rows/bytes per kernel, staleness, size."""
        with self._lock:
            self.flush()
            conn = self._connection()
            info: dict = {
                "path": self.path,
                "mode": self.mode,
                "exists": os.path.exists(self.path),
                "entries": 0,
                "kernels": [],
                "stale_entries": 0,
                "file_bytes": (
                    os.path.getsize(self.path)
                    if os.path.exists(self.path)
                    else 0
                ),
            }
            if conn is None:
                return info
            try:
                rows = conn.execute(
                    "SELECT kernel, version, COUNT(*), SUM(LENGTH(value)) "
                    "FROM results GROUP BY kernel, version "
                    "ORDER BY kernel, version"
                ).fetchall()
            except sqlite3.Error:
                return info
            current = _current_kernel_versions()
            stale = 0
            for kernel, version, count, value_bytes in rows:
                known = current.get(kernel)
                is_stale = known is not None and known != version
                if is_stale:
                    stale += count
                info["kernels"].append(
                    {
                        "kernel": kernel,
                        "version": version,
                        "entries": count,
                        "value_bytes": value_bytes or 0,
                        "stale": is_stale,
                    }
                )
                info["entries"] += count
            info["stale_entries"] = stale
            return info

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def vacuum(self) -> dict:
        """Garbage-collect stale kernel versions, then ``VACUUM``.

        A row is stale when its kernel is registered in this process under
        a *different* version; rows of unknown kernels are kept (another
        tool or an older checkout may still want them).
        """
        if not self.writable:
            raise StoreError("vacuum needs a writable (rw) store")
        with self._lock:
            self.flush()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"store file {self.path} is unreadable")
            deleted = 0
            for kernel, version in _current_kernel_versions().items():
                cursor = conn.execute(
                    "DELETE FROM results WHERE kernel = ? AND version != ?",
                    (kernel, version),
                )
                deleted += cursor.rowcount
            conn.commit()
            conn.execute("VACUUM")
            remaining = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            return {"deleted": deleted, "remaining": remaining}

    def prune(
        self,
        *,
        max_age_days: float | None = None,
        max_size_mb: float | None = None,
    ) -> dict:
        """Evict cold rows so long-lived shared store files stay bounded.

        Two independent caps, either or both:

        * ``max_age_days`` — delete rows whose ``last_used`` (falling back
          to ``created`` for never-read rows) is older than the cutoff;
        * ``max_size_mb`` — while the database file exceeds the cap,
          delete the least recently used rows in batches and ``VACUUM``
          until it fits (or the store is empty).

        Returns ``{"deleted_age", "deleted_size", "remaining",
        "file_bytes"}``.  Complements :meth:`vacuum`, which evicts by
        *staleness* (orphaned kernel versions) rather than by recency.
        """
        if max_age_days is None and max_size_mb is None:
            raise StoreError("prune needs max_age_days and/or max_size_mb")
        if max_age_days is not None and max_age_days < 0:
            raise StoreError(f"max_age_days must be >= 0, got {max_age_days}")
        if max_size_mb is not None and max_size_mb <= 0:
            raise StoreError(f"max_size_mb must be positive, got {max_size_mb}")
        if not self.writable:
            raise StoreError("prune needs a writable (rw) store")
        with self._lock:
            self.flush()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"store file {self.path} is unreadable")
            deleted_age = 0
            if max_age_days is not None:
                cutoff = time.time() - max_age_days * 86400.0
                cursor = conn.execute(
                    "DELETE FROM results "
                    "WHERE COALESCE(last_used, created) < ?",
                    (cutoff,),
                )
                deleted_age = cursor.rowcount
            conn.commit()
            conn.execute("VACUUM")
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            deleted_size = 0
            if max_size_mb is not None:
                cap = int(max_size_mb * (1 << 20))
                while os.path.getsize(self.path) > cap:
                    # Evict the least recently used rows, but only enough
                    # of them to cover the overshoot (scaled up for page
                    # and index overhead the value-length estimate cannot
                    # see), so a barely-over file loses barely any rows
                    # rather than a fixed-size chunk.  The candidate fetch
                    # is windowed: a multi-GB store must not materialise
                    # its whole table per iteration.
                    overshoot = os.path.getsize(self.path) - cap
                    candidates = conn.execute(
                        "SELECT kernel, version, key_hash, LENGTH(value) "
                        "FROM results "
                        "ORDER BY COALESCE(last_used, created) ASC "
                        "LIMIT 4096"
                    ).fetchall()
                    if not candidates:
                        break  # empty schema still over cap: nothing to do
                    victims = []
                    freed = 0
                    for kernel, version, key_hash, nbytes in candidates:
                        victims.append((kernel, version, key_hash))
                        freed += (nbytes or 0) + 512
                        if freed >= overshoot * 1.25:
                            break
                    conn.executemany(
                        "DELETE FROM results "
                        "WHERE kernel = ? AND version = ? AND key_hash = ?",
                        victims,
                    )
                    deleted_size += len(victims)
                    conn.commit()
                    conn.execute("VACUUM")
                    conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            remaining = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            return {
                "deleted_age": deleted_age,
                "deleted_size": deleted_size,
                "remaining": remaining,
                "file_bytes": os.path.getsize(self.path),
            }

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        if not self.writable:
            raise StoreError("clear needs a writable (rw) store")
        with self._lock:
            self._pending.clear()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"store file {self.path} is unreadable")
            removed = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            conn.execute("DELETE FROM results")
            conn.commit()
            return removed

    def export(self, destination: str) -> int:
        """Copy the store to ``destination`` via SQLite's backup API.

        Flushes first so the copy is complete; returns the copied entry
        count.  The destination is a fully usable store file.
        """
        with self._lock:
            self.flush()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"nothing to export at {self.path}")
            parent = os.path.dirname(os.path.abspath(destination))
            os.makedirs(parent, exist_ok=True)
            target = sqlite3.connect(destination)
            try:
                conn.backup(target)
                return target.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()[0]
            finally:
                target.close()

    def integrity_report(self) -> dict:
        """Audit the file: SQLite quick_check plus per-row checksums."""
        with self._lock:
            self.flush()
            conn = self._connection()
            if conn is None:
                if os.path.exists(self.path):
                    # The file is there but SQLite cannot open it.
                    return {
                        "ok": False,
                        "entries": 0,
                        "corrupt": 0,
                        "quick_check": "unreadable",
                    }
                return {"ok": True, "entries": 0, "corrupt": 0, "quick_check": "absent"}
            corrupt = 0
            entries = 0
            try:
                quick = conn.execute("PRAGMA quick_check").fetchone()[0]
                for kernel, version, key_hash, blob, checksum in conn.execute(
                    "SELECT kernel, version, key_hash, value, checksum "
                    "FROM results"
                ):
                    entries += 1
                    if _checksum(blob) != checksum:
                        corrupt += 1
                        self._drop_row(kernel, version, key_hash)
            except sqlite3.Error as exc:
                return {
                    "ok": False,
                    "entries": entries,
                    "corrupt": corrupt,
                    "quick_check": f"error: {exc}",
                }
            return {
                "ok": quick == "ok" and corrupt == 0,
                "entries": entries,
                "corrupt": corrupt,
                "quick_check": quick,
            }


def _current_kernel_versions() -> dict[str, str]:
    """The versions of every kernel registered in this process.

    Imported lazily: the store package must stay importable without the
    engine (and vice versa — the engine imports *us* lazily on the miss
    path).
    """
    from ..engine.cache import KERNEL_VERSIONS

    return dict(KERNEL_VERSIONS)
