"""SQLite-backed persistent result store: the kernel cache's second tier.

A :class:`ResultStore` maps ``(kernel, version, key_hash)`` to a pickled
kernel result.  ``key_hash`` is the content-addressed fingerprint of the
kernel's cache key (:mod:`repro.store.keys`), and ``version`` identifies
the kernel *implementation* — by default a hash of its source — so an
edited kernel never reads results computed by its former self.

Design points:

* **Batched writes.**  ``save`` only appends to an in-memory pending list;
  rows reach SQLite in one transaction per :meth:`flush` (triggered by the
  batch-size high-water mark, :func:`run_batch` progress, or exit).  The
  pending list doubles as a read-through overlay so an unflushed row is
  already visible to :meth:`load`.
* **Fork safety / single writer.**  Connections are opened lazily and
  keyed on the owning PID; a worker forked by
  :func:`~repro.engine.batch.run_batch` never touches the parent's
  connection.  Workers — daemonic pool processes, and any process with
  :attr:`ResultStore.worker_mode` set (distributed workers) — never
  auto-flush: the batch driver or coordinator drains their pending rows
  back to the parent with the job results, which is how parallel and
  distributed runs populate one store file without concurrent writers.
* **Last-used tracking.**  Every row records when it last served a hit
  (``last_used``), updated in the same flush transactions as new rows;
  :meth:`prune` uses it to evict cold rows by age and to shrink the file
  under a size cap, so long-lived shared store files stay bounded.
* **Integrity.**  Every row carries a SHA-256 checksum of its value blob;
  corrupt or unreadable rows are treated as misses and deleted on sight,
  and :meth:`integrity_report` audits the whole file.
* **Network warm start.**  Two read-only tiers sit around SQLite for
  distributed workers without a shared filesystem: an in-memory *seed*
  tier (:meth:`import_seed_rows`, populated from the coordinator's
  ``store_seed`` stream at handshake; :meth:`export_seed` is the sending
  side) consulted before the database, and an optional *remote* tier
  (:attr:`remote_tier`, a ``store_load`` round trip to the coordinator)
  consulted after a database miss.  Both only ever read — writes still
  ride home inside job results — and both count into the ordinary
  hit statistics plus dedicated ``seed_hits`` / ``remote_hits`` counters.

Modes: ``rw`` (read + write-back), ``ro`` (warm-start only, never writes),
``off`` (inert).  The module-level switchboard lives in
:mod:`repro.store` (``REPRO_STORE`` / ``REPRO_STORE_PATH``).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from threading import RLock

from ..errors import StoreError
from ..obs.trace import TRACER
from .keys import fingerprint

__all__ = [
    "MISS",
    "StoreError",
    "StoreStats",
    "StoreDelta",
    "StoreRow",
    "ResultStore",
    "MODES",
]

MODES = ("off", "ro", "rw")

#: Module-private miss sentinel: ``load`` returns it so ``None`` stays a
#: perfectly valid stored value (e.g. "no shelling order exists").
MISS = object()

#: v2 added the ``last_used`` column (prune's eviction signal); v1 files
#: are migrated in place on the first writable connection.
_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    kernel    TEXT NOT NULL,
    version   TEXT NOT NULL,
    key_hash  TEXT NOT NULL,
    value     BLOB NOT NULL,
    checksum  TEXT NOT NULL,
    created   REAL NOT NULL,
    last_used REAL,
    PRIMARY KEY (kernel, version, key_hash)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class StoreStats:
    """Immutable snapshot of store-tier activity, mergeable across workers."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    by_kernel: tuple[tuple[str, int, int, int], ...] = ()
    """Per-kernel ``(name, hits, misses, writes)`` rows, sorted by name."""

    seed_hits: int = 0
    """Hits served by the in-memory seed tier (rows streamed from a
    distributed coordinator's store at handshake); always also counted in
    ``hits``."""

    remote_hits: int = 0
    """Hits served by the remote tier (a ``store_load`` round trip to the
    coordinator mid-run); always also counted in ``hits``."""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "StoreStats") -> "StoreStats":
        """Combine two snapshots (e.g. parent stats + a worker delta)."""
        merged: dict[str, list[int]] = {}
        for name, hits, misses, writes in self.by_kernel + other.by_kernel:
            row = merged.setdefault(name, [0, 0, 0])
            row[0] += hits
            row[1] += misses
            row[2] += writes
        return StoreStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writes=self.writes + other.writes,
            by_kernel=tuple(
                (name, *row) for name, row in sorted(merged.items())
            ),
            seed_hits=self.seed_hits + other.seed_hits,
            remote_hits=self.remote_hits + other.remote_hits,
        )

    def delta_since(self, baseline: "StoreStats") -> "StoreStats":
        """Activity between ``baseline`` and this snapshot."""
        base = {name: (h, m, w) for name, h, m, w in baseline.by_kernel}
        rows = []
        for name, hits, misses, writes in self.by_kernel:
            bh, bm, bw = base.get(name, (0, 0, 0))
            if hits - bh or misses - bm or writes - bw:
                rows.append((name, hits - bh, misses - bm, writes - bw))
        return StoreStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            writes=self.writes - baseline.writes,
            by_kernel=tuple(rows),
            seed_hits=self.seed_hits - baseline.seed_hits,
            remote_hits=self.remote_hits - baseline.remote_hits,
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (``store stats --json`` and CI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
            "seed_hits": self.seed_hits,
            "remote_hits": self.remote_hits,
            "by_kernel": [
                {"kernel": name, "hits": h, "misses": m, "writes": w}
                for name, h, m, w in self.by_kernel
            ],
        }

    def as_dict(self) -> dict:
        """Alias for :meth:`to_dict` — the unified stats-surface name
        shared with ``CacheStats`` and the dist metrics (what the
        :class:`repro.obs.MetricsRegistry` providers call)."""
        return self.to_dict()

    def describe(self) -> str:
        lines = [
            f"result store: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.writes} writes"
        ]
        if self.seed_hits or self.remote_hits:
            lines.append(
                f"  network warm start: {self.seed_hits} seeded hit(s), "
                f"{self.remote_hits} remote load(s)"
            )
        for name, hits, misses, writes in self.by_kernel:
            total = hits + misses
            rate = hits / total if total else 0.0
            lines.append(
                f"  {name}: {hits}/{total} hits ({rate:.0%}), {writes} writes"
            )
        return "\n".join(lines)


#: One pending/persisted row: ``(kernel, version, key_hash, blob, checksum,
#: created, last_used)`` — plain picklable tuples so workers and seeding
#: coordinators can ship them over the wire.  Freshly computed rows start
#: with ``last_used == created``; rows exported from a database carry the
#: real recency so seeding/importing never resets ``prune``'s signal.
#: Legacy 6-tuples (pre last-used) are still accepted everywhere.
StoreRow = tuple[str, str, str, bytes, str, float, float]


def _row_last_used(row) -> float:
    """A row's ``last_used``, tolerating legacy 6-tuples and ``None``."""
    if len(row) > 6 and row[6] is not None:
        return row[6]
    return row[5]


@dataclass(frozen=True)
class StoreDelta:
    """A worker's exportable store state: rows, touches, a stats delta.

    The picklable unit the distributed workers ship to the coordinator
    for activity that happened *outside* any job (warmup, stragglers):
    per-job rows and stats already ride inside each ``JobResult``.
    """

    rows: tuple[StoreRow, ...] = ()
    stats: "StoreStats | None" = None
    touches: tuple = ()
    """Last-used refreshes (``((kernel, version, key_hash), when)``) for
    rows this worker served from the store — prune's recency signal."""


@dataclass
class _StoreCounters:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    seed_hits: int = 0
    remote_hits: int = 0


def _checksum(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _in_daemon_process() -> bool:
    return multiprocessing.current_process().daemon


class ResultStore:
    """Content-addressed persistent kernel-result store over SQLite.

    Parameters
    ----------
    path:
        Database file; parent directories are created on first write.
    mode:
        ``"rw"``, ``"ro"`` or ``"off"`` (see the module docstring).
    batch_size:
        Pending-write high-water mark before an automatic :meth:`flush`
        (never triggered inside batch workers).
    """

    def __init__(self, path: str, mode: str = "off", batch_size: int = 64):
        if mode not in MODES:
            raise StoreError(f"mode must be one of {MODES}, got {mode!r}")
        if batch_size < 1:
            raise StoreError(f"batch_size must be positive, got {batch_size}")
        self.path = str(path)
        self.mode = mode
        self.batch_size = batch_size
        #: Distributed-worker switch: when True this process never writes
        #: SQLite — flush defers, rows accumulate for :meth:`drain_pending`
        #: / :meth:`export_delta`, exactly like a daemonic pool worker.
        self.worker_mode = False
        #: Incremented by a dist coordinator serving from this process:
        #: an in-process worker must then leave ``worker_mode`` off, or
        #: it would stall the coordinator's own flushes.
        self.coordinator_owned = 0
        #: Optional remote tier: an object with ``load(kernel, version,
        #: key_hash) -> StoreRow | None`` consulted after a SQLite miss
        #: (distributed workers point it at the coordinator's store over
        #: the job connection).  Rows it returns are installed into the
        #: seed tier so a repeat lookup never pays the round trip again.
        self.remote_tier = None
        self._seed: dict[tuple[str, str, str], StoreRow] = {}
        self._pending: dict[tuple[str, str, str], StoreRow] = {}
        self._touched: dict[tuple[str, str, str], float] = {}
        self._counters: dict[str, _StoreCounters] = {}
        self._absorbed = StoreStats()
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        self._broken_pid: int | None = None
        self._lock = RLock()
        # Which layer answered this thread's most recent load() — the
        # kernel wrapper reads it for trace-span tier attribution.
        # Thread-local because the dist coordinator serves loads from
        # connection-handler threads concurrently with local kernels.
        self._last_tier = threading.local()

    # ------------------------------------------------------------------
    # Mode switches
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.mode != "off"

    @property
    def writable(self) -> bool:
        return self.mode == "rw"

    @contextmanager
    def disabled(self):
        """Context manager: run with the store switched off."""
        previous = self.mode
        self.mode = "off"
        try:
            yield self
        finally:
            self.mode = previous

    def _defer_writes(self) -> bool:
        """True when this process must not touch SQLite (batch/dist worker)."""
        return self.worker_mode or _in_daemon_process()

    # ------------------------------------------------------------------
    # Hit-tier attribution (trace spans)
    # ------------------------------------------------------------------
    def _served_by(self, tier: str | None) -> None:
        self._last_tier.value = tier

    def last_load_tier(self) -> str | None:
        """Which layer answered this thread's most recent :meth:`load`.

        ``"store"`` (pending overlay or SQLite), ``"seed"`` (in-memory
        warm-start tier), ``"remote"`` (coordinator round trip), or
        ``None`` after a miss.  Consumed by :func:`~repro.engine.cache.
        cached_kernel` to stamp the ``tier`` attribute on kernel spans.
        """
        return getattr(self._last_tier, "value", None)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection | None:
        """The per-process connection, or ``None`` when unavailable.

        ``ro`` mode against a missing file is a healthy cold start, not an
        error: every lookup simply misses.  An unreadable file (truncated,
        not SQLite, locked-out schema) likewise degrades to ``None`` —
        persistence is best-effort and must never crash a kernel call —
        and the failure is remembered per process so kernels are not
        slowed by reconnect attempts (:meth:`integrity_report` surfaces
        the breakage).
        """
        with self._lock:
            pid = os.getpid()
            if self._conn is not None and self._conn_pid == pid:
                return self._conn
            if self._broken_pid == pid:
                return None
            # A connection inherited across fork must never be used (and
            # closing it here could corrupt the parent's descriptor state,
            # so it is simply dropped).
            self._conn = None
            if not self.writable and not os.path.exists(self.path):
                return None
            try:
                if self.writable:
                    parent = os.path.dirname(os.path.abspath(self.path))
                    os.makedirs(parent, exist_ok=True)
                # check_same_thread=False: the dist coordinator flushes
                # from its connection-handler threads; every use of the
                # connection is serialised by self._lock, which is the
                # thread-safety SQLite's own check would otherwise insist
                # on seeing.
                conn = sqlite3.connect(
                    self.path, timeout=30.0, check_same_thread=False
                )
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                if self.writable:
                    conn.executescript(_SCHEMA)
                    self._migrate(conn)
                    conn.execute(
                        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                        ("schema_version", str(_SCHEMA_VERSION)),
                    )
                    conn.commit()
            except (sqlite3.Error, OSError):
                self._broken_pid = pid
                return None
            self._conn = conn
            self._conn_pid = pid
            return conn

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Bring a pre-existing file up to the current schema in place.

        v1 -> v2: add ``last_used``, seeding it from ``created`` so prune's
        age cap is immediately meaningful on migrated files.
        """
        columns = {
            row[1] for row in conn.execute("PRAGMA table_info(results)")
        }
        if "last_used" not in columns:
            conn.execute("ALTER TABLE results ADD COLUMN last_used REAL")
            conn.execute("UPDATE results SET last_used = created")

    def close(self) -> None:
        """Flush pending writes and drop the connection."""
        with self._lock:
            self.flush()
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None

    # ------------------------------------------------------------------
    # The read/write hot path
    # ------------------------------------------------------------------
    def load(self, kernel: str, version: str, key: object) -> object:
        """Return the stored value, or the :data:`MISS` sentinel.

        Misses include: store inactive, unfingerprintable key, absent row,
        and corrupt row (which is deleted so it cannot keep failing).
        """
        self._served_by(None)
        if not self.active:
            return MISS
        key_hash = fingerprint(key)
        if key_hash is None:
            return MISS
        with self._lock:
            counters = self._counters.setdefault(kernel, _StoreCounters())
            full_key = (kernel, version, key_hash)
            pending = self._pending.get(full_key)
            if pending is not None:
                counters.hits += 1
                self._served_by("store")
                return pickle.loads(pending[3])
            seeded = self._seed.get(full_key)
            if seeded is not None:
                try:
                    value = pickle.loads(seeded[3])
                except Exception:
                    del self._seed[full_key]
                else:
                    counters.hits += 1
                    counters.seed_hits += 1
                    self._touch(full_key)
                    self._served_by("seed")
                    return value
            conn = self._connection()
            if conn is not None:
                try:
                    row = conn.execute(
                        "SELECT value, checksum FROM results "
                        "WHERE kernel = ? AND version = ? AND key_hash = ?",
                        (kernel, version, key_hash),
                    ).fetchone()
                except sqlite3.Error:
                    row = None
                if row is not None:
                    blob, checksum = row
                    if _checksum(blob) != checksum:
                        self._drop_row(kernel, version, key_hash)
                    else:
                        try:
                            value = pickle.loads(blob)
                        except Exception:
                            self._drop_row(kernel, version, key_hash)
                        else:
                            counters.hits += 1
                            self._touch(full_key)
                            self._served_by("store")
                            return value
            if self.remote_tier is None:
                counters.misses += 1
                return MISS
        # Remote fallthrough runs *outside* the store lock: the round trip
        # can block for the full network timeout against a stalled
        # coordinator, and holding the RLock would freeze every other
        # thread's store access (including loads that would hit locally)
        # for the duration.
        return self._remote_fallthrough(full_key)

    def _touch(self, full_key: tuple[str, str, str]) -> None:
        """Record a recency signal for prune (next flush applies it).

        Workers ship theirs home with each job (:meth:`drain_touches`)
        since their own flush defers — including touches for *seeded*
        rows, whose home copy lives in the coordinator's database.  A
        worker-mode store records touches even in ``ro`` mode: this
        process never flushes them, but the coordinator's writable store
        does, and an ``ro`` warm-start worker's hits are exactly the
        recency ``store prune`` must keep seeing.
        """
        if self.writable or self.worker_mode:
            self._touched[full_key] = time.time()

    def _remote_fallthrough(self, full_key: tuple[str, str, str]) -> object:
        """Last tier before computing: ask the remote store, if any.

        A returned row is checksum-verified and installed into the seed
        tier, so results banked mid-run by *other* workers are fetched at
        most once per worker.  Any failure (miss, torn connection,
        corrupt row) degrades to a plain miss — persistence stays
        best-effort.

        Called *without* the store lock held — the network round trip
        must not serialize the store — and re-takes it only to install
        the row and book the counters.
        """
        tier = self.remote_tier
        value = MISS
        row = None
        if tier is not None:
            try:
                row = tier.load(*full_key)
            except Exception:
                row = None
            if (
                row is not None
                and len(row) >= 6
                and _checksum(row[3]) == row[4]
            ):
                try:
                    value = pickle.loads(row[3])
                except Exception:
                    value = MISS
        with self._lock:
            counters = self._counters.setdefault(full_key[0], _StoreCounters())
            if value is MISS:
                counters.misses += 1
                return MISS
            self._seed[full_key] = tuple(row)
            counters.hits += 1
            counters.remote_hits += 1
            self._touch(full_key)
            self._served_by("remote")
            return value

    def save(self, kernel: str, version: str, key: object, value: object) -> None:
        """Queue a computed result for write-back (no-op unless ``rw``)."""
        if not self.writable:
            return
        key_hash = fingerprint(key)
        if key_hash is None:
            return
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable value: persistence is best-effort
        now = time.time()
        row: StoreRow = (
            kernel, version, key_hash, blob, _checksum(blob), now, now
        )
        with self._lock:
            self._pending[(kernel, version, key_hash)] = row
            self._counters.setdefault(kernel, _StoreCounters()).writes += 1
            if len(self._pending) >= self.batch_size and not self._defer_writes():
                self.flush()

    def _drop_row(self, kernel: str, version: str, key_hash: str) -> None:
        if not self.writable:
            return
        conn = self._connection()
        if conn is None:
            return
        try:
            conn.execute(
                "DELETE FROM results "
                "WHERE kernel = ? AND version = ? AND key_hash = ?",
                (kernel, version, key_hash),
            )
            conn.commit()
        except sqlite3.Error:
            pass

    # ------------------------------------------------------------------
    # Batching / worker merge
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write all pending rows in one transaction; returns the count.

        Also applies the accumulated last-used touches in the same
        transaction.  Inside a batch/dist worker (daemonic process or
        :attr:`worker_mode`) this is a no-op that *keeps* the pending
        rows: the parent process is the only database writer, and the
        batch driver or coordinator ships the worker's rows home with its
        job results (:meth:`drain_pending` / :meth:`export_delta`).
        """
        if self._defer_writes():
            return 0
        with self._lock:
            if not self.writable:
                # Dropping unwritable pendings keeps ro/off stores bounded.
                count = len(self._pending)
                self._pending.clear()
                self._touched.clear()
                return count
            if not self._pending and not self._touched:
                return 0
            conn = self._connection()
            if conn is None:
                # Unreadable database: best-effort persistence gives up on
                # these rows rather than growing the buffer forever.
                self._pending.clear()
                self._touched.clear()
                return 0
            rows = list(self._pending.values())
            with TRACER.span(
                "store:flush", cat="store",
                rows=len(rows), touches=len(self._touched),
            ):
                if rows:
                    # Upsert rather than replace: a duplicate arrival (e.g.
                    # a requeued job recomputed elsewhere, or an imported
                    # delta of rows this file already holds) must never
                    # move a hot row's last_used backwards.
                    conn.executemany(
                        "INSERT INTO results "
                        "(kernel, version, key_hash, value, checksum, created, "
                        "last_used) VALUES (?, ?, ?, ?, ?, ?, ?) "
                        "ON CONFLICT(kernel, version, key_hash) DO UPDATE SET "
                        "value = excluded.value, checksum = excluded.checksum, "
                        "last_used = MAX(COALESCE(results.last_used, "
                        "results.created), excluded.last_used)",
                        [row[:6] + (_row_last_used(row),) for row in rows],
                    )
                # Touches for rows that are also pending were just written
                # with last_used = created; the UPDATE below refreshes them.
                if self._touched:
                    conn.executemany(
                        "UPDATE results SET last_used = ? "
                        "WHERE kernel = ? AND version = ? AND key_hash = ?",
                        [
                            (when, kernel, version, key_hash)
                            for (kernel, version, key_hash), when
                            in self._touched.items()
                        ],
                    )
                conn.commit()
            self._pending.clear()
            self._touched.clear()
            return len(rows)

    def drain_pending(self) -> tuple[StoreRow, ...]:
        """Remove and return the pending rows (a worker's write delta).

        The batch driver ships these back with each job result; the parent
        re-absorbs them with :meth:`absorb_rows`, so one process owns all
        database writes.
        """
        with self._lock:
            rows = tuple(self._pending.values())
            self._pending.clear()
            return rows

    def drain_touches(self) -> tuple:
        """Remove and return the accumulated last-used touches.

        A worker's flush never runs, so its touches ride home with each
        job result (alongside :meth:`drain_pending`'s rows) and the
        parent applies them via :meth:`absorb_touches` — otherwise rows
        served inside pool/dist workers would never look recently used
        and :meth:`prune` would evict the hottest shards first.
        """
        with self._lock:
            touches = tuple(self._touched.items())
            self._touched.clear()
            return touches

    def absorb_touches(self, touches) -> None:
        """Merge drained worker touches for this process's next flush."""
        if not touches or not self.writable:
            return
        with self._lock:
            for key, when in touches:
                if self._touched.get(key, 0.0) < when:
                    self._touched[key] = when

    def export_delta(self, since: "StoreStats | None" = None) -> StoreDelta:
        """Drain rows + touches plus a stats delta into one picklable unit.

        ``since`` is the baseline the stats delta is computed against
        (``None`` means "everything this store has seen").  Distributed
        workers ship these to the coordinator for activity outside any
        job; :meth:`import_delta` is the receiving side.
        """
        with self._lock:
            rows = self.drain_pending()
            touches = self.drain_touches()
            stats = self.stats()
            if since is not None:
                stats = stats.delta_since(since)
            return StoreDelta(rows=rows, stats=stats, touches=touches)

    def import_delta(self, delta: object, *, stats: bool = True) -> None:
        """Absorb a worker's :class:`StoreDelta` and flush its rows.

        ``stats=False`` skips the statistics merge — used when the delta
        came from a worker in this very process, whose activity already
        sits in this store's live counters.
        """
        if not isinstance(delta, StoreDelta):
            return
        self.absorb_touches(delta.touches)
        if delta.rows:
            self.absorb_rows(delta.rows)
            self.flush()
        if (
            stats
            and delta.stats is not None
            and delta.stats.lookups + delta.stats.writes
        ):
            self.absorb_stats(delta.stats)

    def absorb_rows(self, rows: tuple[StoreRow, ...] | list[StoreRow]) -> None:
        """Queue rows drained from a worker for this process's next flush."""
        if not rows or not self.writable:
            return
        with self._lock:
            for row in rows:
                self._pending[(row[0], row[1], row[2])] = row

    def absorb_stats(self, delta: StoreStats) -> None:
        """Fold a worker's statistics delta into this store's totals."""
        with self._lock:
            self._absorbed = self._absorbed.merge(delta)

    # ------------------------------------------------------------------
    # Network warm start (distributed seeding / remote loads)
    # ------------------------------------------------------------------
    @property
    def seed_rows(self) -> int:
        """Rows currently held by the in-memory seed tier."""
        with self._lock:
            return len(self._seed)

    def import_seed_rows(self, rows) -> int:
        """Install rows into the in-memory seed tier; returns the count kept.

        The receiving half of a coordinator's ``store_seed`` stream.
        Rows are checksum-verified on the way in (a torn frame must not
        plant corrupt values) and are never written to this process's
        database — the seed tier is a read-only warm-start overlay, which
        is what preserves the cluster-wide single-writer invariant.
        """
        kept = 0
        with TRACER.span("store:seed_import", cat="store") as sp:
            with self._lock:
                for row in rows or ():
                    try:
                        if len(row) < 6 or _checksum(row[3]) != row[4]:
                            continue
                    except TypeError:
                        continue
                    self._seed[(row[0], row[1], row[2])] = tuple(row)
                    kept += 1
            sp.set(rows=kept)
        return kept

    def clear_seed(self) -> int:
        """Drop the seed tier (a worker releasing a finished batch)."""
        with self._lock:
            count = len(self._seed)
            self._seed.clear()
            return count

    def export_seed(
        self,
        versions=None,
        *,
        chunk_rows: int = 512,
        chunk_bytes: int = 8 << 20,
    ):
        """Yield chunks of raw rows for seeding a connecting worker.

        ``versions`` maps kernel name to an implementation version (or a
        tuple of versions, for kernels with live variants); only matching
        rows ship.  ``None`` means "every kernel registered in this
        process, at its current version(s)" — so rows orphaned by an
        edited kernel never travel.  Chunks are bounded by row count and
        payload bytes, and the database is locked per chunk only, so a
        huge store streams as many modest frames without stalling the
        store for concurrent flushes.
        """
        if versions is None:
            versions = _current_kernel_versions()
        pairs = sorted(
            (kernel, version)
            for kernel, value in versions.items()
            for version in ((value,) if isinstance(value, str) else tuple(value))
        )
        if not pairs:
            return
        # The filter lives in the WHERE clause: a store full of
        # stale-version or unregistered-kernel rows must not have their
        # blobs fetched just to be discarded, once per connecting worker.
        placeholders = ", ".join(["(?, ?)"] * len(pairs))
        query = (
            "SELECT rowid, kernel, version, key_hash, value, checksum, "
            "created, COALESCE(last_used, created) FROM results "
            f"WHERE rowid > ? AND (kernel, version) IN (VALUES {placeholders}) "
            "ORDER BY rowid LIMIT ?"
        )
        filter_params = [value for pair in pairs for value in pair]
        last_rowid = 0
        while True:
            with self._lock:
                self.flush()
                conn = self._connection()
                if conn is None:
                    return
                try:
                    fetched = conn.execute(
                        query, (last_rowid, *filter_params, chunk_rows)
                    ).fetchall()
                except sqlite3.Error:
                    return
            if not fetched:
                return
            chunk: list[StoreRow] = []
            size = 0
            for rowid, kernel, version, key_hash, blob, checksum, created, last_used in fetched:
                last_rowid = rowid
                chunk.append(
                    (kernel, version, key_hash, blob, checksum, created,
                     last_used)
                )
                size += len(blob)
                if size >= chunk_bytes:
                    yield chunk
                    chunk, size = [], 0
            if chunk:
                yield chunk

    def seed_digest(self, versions=None) -> dict[tuple[str, str], str]:
        """Per-``(kernel, version)`` content digest of the answerable rows.

        The currency of *incremental seeding*: a reconnecting worker puts
        its digests in the ``hello`` frame, the coordinator computes its
        own with the same method, and any tier whose digest matches is
        skipped by the seed stream — only new rows travel.  The digest
        covers every row this store can answer from (database, pending
        overlay, and the in-memory seed tier) as ``"{count}:{hash16}"``
        over the sorted key hashes, so it is order- and source-agnostic:
        the same logical row set always digests identically on both
        sides.  ``versions`` filters exactly like :meth:`export_seed`;
        tiers with no rows are omitted.
        """
        with self._lock:
            if not self.active:
                return {}
            if versions is None:
                versions = _current_kernel_versions()
            pairs = sorted(
                (kernel, version)
                for kernel, value in versions.items()
                for version in (
                    (value,) if isinstance(value, str) else tuple(value)
                )
            )
            if not pairs:
                return {}
            keys: dict[tuple[str, str], set[str]] = {p: set() for p in pairs}
            conn = self._connection()
            if conn is not None:
                placeholders = ", ".join(["(?, ?)"] * len(pairs))
                params = [value for pair in pairs for value in pair]
                try:
                    rows = conn.execute(
                        "SELECT kernel, version, key_hash FROM results "
                        f"WHERE (kernel, version) IN (VALUES {placeholders})",
                        params,
                    ).fetchall()
                except sqlite3.Error:
                    rows = []
                for kernel, version, key_hash in rows:
                    keys[(kernel, version)].add(key_hash)
            for overlay in (self._pending, self._seed):
                for kernel, version, key_hash in overlay:
                    pair = (kernel, version)
                    if pair in keys:
                        keys[pair].add(key_hash)
            digests: dict[tuple[str, str], str] = {}
            for pair, hashes in keys.items():
                if not hashes:
                    continue
                acc = hashlib.sha256()
                for key_hash in sorted(hashes):
                    acc.update(key_hash.encode("ascii"))
                    acc.update(b";")
                digests[pair] = f"{len(hashes)}:{acc.hexdigest()[:16]}"
            return digests

    def load_row(self, kernel: str, version: str, key_hash: str):
        """The raw stored row (pending overlay included), or ``None``.

        The coordinator's answer to a worker's ``store_load``: unlike
        :meth:`load` it ships the pickled blob untouched and counts no
        hit/miss — serving a remote lookup is not a local kernel event —
        but it does refresh the row's recency, since a row another worker
        needed is demonstrably hot.
        """
        with self._lock:
            if not self.active:
                return None
            full_key = (kernel, version, key_hash)
            row = self._pending.get(full_key)
            if row is not None:
                return row[:6] + (_row_last_used(row),)
            conn = self._connection()
            if conn is None:
                return None
            try:
                fetched = conn.execute(
                    "SELECT value, checksum, created, "
                    "COALESCE(last_used, created) FROM results "
                    "WHERE kernel = ? AND version = ? AND key_hash = ?",
                    (kernel, version, key_hash),
                ).fetchone()
            except sqlite3.Error:
                return None
            if fetched is None:
                return None
            blob, checksum, created, last_used = fetched
            if _checksum(blob) != checksum:
                self._drop_row(kernel, version, key_hash)
                return None
            self._touch(full_key)
            return (kernel, version, key_hash, blob, checksum, created,
                    last_used)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """Snapshot of this process's activity plus absorbed worker deltas."""
        with self._lock:
            local = StoreStats(
                hits=sum(c.hits for c in self._counters.values()),
                misses=sum(c.misses for c in self._counters.values()),
                writes=sum(c.writes for c in self._counters.values()),
                by_kernel=tuple(
                    (name, c.hits, c.misses, c.writes)
                    for name, c in sorted(self._counters.items())
                ),
                seed_hits=sum(
                    c.seed_hits for c in self._counters.values()
                ),
                remote_hits=sum(
                    c.remote_hits for c in self._counters.values()
                ),
            )
            return local.merge(self._absorbed)

    def reset_stats(self) -> None:
        with self._lock:
            self._counters.clear()
            self._absorbed = StoreStats()

    def db_stats(self) -> dict:
        """Database-side inventory: rows/bytes per kernel, staleness, size."""
        with self._lock:
            self.flush()
            conn = self._connection()
            info: dict = {
                "path": self.path,
                "mode": self.mode,
                "exists": os.path.exists(self.path),
                "entries": 0,
                "kernels": [],
                "stale_entries": 0,
                "file_bytes": (
                    os.path.getsize(self.path)
                    if os.path.exists(self.path)
                    else 0
                ),
            }
            if conn is None:
                return info
            try:
                rows = conn.execute(
                    "SELECT kernel, version, COUNT(*), SUM(LENGTH(value)) "
                    "FROM results GROUP BY kernel, version "
                    "ORDER BY kernel, version"
                ).fetchall()
            except sqlite3.Error:
                return info
            current = _current_kernel_versions()
            stale = 0
            for kernel, version, count, value_bytes in rows:
                known = current.get(kernel)
                is_stale = known is not None and version not in known
                if is_stale:
                    stale += count
                info["kernels"].append(
                    {
                        "kernel": kernel,
                        "version": version,
                        "entries": count,
                        "value_bytes": value_bytes or 0,
                        "stale": is_stale,
                    }
                )
                info["entries"] += count
            info["stale_entries"] = stale
            return info

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def vacuum(self) -> dict:
        """Garbage-collect stale kernel versions, then ``VACUUM``.

        A row is stale when its kernel is registered in this process and
        the row's version matches *none* of the kernel's live versions
        (kernels with implementation variants have one live version per
        variant); rows of unknown kernels are kept (another tool or an
        older checkout may still want them).
        """
        if not self.writable:
            raise StoreError("vacuum needs a writable (rw) store")
        with self._lock, TRACER.span("store:vacuum", cat="store") as sp:
            self.flush()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"store file {self.path} is unreadable")
            deleted = 0
            for kernel, versions in _current_kernel_versions().items():
                placeholders = ", ".join("?" * len(versions))
                cursor = conn.execute(
                    "DELETE FROM results WHERE kernel = ? "
                    f"AND version NOT IN ({placeholders})",
                    (kernel, *versions),
                )
                deleted += cursor.rowcount
            conn.commit()
            conn.execute("VACUUM")
            remaining = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            sp.set(deleted=deleted, remaining=remaining)
            return {"deleted": deleted, "remaining": remaining}

    def prune(
        self,
        *,
        max_age_days: float | None = None,
        max_size_mb: float | None = None,
    ) -> dict:
        """Evict cold rows so long-lived shared store files stay bounded.

        Two independent caps, either or both:

        * ``max_age_days`` — delete rows whose ``last_used`` (falling back
          to ``created`` for never-read rows) is older than the cutoff;
        * ``max_size_mb`` — while the database file exceeds the cap,
          delete the least recently used rows in batches and ``VACUUM``
          until it fits (or the store is empty).

        Returns ``{"deleted_age", "deleted_size", "remaining",
        "file_bytes"}``.  Complements :meth:`vacuum`, which evicts by
        *staleness* (orphaned kernel versions) rather than by recency.
        """
        if max_age_days is None and max_size_mb is None:
            raise StoreError("prune needs max_age_days and/or max_size_mb")
        if max_age_days is not None and max_age_days < 0:
            raise StoreError(f"max_age_days must be >= 0, got {max_age_days}")
        if max_size_mb is not None and max_size_mb <= 0:
            raise StoreError(f"max_size_mb must be positive, got {max_size_mb}")
        if not self.writable:
            raise StoreError("prune needs a writable (rw) store")
        with self._lock, TRACER.span("store:prune", cat="store") as sp:
            self.flush()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"store file {self.path} is unreadable")
            deleted_age = 0
            if max_age_days is not None:
                cutoff = time.time() - max_age_days * 86400.0
                cursor = conn.execute(
                    "DELETE FROM results "
                    "WHERE COALESCE(last_used, created) < ?",
                    (cutoff,),
                )
                deleted_age = cursor.rowcount
            conn.commit()
            conn.execute("VACUUM")
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            deleted_size = 0
            if max_size_mb is not None:
                cap = int(max_size_mb * (1 << 20))
                while os.path.getsize(self.path) > cap:
                    # Evict the least recently used rows, but only enough
                    # of them to cover the overshoot (scaled up for page
                    # and index overhead the value-length estimate cannot
                    # see), so a barely-over file loses barely any rows
                    # rather than a fixed-size chunk.  The candidate fetch
                    # is windowed: a multi-GB store must not materialise
                    # its whole table per iteration.
                    overshoot = os.path.getsize(self.path) - cap
                    candidates = conn.execute(
                        "SELECT kernel, version, key_hash, LENGTH(value) "
                        "FROM results "
                        "ORDER BY COALESCE(last_used, created) ASC "
                        "LIMIT 4096"
                    ).fetchall()
                    if not candidates:
                        break  # empty schema still over cap: nothing to do
                    victims = []
                    freed = 0
                    for kernel, version, key_hash, nbytes in candidates:
                        victims.append((kernel, version, key_hash))
                        freed += (nbytes or 0) + 512
                        if freed >= overshoot * 1.25:
                            break
                    conn.executemany(
                        "DELETE FROM results "
                        "WHERE kernel = ? AND version = ? AND key_hash = ?",
                        victims,
                    )
                    deleted_size += len(victims)
                    conn.commit()
                    conn.execute("VACUUM")
                    conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            remaining = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            sp.set(
                deleted_age=deleted_age,
                deleted_size=deleted_size,
                remaining=remaining,
            )
            return {
                "deleted_age": deleted_age,
                "deleted_size": deleted_size,
                "remaining": remaining,
                "file_bytes": os.path.getsize(self.path),
            }

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        if not self.writable:
            raise StoreError("clear needs a writable (rw) store")
        with self._lock:
            self._pending.clear()
            self._seed.clear()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"store file {self.path} is unreadable")
            removed = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            conn.execute("DELETE FROM results")
            conn.commit()
            return removed

    def export(self, destination: str) -> int:
        """Copy the store to ``destination`` via SQLite's backup API.

        Flushes first so the copy is complete; returns the copied entry
        count.  The destination is a fully usable store file.
        """
        with self._lock:
            self.flush()
            conn = self._connection()
            if conn is None:
                raise StoreError(f"nothing to export at {self.path}")
            parent = os.path.dirname(os.path.abspath(destination))
            os.makedirs(parent, exist_ok=True)
            target = sqlite3.connect(destination)
            try:
                conn.backup(target)
                return target.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()[0]
            finally:
                target.close()

    def integrity_report(self) -> dict:
        """Audit the file: SQLite quick_check plus per-row checksums."""
        with self._lock:
            self.flush()
            conn = self._connection()
            if conn is None:
                if os.path.exists(self.path):
                    # The file is there but SQLite cannot open it.
                    return {
                        "ok": False,
                        "entries": 0,
                        "corrupt": 0,
                        "quick_check": "unreadable",
                    }
                return {"ok": True, "entries": 0, "corrupt": 0, "quick_check": "absent"}
            corrupt = 0
            entries = 0
            try:
                quick = conn.execute("PRAGMA quick_check").fetchone()[0]
                for kernel, version, key_hash, blob, checksum in conn.execute(
                    "SELECT kernel, version, key_hash, value, checksum "
                    "FROM results"
                ):
                    entries += 1
                    if _checksum(blob) != checksum:
                        corrupt += 1
                        self._drop_row(kernel, version, key_hash)
            except sqlite3.Error as exc:
                return {
                    "ok": False,
                    "entries": entries,
                    "corrupt": corrupt,
                    "quick_check": f"error: {exc}",
                }
            return {
                "ok": quick == "ok" and corrupt == 0,
                "entries": entries,
                "corrupt": corrupt,
                "quick_check": quick,
            }


def _current_kernel_versions() -> dict[str, tuple[str, ...]]:
    """Every live store version of every kernel registered in this process.

    Most kernels map to a 1-tuple of their pinned version; kernels with
    declared implementation variants (the CSP compute backends) map to
    one ``"{version}+{suffix}"`` entry per variant — all of them count as
    current, so vacuum/staleness never discards another backend's rows.

    Imported lazily: the store package must stay importable without the
    engine (and vice versa — the engine imports *us* lazily on the miss
    path).
    """
    from ..engine.cache import KERNEL_VERSION_VARIANTS

    return dict(KERNEL_VERSION_VARIANTS)
