"""Persistent, versioned kernel-result store — the cache's second tier.

:mod:`repro.engine.cache` memoizes the expensive kernels in-process; this
package spills those results to a SQLite file so *every* process starts
warm: reruns, CI jobs, and fresh workers pay the full kernel cost exactly
once per ``(kernel implementation, canonical key)`` pair, machine-wide.

Tiering (wired inside :func:`~repro.engine.cache.cached_kernel`)::

    call -> KernelCache (process RAM) -> ResultStore (SQLite) -> compute
                                   write-back <- ................|

Configuration is environment-first so no call site changes behaviour:

* ``REPRO_STORE`` — ``off`` (default), ``ro`` (warm-start only) or ``rw``
  (warm-start + write-back).
* ``REPRO_STORE_PATH`` — database file (default ``.repro-store.sqlite``
  in the working directory).

Programmatic control mirrors the cache layer: :func:`configure` swaps the
global store (tests point it at a temp file), :func:`disabled` is a
context manager turning persistence off for a block, and
:func:`active_store` is the hook the engine polls on every cache miss.

Stale-result safety: rows are keyed on a per-kernel *version* (a hash of
the kernel's source unless pinned via ``@cached_kernel(version=...)``), so
editing a kernel implementation orphans its old rows instead of replaying
them; ``python -m repro store vacuum`` garbage-collects the orphans.

Trust model: the store file is a local cache, not an interchange format —
values are pickles, so only point ``REPRO_STORE_PATH`` at files you (or
your CI) wrote.  Checksums guard against corruption, not tampering.
"""

from __future__ import annotations

import atexit
import os
import warnings

from .backend import (
    MISS,
    MODES,
    ResultStore,
    StoreDelta,
    StoreError,
    StoreRow,
    StoreStats,
)
from .keys import Unfingerprintable, encode_key, fingerprint

__all__ = [
    "MISS",
    "MODES",
    "ResultStore",
    "StoreDelta",
    "StoreError",
    "StoreRow",
    "StoreStats",
    "Unfingerprintable",
    "encode_key",
    "fingerprint",
    "RESULT_STORE",
    "active_store",
    "configure",
    "disabled",
]

DEFAULT_PATH = ".repro-store.sqlite"


def _mode_from_env() -> str:
    mode = os.environ.get("REPRO_STORE", "off").strip().lower()
    if mode not in MODES:
        warnings.warn(
            f"REPRO_STORE={mode!r} is not one of {MODES}; store disabled",
            stacklevel=2,
        )
        return "off"
    return mode


def _path_from_env() -> str:
    return os.environ.get("REPRO_STORE_PATH", DEFAULT_PATH)


#: The process-global store every :func:`cached_kernel` miss falls through
#: to.  Replace it with :func:`configure`, not by assignment.
RESULT_STORE = ResultStore(path=_path_from_env(), mode=_mode_from_env())


def configure(
    path: str | None = None,
    mode: str | None = None,
    batch_size: int | None = None,
) -> ResultStore:
    """Replace the global store (flushing the old one first).

    Unspecified parameters keep the current store's value.  Returns the
    new store so tests can hold a handle::

        store = repro.store.configure(path=tmp / "s.sqlite", mode="rw")
    """
    global RESULT_STORE
    previous = RESULT_STORE
    replacement = ResultStore(
        path=previous.path if path is None else str(path),
        mode=previous.mode if mode is None else mode,
        batch_size=previous.batch_size if batch_size is None else batch_size,
    )
    previous.close()
    RESULT_STORE = replacement
    return replacement


def active_store() -> ResultStore | None:
    """The global store when persistence is on, else ``None``.

    The engine's miss path calls this on every kernel miss; returning
    ``None`` keeps the store layer entirely out of the picture when
    ``REPRO_STORE=off``.
    """
    store = RESULT_STORE
    return store if store.active else None


def disabled():
    """Context manager disabling the global store (mirrors
    :func:`repro.engine.cache_disabled`)."""
    return RESULT_STORE.disabled()


@atexit.register
def _flush_at_exit() -> None:  # pragma: no cover - exercised at shutdown
    try:
        RESULT_STORE.flush()
    except Exception:
        pass
