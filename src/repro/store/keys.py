"""Stable content-addressed fingerprints for kernel cache keys.

The in-process :class:`~repro.engine.cache.KernelCache` keys entries on
Python objects and only needs ``hash()``/``==`` — both of which vary
between interpreter runs (string hash randomisation makes ``frozenset``
iteration order, and therefore naive ``pickle``/``repr`` serialisations,
process-dependent).  The persistent store needs a *stable* identity: the
same logical key must map to the same database row in every process,
forever.

:func:`fingerprint` therefore canonicalises a key recursively into a
tagged byte string — sets are serialised as the sorted multiset of their
elements' encodings, mappings as sorted ``(key, value)`` encodings — and
hashes it with SHA-256.  The encoder understands the primitives kernels
actually use (ints, strings, bools, floats, bytes, ``None``, tuples,
lists, sets, dicts) plus the repo's structural types (``Digraph``,
``Simplex``, ``SimplicialComplex``), recognised structurally so this
module stays import-free of the heavier packages.

Keys containing anything else are *unfingerprintable*: :func:`fingerprint`
returns ``None`` and the store layer silently skips persistence for that
entry (the in-memory cache still works).  Unknown types must not fall back
to ``repr`` — a wrong-but-stable encoding would be a correctness bug,
while refusing to persist is only a missed optimisation.
"""

from __future__ import annotations

import hashlib

__all__ = ["fingerprint", "encode_key", "Unfingerprintable"]

#: Bump when the encoding below changes shape; part of every digest, so a
#: format change reads as a store miss instead of a misinterpreted row.
_ENCODING_VERSION = b"repro-key-v1;"


class Unfingerprintable(TypeError):
    """The key contains an object with no stable canonical encoding."""


def encode_key(obj: object) -> bytes:
    """Canonical tagged byte encoding of a key object.

    Deterministic across processes and interpreter restarts; raises
    :class:`Unfingerprintable` for objects outside the supported closure.
    """
    # bool before int: True/False are ints but must not collide with 1/0.
    if obj is None:
        return b"N;"
    if obj is True:
        return b"T;"
    if obj is False:
        return b"F;"
    if isinstance(obj, int):
        body = str(obj).encode("ascii")
        return b"i" + body + b";"
    if isinstance(obj, float):
        body = repr(obj).encode("ascii")
        return b"f" + body + b";"
    if isinstance(obj, str):
        body = obj.encode("utf-8")
        return b"s%d:" % len(body) + body
    if isinstance(obj, bytes):
        return b"b%d:" % len(obj) + obj
    if isinstance(obj, tuple):
        return b"(" + b"".join(encode_key(x) for x in obj) + b")"
    if isinstance(obj, list):
        return b"[" + b"".join(encode_key(x) for x in obj) + b"]"
    if isinstance(obj, (set, frozenset)):
        return b"{" + b"".join(sorted(encode_key(x) for x in obj)) + b"}"
    if isinstance(obj, dict):
        items = sorted(
            (encode_key(k), encode_key(v)) for k, v in obj.items()
        )
        return b"<" + b"".join(k + v for k, v in items) + b">"
    return _encode_structural(obj)


def _encode_structural(obj: object) -> bytes:
    """Encode the repo's structural types without importing their modules.

    Recognition is by class name plus the defining attributes, which keeps
    this module dependency-free while staying precise enough that an
    unrelated type cannot be silently mis-encoded.
    """
    name = type(obj).__name__
    if name == "Digraph":
        n = getattr(obj, "n", None)
        rows = getattr(obj, "out_rows", None)
        if isinstance(n, int) and isinstance(rows, tuple):
            return b"G" + encode_key((n, rows))
    elif name == "Simplex":
        vertices = getattr(obj, "vertices", None)
        if isinstance(vertices, frozenset):
            return b"S" + encode_key(vertices)
    elif name == "SimplicialComplex":
        facets = getattr(obj, "facets", None)
        if facets is not None:
            return b"C" + encode_key(frozenset(facets))
    raise Unfingerprintable(
        f"no stable encoding for {type(obj).__module__}.{name}"
    )


def fingerprint(key: object) -> str | None:
    """SHA-256 hex digest of the canonical key encoding, or ``None``.

    ``None`` means the key cannot be persisted safely; callers must treat
    it as a store miss and skip the write.
    """
    try:
        encoded = encode_key(key)
    except Unfingerprintable:
        return None
    digest = hashlib.sha256()
    digest.update(_ENCODING_VERSION)
    digest.update(encoded)
    return digest.hexdigest()
