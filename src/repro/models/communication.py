"""Communication models (Defs 2.1, 2.2).

A communication model is a set of infinite sequences of communication graphs
(Def 2.1).  *Oblivious* models (Def 2.2) are products ``S^ω`` of a fixed set
of allowed graphs — the round adversary picks any allowed graph each round,
independently of history.

Infinite objects are represented intensionally: a model knows how to test
membership of a graph (per round), enumerate allowed graphs when finite and
small, and sample rounds for simulation.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator

from ..errors import ModelError
from ..graphs.digraph import Digraph

__all__ = ["CommunicationModel", "ObliviousModel", "ExplicitObliviousModel"]


class CommunicationModel(ABC):
    """Abstract round-based communication model over ``n`` processes."""

    def __init__(self, n: int):
        if n <= 0:
            raise ModelError(f"a model needs at least one process, got n={n}")
        self._n = n

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    @abstractmethod
    def allows(self, graph: Digraph, round_index: int) -> bool:
        """May ``graph`` occur at the given (0-based) round?"""

    @abstractmethod
    def sample_round(self, round_index: int, rng: random.Random) -> Digraph:
        """Draw an allowed graph for the given round."""

    def sample_execution(self, rounds: int, rng: random.Random) -> list[Digraph]:
        """Draw a prefix of an execution: one graph per round."""
        if rounds < 0:
            raise ModelError(f"rounds must be non-negative, got {rounds}")
        return [self.sample_round(r, rng) for r in range(rounds)]

    def admits_sequence(self, graphs: Iterable[Digraph]) -> bool:
        """True iff the finite sequence is a prefix of some execution."""
        return all(self.allows(g, r) for r, g in enumerate(graphs))


class ObliviousModel(CommunicationModel):
    """A model whose constraint is the same at every round (Def 2.2)."""

    def allows(self, graph: Digraph, round_index: int) -> bool:
        return self.allows_graph(graph)

    @abstractmethod
    def allows_graph(self, graph: Digraph) -> bool:
        """Round-independent membership test."""

    @abstractmethod
    def sample_graph(self, rng: random.Random) -> Digraph:
        """Draw an allowed graph."""

    def sample_round(self, round_index: int, rng: random.Random) -> Digraph:
        return self.sample_graph(rng)


class ExplicitObliviousModel(ObliviousModel):
    """An oblivious model given by an explicit finite set of allowed graphs.

    This is ``Com = S^ω`` with ``S`` finite and materialised — suitable for
    exhaustive verification.  Closed-above models use the lazier
    :class:`~repro.models.closed_above.ClosedAboveModel` instead.
    """

    def __init__(self, graphs: Iterable[Digraph]):
        graphs = frozenset(graphs)
        if not graphs:
            raise ModelError("an oblivious model needs at least one graph")
        n = next(iter(graphs)).n
        if any(g.n != n for g in graphs):
            raise ModelError("all graphs must share the same process count")
        super().__init__(n)
        self._graphs = graphs
        self._ordered = sorted(graphs)

    @property
    def graphs(self) -> frozenset[Digraph]:
        """The allowed graphs ``S``."""
        return self._graphs

    def allows_graph(self, graph: Digraph) -> bool:
        return graph in self._graphs

    def sample_graph(self, rng: random.Random) -> Digraph:
        return rng.choice(self._ordered)

    def iter_graphs(self) -> Iterator[Digraph]:
        """Deterministic iteration over the allowed graphs."""
        return iter(self._ordered)

    def __repr__(self) -> str:
        return f"ExplicitObliviousModel(n={self.n}, graphs={len(self._graphs)})"
