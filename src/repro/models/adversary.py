"""Round adversaries: strategies for picking the graph of each round.

The execution engine (:mod:`repro.agreement.execution`) is parameterised by
an adversary so the same algorithm can be run against random executions,
fixed scripted executions, or the stingiest (generator-only) choices a
closed-above adversary can make.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from ..errors import ModelError
from ..graphs.digraph import Digraph
from .closed_above import ClosedAboveModel
from .communication import CommunicationModel

__all__ = [
    "Adversary",
    "FixedSequenceAdversary",
    "RandomAdversary",
    "MinimalGraphAdversary",
]


class Adversary(ABC):
    """Chooses the communication graph of every round."""

    @abstractmethod
    def graph_for_round(self, round_index: int) -> Digraph:
        """The graph delivered at the (0-based) round."""


class FixedSequenceAdversary(Adversary):
    """Plays a scripted sequence of graphs; repeats the last one if asked on.

    Validates the script against a model when one is given.
    """

    def __init__(
        self,
        graphs: Sequence[Digraph],
        model: CommunicationModel | None = None,
    ):
        graphs = tuple(graphs)
        if not graphs:
            raise ModelError("a scripted adversary needs at least one graph")
        if model is not None and not model.admits_sequence(graphs):
            raise ModelError("scripted sequence is not allowed by the model")
        self._graphs = graphs

    def graph_for_round(self, round_index: int) -> Digraph:
        if round_index < len(self._graphs):
            return self._graphs[round_index]
        return self._graphs[-1]


class RandomAdversary(Adversary):
    """Samples each round independently from the model."""

    def __init__(self, model: CommunicationModel, rng: random.Random):
        self._model = model
        self._rng = rng

    def graph_for_round(self, round_index: int) -> Digraph:
        return self._model.sample_round(round_index, self._rng)


class MinimalGraphAdversary(Adversary):
    """Always plays a generator of a closed-above model (stingiest choice).

    Extra messages only help oblivious min-based algorithms, so restricting
    to generators realises the worst case for the algorithms of Sec 3/6;
    the verification harness quantifies over all generator sequences.
    """

    def __init__(self, model: ClosedAboveModel, rng: random.Random):
        self._model = model
        self._rng = rng

    def graph_for_round(self, round_index: int) -> Digraph:
        return self._model.sample_minimal_graph(self._rng)
