"""Round-based communication models (Sec 2) and multi-round products (Sec 6)."""

from .adversary import (
    Adversary,
    FixedSequenceAdversary,
    MinimalGraphAdversary,
    RandomAdversary,
)
from .closed_above import (
    ClosedAboveModel,
    simple_closed_above,
    symmetric_closed_above,
)
from .communication import (
    CommunicationModel,
    ExplicitObliviousModel,
    ObliviousModel,
)
from .heard_of import (
    NonSplitModel,
    TournamentModel,
    nonempty_kernel_model,
    tournament_closed_above,
)
from .products import (
    closure_product_gap,
    is_realisable_product,
    product_model,
    round_product_generators,
    single_edge_realisable,
)

__all__ = [
    "Adversary",
    "FixedSequenceAdversary",
    "MinimalGraphAdversary",
    "RandomAdversary",
    "ClosedAboveModel",
    "simple_closed_above",
    "symmetric_closed_above",
    "CommunicationModel",
    "ExplicitObliviousModel",
    "ObliviousModel",
    "NonSplitModel",
    "TournamentModel",
    "nonempty_kernel_model",
    "tournament_closed_above",
    "closure_product_gap",
    "is_realisable_product",
    "product_model",
    "round_product_generators",
    "single_edge_realisable",
]
