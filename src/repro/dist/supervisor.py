"""Worker supervision: keep N workers alive across crashes.

``python -m repro worker --connect HOST:PORT --spawn auto`` runs this
instead of a fixed fleet: :class:`Supervisor` forks ``workers`` worker
processes (``--spawn auto`` sizes to the machine's cores) and then
watches them.  A worker that *reports* — the coordinator said ``done``,
vanished cleanly, or the worker raised a real :class:`DistError` — is
finished: its slot retires.  A worker that **dies without reporting**
(SIGKILL, OOM, segfault) crashed mid-service, so the supervisor respawns
its slot after a jittered exponential backoff, up to ``max_respawns``
generations per slot.

A worker report also means the *coordinator* is winding down — batch
coordinators broadcast ``done`` to everyone at completion, persistent
ones at close, and a vanished coordinator ends every slot the same way.
So the first report starts a short stand-down grace: pending respawns
are cancelled and slots still trying to connect (a respawn racing batch
completion) are terminated and counted as ``stood_down``, not as
failures — there is nothing left for them to serve.

Respawns are cheap by design, not by luck: a respawned worker runs the
ordinary :func:`~repro.dist.worker.run_worker` path, so its ``hello``
carries the local store's incremental ``seed_digest`` — the coordinator
streams only rows the worker does not already hold — and a ``respawn``
generation, which the coordinator counts into ``dist status`` (the
``respawns`` field) so churn is visible from either side.  Backoff is
jittered (uniform up-scatter) so a fleet killed together does not
reconnect as a thundering herd.

The supervisor registers a ``supervisor`` stats provider with
:data:`~repro.obs.metrics.METRICS` while running: target worker count,
workers currently alive, respawns so far.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import socket
import time
from dataclasses import dataclass, field
from queue import Empty

from ..errors import DistError
from ..obs.metrics import METRICS
from .worker import WorkerReport, run_worker

__all__ = [
    "Supervisor",
    "SupervisorReport",
    "resolve_spawn",
]


def resolve_spawn(spec: str | int) -> int:
    """Map ``--spawn auto|N`` onto a worker count.

    ``auto`` sizes to the machine (``os.cpu_count()``); an integer is
    taken literally.  Anything else — including non-positive counts — is
    a :class:`~repro.errors.DistError`, mirroring ``--jobs`` validation.
    """
    if isinstance(spec, str):
        spec = spec.strip().lower()
        if spec == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            spec = int(spec)
        except ValueError:
            raise DistError(
                f"--spawn must be 'auto' or a positive integer, got {spec!r}"
            ) from None
    if spec < 1:
        raise DistError(f"--spawn must be positive, got {spec}")
    return int(spec)


#: Seconds after the first worker report before remaining slots are
#: stood down.  Long enough for the sibling ``done`` farewells already
#: in flight to land, short enough that a respawn racing batch
#: completion does not sit in connect-retry against a dead address.
STAND_DOWN_GRACE = 1.0


@dataclass(frozen=True)
class SupervisorReport:
    """What a supervision session did, slot by slot."""

    target: int
    """Worker slots the supervisor was asked to keep alive."""
    launched: int
    """Worker processes started in total (``target`` + respawns)."""
    respawns: int
    """Crashed slots restarted (deaths without a worker report)."""
    stood_down: int = 0
    """Slots retired benignly after the coordinator finished: cancelled
    pending respawns and workers that never got to connect."""
    reports: tuple[WorkerReport, ...] = ()
    errors: tuple[str, ...] = ()
    """Slots that ended in failure: real worker errors (unreachable
    coordinator, version reject) and slots that exhausted their respawn
    budget."""
    elapsed: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.errors

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.reports)

    def describe(self) -> str:
        lines = [
            f"supervisor: {self.target} worker slot(s), "
            f"{self.launched} launch(es), {self.respawns} respawn(s), "
            f"{self.stood_down} stood down, {self.elapsed:.1f}s"
        ]
        lines.extend(f"  {report.describe()}" for report in self.reports)
        lines.extend(f"  error: {error}" for error in self.errors)
        return "\n".join(lines)


def _supervised_worker(host, port, worker_id, retry, queue, rank, respawn):
    """Child entry point: tag the slot's report with its rank."""
    try:
        report = run_worker(
            host, port, worker_id=worker_id, retry=retry, respawn=respawn
        )
        queue.put((rank, report))
    except Exception as exc:
        queue.put((rank, DistError(str(exc))))


@dataclass
class _Slot:
    """One supervised worker slot across its restart generations."""

    rank: int
    process: object = None
    generation: int = 0
    """0 before the first launch; each (re)launch increments it, and
    generations above 1 announce themselves to the coordinator as
    respawns."""
    respawn_at: float | None = None
    """Monotonic time the pending respawn is due, None when not waiting."""
    finished: bool = False


class Supervisor:
    """Keep ``workers`` worker processes serving one coordinator.

    Parameters
    ----------
    host, port:
        The coordinator to serve, as for
        :func:`~repro.dist.worker.run_worker`.
    workers:
        Worker slots to keep alive (see :func:`resolve_spawn`).
    retry:
        Per-worker connection retry budget, seconds.
    max_respawns:
        Restart budget *per slot*; a slot that crashes more often is
        abandoned with an error (a worker dying this reliably is a real
        problem a blind restart loop would only mask).
    backoff, backoff_max, jitter:
        Respawn delay: ``min(backoff * 2**(crashes-1), backoff_max)``
        stretched by up to ``jitter`` (fraction, uniform) so restarts
        de-synchronise.
    log:
        Optional one-line progress sink (launches, crashes, respawns).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        workers: int = 1,
        retry: float = 10.0,
        max_respawns: int = 3,
        backoff: float = 0.5,
        backoff_max: float = 30.0,
        jitter: float = 0.5,
        log=None,
    ):
        if workers < 1:
            raise DistError(f"workers must be positive, got {workers}")
        if max_respawns < 0:
            raise DistError(
                f"max_respawns must be non-negative, got {max_respawns}"
            )
        self._host = host
        self._port = port
        self._workers = workers
        self._retry = retry
        self._max_respawns = max_respawns
        self._backoff = backoff
        self._backoff_max = backoff_max
        self._jitter = jitter
        self._log = log or (lambda message: None)
        self.launched = 0
        self.respawns = 0
        self.stood_down = 0
        self.reports: list[WorkerReport] = []
        self.errors: list[str] = []
        self._slots: list[_Slot] = []
        self._stand_down_at: float | None = None

    # ------------------------------------------------------------------
    def pids(self) -> list[int]:
        """PIDs of the currently live worker processes (chaos hooks)."""
        return [
            slot.process.pid
            for slot in self._slots
            if slot.process is not None and slot.process.is_alive()
        ]

    def alive(self) -> int:
        return len(self.pids())

    def stats(self) -> dict:
        """The ``supervisor`` stats provider payload."""
        return {
            "target": self._workers,
            "alive": self.alive(),
            "launched": self.launched,
            "respawns": self.respawns,
            "stood_down": self.stood_down,
            "finished": sum(1 for slot in self._slots if slot.finished),
        }

    # ------------------------------------------------------------------
    def _delay(self, crashes: int) -> float:
        base = min(
            self._backoff * (2 ** max(crashes - 1, 0)), self._backoff_max
        )
        return base * (1.0 + random.uniform(0.0, self._jitter))

    def _launch(self, slot: _Slot, context, queue, base_name: str) -> None:
        slot.generation += 1
        slot.respawn_at = None
        respawn = slot.generation - 1  # generation 1 is a first launch
        slot.process = context.Process(
            target=_supervised_worker,
            args=(
                self._host,
                self._port,
                f"{base_name}.{slot.rank}g{slot.generation}",
                self._retry,
                queue,
                slot.rank,
                respawn,
            ),
            daemon=False,
        )
        slot.process.start()
        self.launched += 1
        if respawn:
            self._log(
                f"supervisor: respawned slot {slot.rank} "
                f"(generation {slot.generation}, pid {slot.process.pid})"
            )
        else:
            self._log(
                f"supervisor: launched slot {slot.rank} "
                f"(pid {slot.process.pid})"
            )

    def _record(self, rank: int, item) -> None:
        """Fold one queued child report into the session's accounting."""
        slot = self._slots[rank]
        if slot.finished:
            # A stood-down child's retry-exhaustion error can still be
            # in flight when the slot is retired; it is not news.
            return
        slot.finished = True
        if isinstance(item, DistError):
            if self._stand_down_at is not None:
                # The coordinator already finished; a slot that could
                # not reach it is the expected wind-down, not a failure.
                self.stood_down += 1
                self._log(f"supervisor: slot {rank} stood down ({item})")
            else:
                self.errors.append(f"slot {rank}: {item}")
        else:
            self.reports.append(item)
            if self._stand_down_at is None:
                # ``done`` is broadcast fleet-wide: the coordinator is
                # winding down for everyone, not just this slot.
                self._stand_down_at = time.monotonic() + STAND_DOWN_GRACE

    def _stand_down(self, slot: _Slot) -> None:
        """Retire a slot benignly after the coordinator has finished."""
        process = slot.process
        if (
            slot.respawn_at is None
            and process is not None
            and process.is_alive()
        ):
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck child
                process.kill()
                process.join(timeout=2.0)
        slot.finished = True
        self.stood_down += 1
        self._log(
            f"supervisor: stood down slot {slot.rank} "
            "(coordinator finished)"
        )

    def run(self) -> SupervisorReport:
        """Supervise until every slot has finished or been abandoned."""
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        queue = context.Queue()
        base_name = f"{socket.gethostname()}:{os.getpid()}"
        start = time.monotonic()
        self._slots = [_Slot(rank=rank) for rank in range(self._workers)]
        METRICS.register_stats("supervisor", self.stats)
        for slot in self._slots:
            self._launch(slot, context, queue, base_name)
        try:
            while not all(slot.finished for slot in self._slots):
                try:
                    rank, item = queue.get(timeout=0.25)
                except Empty:
                    pass
                else:
                    self._record(rank, item)
                    continue
                now = time.monotonic()
                standing_down = (
                    self._stand_down_at is not None
                    and now >= self._stand_down_at
                )
                for slot in self._slots:
                    if slot.finished:
                        continue
                    if standing_down:
                        self._stand_down(slot)
                        continue
                    if slot.respawn_at is not None:
                        if now >= slot.respawn_at:
                            self._launch(slot, context, queue, base_name)
                        continue
                    process = slot.process
                    if process is not None and not process.is_alive():
                        # Dead without a report: crashed.  (A report may
                        # still be in flight on the queue; one more get()
                        # round trips before this branch re-fires because
                        # the queue drain above runs first each loop.)
                        try:
                            rank2, item = queue.get(timeout=0.25)
                        except Empty:
                            pass
                        else:
                            self._record(rank2, item)
                            continue
                        if slot.finished:
                            continue
                        crashes = slot.generation  # every death so far
                        if crashes > self._max_respawns:
                            slot.finished = True
                            self.errors.append(
                                f"slot {slot.rank}: worker died without "
                                f"reporting {crashes} time(s); respawn "
                                "budget exhausted"
                            )
                            continue
                        self.respawns += 1
                        delay = self._delay(crashes)
                        slot.respawn_at = now + delay
                        self._log(
                            f"supervisor: slot {slot.rank} died without "
                            f"reporting (pid {process.pid}); respawning "
                            f"in {delay:.2f}s"
                        )
            for slot in self._slots:
                if slot.process is not None:
                    slot.process.join(timeout=5.0)
        finally:
            elapsed = time.monotonic() - start
        return SupervisorReport(
            target=self._workers,
            launched=self.launched,
            respawns=self.respawns,
            stood_down=self.stood_down,
            reports=tuple(self.reports),
            errors=tuple(self.errors),
            elapsed=elapsed,
        )
