"""One protocol, three executors: serial, process pool, distributed.

Every batch consumer in the codebase — ``run_batch`` itself,
``bounds.bound_report_many``, the experiment runner, and the sharded
sweeps — executes through an object satisfying :class:`Executor`:

* :class:`SerialExecutor` — in-process, the reference semantics;
* :class:`PoolExecutor` — ``multiprocessing`` fan-out over one host's
  cores (PR 1's driver);
* :class:`DistExecutor` — a TCP coordinator serving any number of
  ``python -m repro worker`` processes, on this host or others.

All three return the same :class:`~repro.engine.batch.BatchResult` with
results in submission order and merged statistics; the equivalence tests
pin serial == pool == dist.  :func:`make_executor` maps the CLI surface
(``--jobs N`` / ``--distributed HOST:PORT``) onto the right one.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Protocol, runtime_checkable

from ..engine.batch import BatchResult, Job, run_batch
from ..errors import DistError

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "DistExecutor",
    "make_executor",
    "parse_address",
]


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a batch of jobs with run_batch semantics."""

    def run(
        self,
        tasks: Sequence[Job],
        *,
        warmup: Callable[[], object] | None = None,
        on_error: str = "raise",
    ) -> BatchResult: ...


class SerialExecutor:
    """The in-process reference path (``jobs=1``)."""

    jobs = 1

    def run(self, tasks, *, warmup=None, on_error="raise"):
        return run_batch(tasks, jobs=1, warmup=warmup, on_error=on_error)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class PoolExecutor:
    """One host's cores via the ``multiprocessing`` batch driver."""

    def __init__(self, jobs: int):
        if jobs < 1:
            raise DistError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs

    def run(self, tasks, *, warmup=None, on_error="raise"):
        return run_batch(
            tasks, jobs=self.jobs, warmup=warmup, on_error=on_error
        )

    def __repr__(self) -> str:
        return f"PoolExecutor(jobs={self.jobs})"


class DistExecutor:
    """A coordinator serving jobs to TCP workers (multi-host fan-out).

    ``run`` binds the coordinator, serves every connected
    ``python -m repro worker``, and blocks until all results are in — the
    store-backed warm start and parent-only SQLite writes of
    :mod:`repro.dist.coordinator` included.  ``bound_address`` holds the
    actual ``(host, port)`` once bound (useful with port 0), and
    ``on_bound`` is called with it so callers can launch workers exactly
    when the queue is up.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        lease_timeout: float = 60.0,
        log: Callable[[str], None] | None = None,
        on_bound: Callable[[tuple[str, int]], object] | None = None,
    ):
        if isinstance(address, str):
            address = parse_address(address)
        self.host, self.port = address
        self.lease_timeout = lease_timeout
        self.log = log
        self.on_bound = on_bound
        self.bound_address: tuple[str, int] | None = None
        self.last_requeues = 0
        self.last_workers = 0

    def run(self, tasks, *, warmup=None, on_error="raise"):
        from .coordinator import Coordinator

        coordinator = Coordinator(
            tasks,
            host=self.host,
            port=self.port,
            lease_timeout=self.lease_timeout,
            warmup=warmup,
            log=self.log,
        )
        with coordinator:
            self.bound_address = coordinator.address
            if self.on_bound is not None:
                self.on_bound(self.bound_address)
            result = coordinator.serve(on_error=on_error)
        self.last_requeues = coordinator.requeues
        self.last_workers = result.jobs
        return result

    def __repr__(self) -> str:
        return f"DistExecutor({self.host}:{self.port})"


def parse_address(spec: str) -> tuple[str, int]:
    """Parse ``HOST:PORT``, ``:PORT`` or bare ``PORT`` into an address.

    An omitted host means ``127.0.0.1`` — serving beyond localhost is an
    explicit decision (``0.0.0.0:PORT``), since the job protocol is a
    single-trust-domain transport (see :mod:`repro.dist.protocol`).
    """
    spec = spec.strip()
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "", spec
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise DistError(
            f"invalid address {spec!r}: expected HOST:PORT or :PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise DistError(f"invalid port {port} in address {spec!r}")
    return host, port


def make_executor(
    jobs: int = 1,
    distributed: str | None = None,
    *,
    log: Callable[[str], None] | None = None,
) -> Executor:
    """Map the CLI surface onto an executor.

    ``distributed`` (a ``HOST:PORT`` / ``:PORT`` spec) wins over ``jobs``;
    otherwise ``jobs > 1`` selects the pool and ``jobs == 1`` the serial
    reference path.
    """
    if distributed is not None:
        return DistExecutor(distributed, log=log)
    if jobs > 1:
        return PoolExecutor(jobs)
    return SerialExecutor()
