"""One protocol, three executors: serial, process pool, distributed.

Every batch consumer in the codebase — ``run_batch`` itself,
``bounds.bound_report_many``, the experiment runner, and the sharded
sweeps — executes through an object satisfying :class:`Executor`:

* :class:`SerialExecutor` — in-process, the reference semantics;
* :class:`PoolExecutor` — ``multiprocessing`` fan-out over one host's
  cores (PR 1's driver);
* :class:`DistExecutor` — a TCP coordinator serving any number of
  ``python -m repro worker`` processes, on this host or others.

All three return the same :class:`~repro.engine.batch.BatchResult` with
results in submission order and merged statistics; the equivalence tests
pin serial == pool == dist.  :func:`make_executor` maps the CLI surface
(``--jobs N`` / ``--distributed HOST:PORT``) onto the right one.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from collections.abc import Callable, Sequence
from typing import Protocol, runtime_checkable

from ..engine.batch import BatchResult, Job, run_batch
from ..errors import DistError
from .protocol import (
    DIST_STATUS,
    DIST_STATUS_REPLY,
    PROTOCOL_VERSION,
    ProtocolError,
    request,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "DistExecutor",
    "make_executor",
    "parse_address",
    "probe_status",
    "watch_status",
]


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a batch of jobs with run_batch semantics.

    ``reductions`` is the two-phase plan of
    :class:`~repro.engine.batch.Reduction`\\ s: every executor fires each
    reduction in the batch parent (serial driver, pool parent, or
    distributed coordinator) as soon as its last input job lands.
    """

    def run(
        self,
        tasks: Sequence[Job],
        *,
        warmup: Callable[[], object] | None = None,
        on_error: str = "raise",
        reductions: Sequence = (),
        completed: Sequence[int] = (),
        checkpoint=None,
    ) -> BatchResult: ...


class SerialExecutor:
    """The in-process reference path (``jobs=1``)."""

    jobs = 1

    def run(
        self,
        tasks,
        *,
        warmup=None,
        on_error="raise",
        reductions=(),
        completed=(),
        checkpoint=None,
    ):
        return run_batch(
            tasks,
            jobs=1,
            warmup=warmup,
            on_error=on_error,
            reductions=reductions,
            completed=completed,
            checkpoint=checkpoint,
        )

    def __repr__(self) -> str:
        return "SerialExecutor()"


class PoolExecutor:
    """One host's cores via the ``multiprocessing`` batch driver."""

    def __init__(self, jobs: int):
        if jobs < 1:
            raise DistError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs

    def run(
        self,
        tasks,
        *,
        warmup=None,
        on_error="raise",
        reductions=(),
        completed=(),
        checkpoint=None,
    ):
        return run_batch(
            tasks,
            jobs=self.jobs,
            warmup=warmup,
            on_error=on_error,
            reductions=reductions,
            completed=completed,
            checkpoint=checkpoint,
        )

    def __repr__(self) -> str:
        return f"PoolExecutor(jobs={self.jobs})"


class DistExecutor:
    """A coordinator serving jobs to TCP workers (multi-host fan-out).

    ``run`` binds the coordinator, serves every connected
    ``python -m repro worker``, and blocks until all results are in — the
    store-backed warm start and parent-only SQLite writes of
    :mod:`repro.dist.coordinator` included.  ``bound_address`` holds the
    actual ``(host, port)`` once bound (useful with port 0), and
    ``on_bound`` is called with it so callers can launch workers exactly
    when the queue is up.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        lease_timeout: float = 60.0,
        seed_store: bool = True,
        remote_loads: bool | None = None,
        log: Callable[[str], None] | None = None,
        on_bound: Callable[[tuple[str, int]], object] | None = None,
    ):
        if isinstance(address, str):
            address = parse_address(address)
        self.host, self.port = address
        self.lease_timeout = lease_timeout
        self.seed_store = seed_store
        self.remote_loads = remote_loads
        self.log = log
        self.on_bound = on_bound
        self.bound_address: tuple[str, int] | None = None
        self.last_requeues = 0
        self.last_workers = 0
        self.last_rows_seeded = 0
        self.last_loads_served = 0
        self.last_respawns = 0
        self.last_replayed = 0
        self.last_metrics: dict | None = None
        """Coordinator-side metrics of the last run (the same mapping as
        ``BatchResult.dist_metrics``): per-worker throughput snapshots
        plus the seed/serve/requeue counters."""

    def run(
        self,
        tasks,
        *,
        warmup=None,
        on_error="raise",
        reductions=(),
        completed=(),
        checkpoint=None,
    ):
        from .coordinator import Coordinator

        coordinator = Coordinator(
            tasks,
            host=self.host,
            port=self.port,
            lease_timeout=self.lease_timeout,
            warmup=warmup,
            seed_store=self.seed_store,
            remote_loads=self.remote_loads,
            reductions=reductions,
            completed=completed,
            checkpoint=checkpoint,
            log=self.log,
        )
        with coordinator:
            self.bound_address = coordinator.address
            if self.on_bound is not None:
                self.on_bound(self.bound_address)
            result = coordinator.serve(on_error=on_error)
        self.last_requeues = coordinator.requeues
        self.last_workers = result.jobs
        self.last_rows_seeded = coordinator.rows_seeded
        self.last_loads_served = coordinator.loads_served
        self.last_respawns = coordinator.respawns
        self.last_replayed = coordinator.replayed
        self.last_metrics = result.dist_metrics
        return result

    def __repr__(self) -> str:
        return f"DistExecutor({self.host}:{self.port})"


def parse_address(spec: str) -> tuple[str, int]:
    """Parse ``HOST:PORT``, ``:PORT`` or bare ``PORT`` into an address.

    An omitted host means ``127.0.0.1`` — serving beyond localhost is an
    explicit decision (``0.0.0.0:PORT``), since the job protocol is a
    single-trust-domain transport (see :mod:`repro.dist.protocol`).
    """
    spec = spec.strip()
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "", spec
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise DistError(
            f"invalid address {spec!r}: expected HOST:PORT or :PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise DistError(f"invalid port {port} in address {spec!r}")
    return host, port


def make_executor(
    jobs: int = 1,
    distributed: str | None = None,
    *,
    seed_store: bool = True,
    log: Callable[[str], None] | None = None,
    config=None,
) -> Executor:
    """Map the CLI surface onto an executor.

    The keyword surface is a deprecated shim over
    :class:`repro.config.ExecutorConfig`: pass ``config`` and the other
    arguments (except ``log``) are ignored; pass the old keywords and an
    equivalent config is built for you.  Either way
    :meth:`~repro.config.ExecutorConfig.make` decides — ``distributed``
    (a ``HOST:PORT`` / ``:PORT`` spec) wins over ``jobs``, ``jobs > 1``
    selects the pool, ``jobs == 1`` the serial reference path, and
    ``seed_store`` maps ``--seed-store on|off`` onto the coordinator's
    store-seeding handshake (and remote loads).
    """
    if config is None:
        from ..config import ExecutorConfig

        config = ExecutorConfig(
            jobs=jobs, distributed=distributed, seed_store=seed_store
        )
    return config.make(log=log)


def probe_status(
    address: str | tuple[str, int], *, timeout: float = 5.0
) -> dict:
    """Ask a running coordinator for its status snapshot.

    Speaks the one-shot ``status`` conversation of
    :mod:`~repro.dist.protocol`: queue depth, leases, requeues,
    per-worker throughput, and the seed/serve counters of the store data
    plane.  ``python -m repro dist status HOST:PORT`` is the CLI wrapper.
    Raises :class:`~repro.errors.DistError` when nothing is listening,
    the peer is not a coordinator, or the protocol versions mismatch.
    """
    if isinstance(address, str):
        address = parse_address(address)
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise DistError(
            f"no coordinator listening at {address[0]}:{address[1]}: {exc}"
        ) from exc
    try:
        sock.settimeout(timeout)
        try:
            kind, payload = request(
                sock, DIST_STATUS, {"version": PROTOCOL_VERSION}
            )
        except (OSError, ProtocolError) as exc:
            raise DistError(f"status probe failed: {exc}") from exc
        if kind == "reject":
            reason = (
                payload.get("reason") if isinstance(payload, dict) else payload
            )
            raise DistError(f"status probe rejected: {reason}")
        if kind != DIST_STATUS_REPLY or not isinstance(payload, dict):
            raise DistError(f"unexpected status reply {kind!r}")
        return payload
    finally:
        sock.close()


def render_status_json(status: dict, *, indent: int | None = None) -> str:
    """The one JSON rendering of a coordinator status snapshot.

    ``dist status --json``, ``--watch --json``, and the service's
    ``GET /v1/status`` all emit the same dict — the coordinator's
    ``status_snapshot()``, which is also what the ``dist_status`` stats
    provider feeds into ``MetricsRegistry.snapshot()`` — so the
    serialisation lives in exactly one place.
    """
    return json.dumps(status, sort_keys=True, indent=indent)


#: ANSI clear-screen + cursor-home, the "reprint in place" of watch mode.
_CLEAR = "\x1b[2J\x1b[H"


def watch_status(
    address: str | tuple[str, int],
    *,
    interval: float = 2.0,
    count: int | None = None,
    render: Callable[[dict], str] | None = None,
    stream=None,
    clear: bool = True,
    timeout: float = 5.0,
    probe: Callable[..., dict] = probe_status,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll a coordinator's status until it goes away; returns poll count.

    The engine behind ``python -m repro dist status --watch N``: probe,
    print, sleep, repeat.  ``render`` formats each snapshot (``None``
    emits one compact JSON object per poll — the ``--json`` line
    protocol); ``clear`` prefixes each human-mode reprint with an ANSI
    clear-screen so the terminal shows one live panel instead of a
    scroll.  A coordinator that stops answering *after* at least one
    successful poll ends the watch normally (the run finished); an
    address that never answers raises :class:`~repro.errors.DistError`
    immediately, exactly like a single-shot probe.  ``count`` bounds the
    polls (``None`` = until the coordinator goes away); ``probe`` and
    ``sleep`` are injectable for tests.
    """
    if interval <= 0:
        raise DistError(f"watch interval must be positive, got {interval}")
    if count is not None and count < 1:
        raise DistError(f"watch count must be positive, got {count}")
    out = stream if stream is not None else sys.stdout
    polls = 0
    while count is None or polls < count:
        try:
            status = probe(address, timeout=timeout)
        except DistError:
            if polls == 0:
                raise
            break  # was answering, now gone: the run finished
        polls += 1
        if render is None:
            text = render_status_json(status)
        else:
            text = render(status)
            if clear:
                text = _CLEAR + text
        out.write(text + "\n")
        if hasattr(out, "flush"):
            out.flush()
        if count is not None and polls >= count:
            break
        sleep(interval)
    return polls
