"""Distributed execution: the batch driver generalised beyond one host.

PR 1's ``run_batch`` fans jobs over one machine's cores; this package
adds the third execution mode — a TCP work queue spanning hosts — behind
a common executor protocol:

* :mod:`~repro.dist.protocol` — length-prefixed pickled frames with a
  version handshake (one trust domain; never expose the port publicly);
* :mod:`~repro.dist.coordinator` — serves jobs, collects results, owns
  every SQLite write (the PR 2 parent-flush invariant, cluster-wide),
  requeues jobs whose worker dies or stops heartbeating;
* :mod:`~repro.dist.worker` — ``python -m repro worker --connect
  HOST:PORT``; executes jobs through the same kernel-cache/result-store
  tiers as local runs and streams results + store-row deltas home;
* :mod:`~repro.dist.executor` — :class:`SerialExecutor` /
  :class:`PoolExecutor` / :class:`DistExecutor` behind one protocol, and
  :func:`make_executor` mapping ``--jobs`` / ``--distributed`` onto them.

Delivery is at-least-once with idempotent jobs: results are pure
functions of content-addressed inputs, so a requeued job's replay is
harmless and the first result per job wins.  Equivalence tests pin that
serial, pool, and distributed execution produce identical results.
"""

from .executor import (
    DistExecutor,
    Executor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
    parse_address,
)
from .coordinator import Coordinator
from .protocol import PROTOCOL_VERSION, ProtocolError
from .worker import WorkerReport, run_worker, run_workers

__all__ = [
    "Coordinator",
    "DistExecutor",
    "Executor",
    "PoolExecutor",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SerialExecutor",
    "WorkerReport",
    "make_executor",
    "parse_address",
    "run_worker",
    "run_workers",
]
