"""Distributed execution: the batch driver generalised beyond one host.

PR 1's ``run_batch`` fans jobs over one machine's cores; this package
adds the third execution mode — a TCP work queue spanning hosts — behind
a common executor protocol:

* :mod:`~repro.dist.protocol` — length-prefixed pickled frames with a
  version handshake (one trust domain; never expose the port publicly);
* :mod:`~repro.dist.coordinator` — serves jobs, collects results, owns
  every SQLite write (the PR 2 parent-flush invariant, cluster-wide),
  requeues jobs whose worker dies or stops heartbeating;
* :mod:`~repro.dist.worker` — ``python -m repro worker --connect
  HOST:PORT``; executes jobs through the same kernel-cache/result-store
  tiers as local runs and streams results + store-row deltas home;
* :mod:`~repro.dist.executor` — :class:`SerialExecutor` /
  :class:`PoolExecutor` / :class:`DistExecutor` behind one protocol, and
  :func:`make_executor` mapping ``--jobs`` / ``--distributed`` onto them.

Delivery is at-least-once with idempotent jobs: results are pure
functions of content-addressed inputs, so a requeued job's replay is
harmless and the first result per job wins.  Equivalence tests pin that
serial, pool, and distributed execution produce identical results.

Network warm start (PR 4): the coordinator's store is the warm substrate
for the whole cluster.  On handshake it streams its relevant rows into
each remote worker's in-memory seed tier (``--seed-store on|off``), and
worker store misses may fall through to a
:class:`~repro.dist.worker.RemoteStoreTier` — a ``store_load`` round trip
— so results banked mid-run by other workers are reused too.  Both paths
are read-only; the cluster-wide single-writer invariant stands.
:func:`probe_status` (CLI: ``python -m repro dist status HOST:PORT``)
reports queue depth, leases, per-worker throughput, and rows
seeded/served against a live coordinator.

Survivability (PR 10): :mod:`~repro.dist.checkpoint` snapshots the
coordinator's queue accounting atomically alongside the store, so
``sweep --resume-from CHECKPOINT`` rehydrates the exact remaining plan
after a coordinator crash (completed jobs replay as warm store hits —
zero kernel recompute); :mod:`~repro.dist.supervisor` keeps ``--spawn
auto|N`` worker processes alive across crashes with jittered-backoff
respawns, each respawn reconnecting warm via the incremental seed
digest; and leases scale with each job's planned cost estimate, so a
crashed worker's cheap sub-shard requeues in seconds while a giant
class keeps a proportionally longer lease.
"""

from .checkpoint import (
    CheckpointState,
    CheckpointWriter,
    load_checkpoint,
    resume_completed,
    write_checkpoint,
)
from .executor import (
    DistExecutor,
    Executor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
    parse_address,
    probe_status,
    render_status_json,
    watch_status,
)
from .coordinator import Coordinator
from .protocol import PROTOCOL_VERSION, ProtocolError
from .supervisor import Supervisor, SupervisorReport, resolve_spawn
from .worker import RemoteStoreTier, WorkerReport, run_worker, run_workers

__all__ = [
    "CheckpointState",
    "CheckpointWriter",
    "Coordinator",
    "DistExecutor",
    "Executor",
    "PoolExecutor",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteStoreTier",
    "SerialExecutor",
    "Supervisor",
    "SupervisorReport",
    "WorkerReport",
    "load_checkpoint",
    "make_executor",
    "parse_address",
    "probe_status",
    "render_status_json",
    "resolve_spawn",
    "resume_completed",
    "run_worker",
    "run_workers",
    "watch_status",
    "write_checkpoint",
]
