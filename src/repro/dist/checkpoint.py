"""Coordinator checkpoint/resume: crash-survivable queue state.

The result store already makes *computation* crash-survivable — every
finished kernel is banked as it lands, so a replayed job is a warm hit.
What dies with a coordinator is the *queue*: which jobs of the plan had
completed, which were still pending or leased, how many requeues had
happened, and (in persistent serve mode) which submitted jobs were still
in flight.  This module snapshots exactly that state atomically alongside
the store, so ``sweep --resume-from CHECKPOINT`` (or a restarted
``ServeService``) rehydrates the remaining plan instead of re-planning
and re-dispatching everything.

Format: a pickled :class:`CheckpointState` (version-tagged), written via
the classic tmp-file + :func:`os.replace` dance so a crash mid-write
leaves the previous snapshot intact.  Pickle, not JSON, deliberately:
persistent-mode pending jobs are whole :class:`~repro.engine.Job`
objects whose arguments include graphs, and the dist wire protocol is
already pickled frames within one trust domain — the checkpoint file has
the same trust boundary as the store file next to it (never load
checkpoints from untrusted sources).

Completed work is recorded by job *name*, not submission index: under
the observed cost model a re-built plan may order (or even split) jobs
differently, and names are the stable identity that survives
re-planning.  The resume path maps names onto the fresh plan and drops
(with a count) any names the new plan no longer contains.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field

from ..errors import DistError

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointState",
    "CheckpointWriter",
    "load_checkpoint",
    "write_checkpoint",
]

CHECKPOINT_VERSION = 1

#: Default minimum seconds between two checkpoint writes.  Completions
#: can land hundreds per second on small shards; rewriting the file each
#: time would turn the checkpoint into the run's bottleneck.  Crash
#: windows lose at most this much queue progress — and the store has the
#: finished rows anyway, so the loss is re-dispatch time, not compute.
DEFAULT_INTERVAL = 2.0


@dataclass(frozen=True)
class CheckpointState:
    """One atomic snapshot of a coordinator's queue accounting.

    ``fingerprint`` identifies the plan this snapshot belongs to (for
    sweeps: :func:`repro.analysis.sweeps.plan_fingerprint`); resume
    refuses a checkpoint whose fingerprint does not match the re-built
    plan.  ``tasks`` is every planned job name in submission order,
    ``completed`` the names that finished successfully (failures are
    *not* recorded — a resume retries them).  ``pending_jobs`` carries
    whole submitted-but-unfinished :class:`~repro.engine.Job` objects,
    used only by persistent-mode coordinators whose jobs arrive over
    HTTP rather than from a re-buildable plan.
    """

    fingerprint: str
    tasks: tuple[str, ...] = ()
    completed: tuple[str, ...] = ()
    requeues: int = 0
    pending_jobs: tuple = ()
    version: int = CHECKPOINT_VERSION

    @property
    def remaining(self) -> tuple[str, ...]:
        done = set(self.completed)
        return tuple(name for name in self.tasks if name not in done)


def write_checkpoint(path: str | os.PathLike, state: CheckpointState) -> None:
    """Atomically persist ``state`` to ``path`` (tmp + rename)."""
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str | os.PathLike) -> CheckpointState:
    """Load a checkpoint, failing loudly on anything malformed.

    Raises :class:`~repro.errors.DistError` when the file is missing,
    unreadable, not a checkpoint, or from an incompatible version —
    resuming from garbage must never silently become a fresh run.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except FileNotFoundError:
        raise DistError(f"no checkpoint at {path!r}") from None
    except Exception as exc:
        raise DistError(
            f"unreadable checkpoint {path!r}: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(state, CheckpointState):
        raise DistError(
            f"{path!r} is not a coordinator checkpoint "
            f"(got {type(state).__name__})"
        )
    if state.version != CHECKPOINT_VERSION:
        raise DistError(
            f"checkpoint {path!r} is version {state.version}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return state


@dataclass
class CheckpointWriter:
    """Throttled, thread-safe checkpoint sink for a live coordinator.

    The coordinator (or batch parent) reports progress through
    :meth:`record_done` / :meth:`record_requeues` /
    :meth:`record_pending`; the writer folds it into the latest
    :class:`CheckpointState` and rewrites the file at most once per
    ``interval`` seconds.  :meth:`flush` forces a write — call it at
    clean shutdown so the final snapshot is exact.
    """

    path: str
    fingerprint: str
    tasks: tuple[str, ...] = ()
    interval: float = DEFAULT_INTERVAL
    completed: tuple[str, ...] = ()
    """Names completed *before* this run (resume carries them forward so
    an interrupted resume's checkpoint still covers the first run)."""

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _requeues: int = field(default=0, repr=False)
    _pending_jobs: tuple = field(default=(), repr=False)
    _last_write: float = field(default=0.0, repr=False)
    writes: int = 0
    """Checkpoint files actually written (post-throttle), for tests."""

    def __post_init__(self):
        self.path = os.fspath(self.path)
        self.tasks = tuple(self.tasks)
        self._done: list[str] = list(self.completed)
        self._seen: set[str] = set(self._done)

    def state(self) -> CheckpointState:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> CheckpointState:
        return CheckpointState(
            fingerprint=self.fingerprint,
            tasks=self.tasks,
            completed=tuple(self._done),
            requeues=self._requeues,
            pending_jobs=self._pending_jobs,
        )

    def record_done(self, name: str) -> None:
        """One job completed successfully."""
        with self._lock:
            if name not in self._seen:
                self._seen.add(name)
                self._done.append(name)
            self._write_locked(force=False)

    def record_requeues(self, requeues: int) -> None:
        with self._lock:
            self._requeues = int(requeues)
            self._write_locked(force=False)

    def record_pending(self, jobs) -> None:
        """Persistent mode: the submitted-but-unfinished job objects."""
        with self._lock:
            self._pending_jobs = tuple(jobs)
            self._write_locked(force=False)

    def flush(self) -> CheckpointState:
        """Write the current snapshot unconditionally; returns it."""
        with self._lock:
            return self._write_locked(force=True)

    def _write_locked(self, *, force: bool) -> CheckpointState:
        now = time.monotonic()
        state = self._state_locked()
        if not force and now - self._last_write < self.interval:
            return state
        write_checkpoint(self.path, state)
        self._last_write = now
        self.writes += 1
        return state


def resume_completed(
    state: CheckpointState, names, *, fingerprint: str
) -> tuple[set[str], int]:
    """Map a checkpoint's completed names onto a freshly built plan.

    Returns ``(completed_names_present_in_plan, dropped_count)``.
    Raises :class:`~repro.errors.DistError` on a fingerprint mismatch —
    the checkpoint belongs to a different plan (different n, budget,
    backend, …) and resuming would silently corrupt accounting.
    Completed names absent from the new plan (observed-cost-model drift
    re-splitting a shard, a shrunken ``--limit``) are dropped, not
    fatal: re-running them costs a warm store hit, not a kernel.
    """
    if state.fingerprint != fingerprint:
        raise DistError(
            f"checkpoint fingerprint {state.fingerprint} does not match "
            f"this plan ({fingerprint}); refusing to resume a different "
            "sweep (check --n/--limit/--budget/--backend)"
        )
    names = set(names)
    present = {name for name in state.completed if name in names}
    return present, len(state.completed) - len(present)
