"""Distributed batch worker: pull jobs over TCP, compute, stream results.

``python -m repro worker --connect HOST:PORT [--jobs N]`` is the CLI
entry point.  Each worker process connects to a coordinator
(:mod:`repro.dist.coordinator`), handshakes, and then loops: request a
job, execute it through the exact same
:func:`~repro.engine.batch.execute_job` primitive as the serial and pool
paths — so the kernel cache and the persistent store tiers behave
identically — and stream the result home together with the job's drained
store rows and cache/store statistics deltas.

Workers never write SQLite.  On startup the process-global store is
switched into *worker mode* (:attr:`repro.store.ResultStore.worker_mode`),
which defers every write: rows queue in memory and ride home inside each
``JobResult`` (or a final ``delta`` frame for rows produced outside jobs,
e.g. by warmup), mirroring the daemonic-pool-worker invariant of PR 2.
Reads still work, so a worker pointed at a shared (or pre-seeded) store
file warm-starts from everything already computed.

Network warm start: when the coordinator offers seeding (``--seed-store``,
the default), the handshake is followed by a ``store_seed`` stream — the
coordinator's store rows land in this worker's in-memory seed tier, so a
host with an *empty* local store still starts warm.  A worker with no
active store at all gets a throwaway in-memory one (worker mode, never
touching disk) just to host the seed tier and carry rows home.  Store
misses mid-run may additionally fall through to a :class:`RemoteStoreTier`
— one ``store_load`` round trip on the job connection — so results banked
moments ago by *other* workers are reused instead of recomputed.  Both
tiers are read-only; writes still ride home inside each ``JobResult``.

While a job computes, a background thread heartbeats the coordinator at
the interval suggested in the handshake, so long CSP shards are not
requeued as long as this worker is alive; a killed worker simply stops
heartbeating (or drops the connection) and its leased job is reassigned.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, replace

from ..engine.batch import JobFailure, execute_job
from ..errors import DistError
from ..obs.trace import TRACER, estimate_clock_offset
from .protocol import (
    PROTOCOL_VERSION,
    STORE_LOAD,
    STORE_LOAD_RESULT,
    STORE_SEED,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["RemoteStoreTier", "WorkerReport", "run_worker", "run_workers"]


@dataclass(frozen=True)
class WorkerReport:
    """What one worker process did before the coordinator released it."""

    worker: str
    completed: int
    failed: int
    elapsed: float
    clean: bool
    """True when the coordinator said ``done``; False when it vanished
    mid-run (the batch may still have finished via other workers)."""

    seeded_rows: int = 0
    """Store rows received from the coordinator's ``store_seed`` stream."""

    def describe(self) -> str:
        status = "done" if self.clean else "coordinator went away"
        text = (
            f"worker {self.worker}: {self.completed} job(s) completed, "
            f"{self.failed} failed, {self.elapsed:.1f}s ({status})"
        )
        if self.seeded_rows:
            text += f"; {self.seeded_rows} store row(s) seeded"
        return text


class RemoteStoreTier:
    """Resolve store misses against the coordinator over the job socket.

    Installed as :attr:`repro.store.ResultStore.remote_tier` when the
    coordinator's handshake offers remote loads.  ``load`` runs on the
    job's own thread (inside ``execute_job``'s kernel miss path), while
    the main loop is *not* reading the socket — and the coordinator never
    answers heartbeats — so the reply frame cannot be claimed by anyone
    else.  Every failure degrades to ``None`` (a plain miss) and marks
    the tier broken so a dead coordinator costs at most one timeout, not
    one per miss.  A failure that may leave the reply stream misaligned
    (timeout, torn frame, unexpected kind) also shuts the socket down:
    a late ``store_load_result`` must never be mistaken for the main
    loop's next directive, so the worker takes the ordinary
    "coordinator went away" exit and its leased job is requeued intact.
    """

    def __init__(
        self, sock: socket.socket, send_lock: threading.Lock,
        *, timeout: float = 30.0,
    ):
        self._sock = sock
        self._send_lock = send_lock
        self._timeout = timeout
        self._lock = threading.Lock()
        self.loads = 0
        self.hits = 0
        self.broken = False

    def _poison(self) -> None:
        """Mark the tier broken and tear the stream down.

        After a timeout or a torn/unexpected frame, bytes of (or a whole
        late) reply may still arrive; shutting the socket turns every
        subsequent read into a clean error instead of letting the main
        loop parse a stale ``store_load_result`` as its next directive.
        """
        self.broken = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already closed/reset: the stream is dead either way

    def load(self, kernel: str, version: str, key_hash: str):
        if self.broken:
            return None
        with self._lock:
            self.loads += 1
            try:
                with self._send_lock:
                    send_message(
                        self._sock,
                        STORE_LOAD,
                        {
                            "kernel": kernel,
                            "version": version,
                            "key_hash": key_hash,
                        },
                    )
                # Bound the wait: a vanished coordinator must not wedge
                # the kernel call forever (the timeout is reset so the
                # main loop's blocking reads keep their old semantics).
                self._sock.settimeout(self._timeout)
                try:
                    reply = recv_message(self._sock)
                finally:
                    self._sock.settimeout(None)
            except (OSError, ProtocolError):
                self._poison()
                return None
            if reply is None:
                self.broken = True  # clean EOF: nothing left to desync
                return None
            kind, payload = reply
            if kind != STORE_LOAD_RESULT or not isinstance(payload, dict):
                self._poison()
                return None
            row = payload.get("row")
            if row is not None:
                self.hits += 1
            return row


class _HeartbeatPump(threading.Thread):
    """Send ``heartbeat`` frames for one job while it computes."""

    def __init__(self, sock, send_lock, index: int, interval: float):
        super().__init__(name=f"heartbeat-{index}", daemon=True)
        self._sock = sock
        self._send_lock = send_lock
        self._index = index
        self._interval = max(0.05, interval)
        # NB: not "_stop" — that name is an internal threading.Thread method.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                with self._send_lock:
                    send_message(self._sock, "heartbeat", {"index": self._index})
            except OSError:
                return  # connection gone; the main loop will notice

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=1.0)


def _connect(host: str, port: int, retry: float) -> socket.socket:
    """Dial the coordinator, retrying until ``retry`` seconds elapse.

    Workers are routinely started *before* the coordinator (CI launches
    them in the background, then runs the sweep), so connection refused is
    an expected transient, not an error — up to the retry budget.
    """
    deadline = time.monotonic() + retry
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise DistError(
                    f"cannot reach coordinator at {host}:{port} "
                    f"after {retry:.0f}s: {exc}"
                ) from exc
            time.sleep(0.1)


def _worker_store():
    """The active store, switched into deferred-write worker mode.

    Exception: when a coordinator is serving from this very process (an
    in-thread worker), the store must keep its write path — the
    coordinator *is* the single writer, and deferring its flushes would
    strand every row in the shared pending buffer.
    """
    from .. import store as store_pkg

    store = store_pkg.active_store()
    if store is not None and not store.coordinator_owned:
        store.worker_mode = True
    return store


def _install_memory_store():
    """Install a throwaway in-memory store to host the seed tier.

    A worker started with ``REPRO_STORE=off`` has no store at all, which
    would waste the coordinator's seed stream.  An in-memory, worker-mode
    store never touches disk (worker mode defers every write; the rows it
    accumulates ride home inside job results exactly like a file-backed
    worker's) but gives the seed and remote tiers a place to live.
    Returns the store plus the previous global configuration so
    ``run_worker`` can restore it on exit (in-process callers must not
    keep the throwaway).
    """
    from .. import store as store_pkg

    previous = store_pkg.RESULT_STORE
    restore = (previous.path, previous.mode, previous.batch_size)
    store = store_pkg.configure(path=":memory:", mode="rw")
    store.worker_mode = True
    return store, restore


def _receive_seed(sock: socket.socket, store) -> int:
    """Drain the coordinator's ``store_seed`` stream into the seed tier."""
    seeded = 0
    while True:
        frame = recv_message(sock)
        if frame is None:
            raise DistError("coordinator closed during store seeding")
        kind, payload = frame
        if kind != STORE_SEED or not isinstance(payload, dict):
            raise DistError(f"expected store_seed frame, got {kind!r}")
        seeded += store.import_seed_rows(payload.get("rows") or ())
        if payload.get("done"):
            return seeded


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    retry: float = 10.0,
    respawn: int = 0,
    log=None,
) -> WorkerReport:
    """Serve one coordinator until it reports the batch done.

    Connects (retrying while the coordinator is not up yet), handshakes,
    runs the coordinator's warmup callable if it shipped one, then pulls
    and executes jobs until told ``done``.  Returns a summary; raises
    :class:`~repro.errors.DistError` only when the coordinator was never
    reachable or rejects the protocol version — a coordinator that
    vanishes mid-run yields a report with ``clean=False`` instead, since
    by then the batch may have completed without us.

    ``respawn`` is the supervisor's restart generation (0 = a first
    launch).  A positive value rides in the ``hello`` so the coordinator
    can count supervised respawns in its status surface; the respawned
    worker's seed digest rides alongside exactly as on a first connect,
    which is what makes restarts warm-start incrementally.
    """
    log = log or (lambda message: None)
    name = worker_id or f"{socket.gethostname()}:{os.getpid()}"
    start = time.monotonic()
    sock = _connect(host, port, retry)
    send_lock = threading.Lock()
    completed = failed = 0
    seeded_rows = 0
    clean = False
    store = _worker_store()
    store_restore = None
    trace_restore = None
    try:
        hello = {
            "version": PROTOCOL_VERSION,
            "worker": name,
            # Lets the coordinator recognise a worker in its own
            # process, whose cache/store activity is already in
            # the live counters and must not be absorbed twice.
            "host": socket.gethostname(),
            "pid": os.getpid(),
        }
        if respawn > 0:
            hello["respawn"] = int(respawn)
        if store is not None:
            # Incremental seeding: advertise what this store can already
            # answer, per (kernel, version), so a reconnecting worker is
            # only streamed tiers whose content differs on the
            # coordinator.  An empty digest says nothing (a fresh worker
            # wants the full stream), so the key is omitted.
            digest = store.seed_digest()
            if digest:
                hello["seed_digest"] = digest
        hello_sent = time.time()
        with send_lock:
            send_message(sock, "hello", hello)
        greeting = recv_message(sock)
        welcome_received = time.time()
        if greeting is None:
            raise DistError("coordinator closed during handshake")
        kind, payload = greeting
        if kind == "reject":
            raise DistError(
                f"coordinator rejected worker: {payload.get('reason')}"
            )
        if kind != "welcome" or not isinstance(payload, dict):
            raise DistError(f"unexpected handshake reply {kind!r}")
        heartbeat = float(payload.get("heartbeat") or 20.0)
        warmup = payload.get("warmup")
        seed_offer = payload.get("seed") or {}
        seed_enabled = bool(seed_offer.get("enabled"))
        remote_enabled = bool(seed_offer.get("remote"))
        if payload.get("trace"):
            # The coordinator traces, so this worker buffers spans and
            # ships them inside each JobResult — no local environment
            # needed.  The coordinator stamped its wall clock into the
            # welcome; the NTP midpoint estimate aligns this worker's
            # timestamps onto the coordinator's timeline at drain time.
            trace_restore = (TRACER.enabled, TRACER.clock_offset)
            TRACER.enabled = True
            remote_now = payload.get("now")
            if isinstance(remote_now, (int, float)):
                TRACER.clock_offset = estimate_clock_offset(
                    hello_sent, welcome_received, remote_now
                )
            TRACER.instant(
                "dist:handshake", cat="dist", worker=name,
                offset=TRACER.clock_offset,
                rtt=welcome_received - hello_sent,
            )
        if (seed_enabled or remote_enabled) and store is None:
            store, store_restore = _install_memory_store()
        if seed_enabled:
            with TRACER.span(
                "dist:seed_receive", cat="dist", worker=name
            ) as sp:
                seeded_rows = _receive_seed(sock, store)
                sp.set(rows=seeded_rows)
            log(f"worker {name}: seeded {seeded_rows} store row(s)")
        if remote_enabled and store is not None:
            store.remote_tier = RemoteStoreTier(sock, send_lock)
        baseline = store.stats() if store is not None else None
        if warmup is not None:
            warmup()
        if store is not None:
            # Rows computed by warmup belong to no job; ship them home
            # now so the coordinator (the only SQLite writer) banks them.
            with send_lock:
                send_message(sock, "delta", store.export_delta(since=baseline))
            baseline = store.stats()
        log(f"worker {name} serving {payload.get('jobs')} job(s)")

        with send_lock:
            send_message(sock, "next", {})
        while True:
            message = recv_message(sock)
            if message is None:
                return _report(
                    name, completed, failed, start,
                    clean=False, seeded=seeded_rows,
                )
            kind, payload = message
            if kind == "done":
                clean = True
                if store is not None:
                    # since=baseline: each job's stats already rode home
                    # inside its JobResult; only the post-last-job slice
                    # (normally empty) is new.
                    with send_lock:
                        send_message(
                            sock, "delta", store.export_delta(since=baseline)
                        )
                with send_lock:
                    send_message(sock, "bye", {})
                break
            if kind == "wait":
                time.sleep(float(payload.get("delay", 0.25)))
                with send_lock:
                    send_message(sock, "next", {})
                continue
            if kind != "job":
                raise DistError(f"unexpected frame {kind!r} from coordinator")
            index, job = payload["index"], payload["job"]
            pump = _HeartbeatPump(sock, send_lock, index, heartbeat)
            pump.start()
            try:
                outcome = execute_job(job)
            finally:
                pump.stop()
            if isinstance(outcome, JobFailure):
                failed += 1
                outcome = replace(outcome.sanitized(), index=index)
            else:
                completed += 1
            if store is not None:
                # execute_job drained this job's rows into the outcome;
                # advance the delta baseline past its stats so the final
                # export never double-ships what the result already did.
                baseline = store.stats()
            with send_lock:
                send_message(sock, "result", {"index": index, "outcome": outcome})
    except OSError:
        # Connection torn down mid-run: the coordinator finished or died;
        # either way there is nothing more this worker can contribute.
        return _report(
            name, completed, failed, start, clean=False, seeded=seeded_rows
        )
    finally:
        if trace_restore is not None:
            # In-thread workers (tests, single-host convenience) share the
            # process-global tracer with the coordinator; hand back its
            # previous switch and clock so later batches are unaffected.
            # (Dedicated worker processes exit right after anyway.)
            TRACER.enabled, TRACER.clock_offset = trace_restore
        if store is not None:
            # Dedicated worker processes exit anyway; in-thread workers
            # (tests) share the process-global store and must hand the
            # write path back — and must not keep a tier bound to this
            # (now closing) connection or this batch's seed rows.
            store.worker_mode = False
            store.remote_tier = None
            store.clear_seed()
        if store_restore is not None:
            # The throwaway in-memory store must not outlive this run in
            # the process-global slot (in-process callers, tests).
            from .. import store as store_pkg

            store_pkg.configure(
                path=store_restore[0],
                mode=store_restore[1],
                batch_size=store_restore[2],
            )
        try:
            sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
    return _report(
        name, completed, failed, start, clean=clean, seeded=seeded_rows
    )


def _report(
    name: str,
    completed: int,
    failed: int,
    start: float,
    *,
    clean: bool,
    seeded: int = 0,
) -> WorkerReport:
    return WorkerReport(
        worker=name,
        completed=completed,
        failed=failed,
        elapsed=time.monotonic() - start,
        clean=clean,
        seeded_rows=seeded,
    )


def _worker_process(host, port, worker_id, retry, queue, respawn=0) -> None:
    """Entry point of a spawned worker process (``--jobs N`` and the
    supervisor's slots)."""
    try:
        report = run_worker(
            host, port, worker_id=worker_id, retry=retry, respawn=respawn
        )
        queue.put(report)
    except Exception as exc:
        queue.put(DistError(str(exc)))


def run_workers(
    host: str,
    port: int,
    *,
    jobs: int = 1,
    retry: float = 10.0,
    log=None,
) -> list[WorkerReport]:
    """Run ``jobs`` worker processes against one coordinator.

    ``jobs=1`` serves in-process (the reference path); larger values fork
    independent worker processes, each with its own connection and its own
    kernel cache, exactly as if ``python -m repro worker`` had been
    launched ``jobs`` times.  Raises :class:`~repro.errors.DistError` if
    any worker failed outright (unreachable coordinator, bad version).
    """
    import multiprocessing

    if jobs < 1:
        raise DistError(f"jobs must be positive, got {jobs}")
    if jobs == 1:
        return [run_worker(host, port, retry=retry, log=log)]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        context = multiprocessing.get_context()
    queue = context.Queue()
    base = f"{socket.gethostname()}:{os.getpid()}"
    processes = [
        context.Process(
            target=_worker_process,
            args=(host, port, f"{base}.{rank}", retry, queue),
            daemon=False,
        )
        for rank in range(jobs)
    ]
    for process in processes:
        process.start()
    from queue import Empty

    reports: list[WorkerReport] = []
    errors: list[DistError] = []
    collected = 0
    drained_after_death = False
    while collected < len(processes):
        try:
            item = queue.get(timeout=1.0)
        except Empty:
            if all(not p.is_alive() for p in processes):
                if drained_after_death:
                    break  # children gone and the queue is truly dry
                drained_after_death = True  # one more pass for in-flight puts
            continue
        collected += 1
        if isinstance(item, DistError):
            errors.append(item)
        else:
            reports.append(item)
    for process in processes:
        process.join()
    missing = len(processes) - collected
    if missing:
        # A child that dies without reporting (OOM-killed, segfault) must
        # not look like a clean exit: its capacity silently vanished even
        # though the coordinator requeued its job elsewhere.
        errors.append(
            DistError(
                f"{missing} worker process(es) died without reporting "
                "(killed?)"
            )
        )
    if errors:
        raise errors[0]
    return reports
