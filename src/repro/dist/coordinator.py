"""TCP work-queue coordinator: the parent side of a distributed batch.

The coordinator owns a batch of :class:`~repro.engine.batch.Job`\\ s and
serves them, one at a time, to any worker that connects
(``python -m repro worker --connect HOST:PORT``).  Semantically it plays
exactly the role the parent process plays under
:func:`~repro.engine.batch.run_batch`:

* it is the **only SQLite writer** — each job result arrives with the
  worker's drained store rows, and the coordinator absorbs and flushes
  them the moment the result lands, so a run killed at any point (worker
  or coordinator) has already persisted every finished job;
* it merges every worker's cache/store statistics deltas into this
  process's totals, so ``cache-stats`` and experiment footers observe the
  whole cluster's work;
* results are collected by submission index and finalized through the
  same :func:`~repro.engine.batch.finalize_outcomes` path as the serial
  and pool drivers, which is what pins serial == pool == dist.

Delivery is at-least-once: a job leased to a worker that disconnects or
stops heartbeating is requeued for the next worker.  Jobs are pure and
results content-addressed, so replays are harmless — the first result for
an index wins and late duplicates are dropped.

Scheduling is FIFO over the submitted task list, so submission order *is*
priority order: the sweep planner exploits this by emitting its jobs
heaviest-first (estimated cost descending), which keeps every worker busy
on the expensive tail instead of stranding one worker on a giant class
while the rest drain trivia.  Two-phase plans (``reductions=``) fire each
reduction in this process the moment its last input job lands; see
:class:`~repro.engine.batch.Reduction`.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field, replace

from ..engine.batch import (
    BatchResult,
    Job,
    JobFailure,
    JobResult,
    Reduction,
    _ReductionState,
    finalize_outcomes,
    fire_reduction,
)
from ..engine.cache import KERNEL_CACHE, CacheStats
from ..errors import DistError
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from .protocol import (
    DIST_STATUS,
    DIST_STATUS_REPLY,
    PROTOCOL_VERSION,
    STORE_LOAD,
    STORE_LOAD_RESULT,
    STORE_SEED,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["Coordinator"]


@dataclass
class _Lease:
    """One outstanding job assignment: who holds it and until when."""

    owner: int
    deadline: float


@dataclass
class _WorkerInfo:
    """Per-worker accounting behind the ``dist status`` probe."""

    connected_at: float
    completed: int = 0
    failed: int = 0
    seeded_rows: int = 0
    loads_served: int = 0
    last_seen: float = field(default=0.0)

    def snapshot(self, name: str, now: float) -> dict:
        elapsed = max(now - self.connected_at, 1e-9)
        return {
            "worker": name,
            "completed": self.completed,
            "failed": self.failed,
            "seeded_rows": self.seeded_rows,
            "loads_served": self.loads_served,
            "elapsed": elapsed,
            "jobs_per_minute": 60.0 * self.completed / elapsed,
            "idle": now - max(self.last_seen, self.connected_at),
        }


class Coordinator:
    """Serve a batch of jobs to TCP workers and collect their results.

    Parameters
    ----------
    tasks:
        The jobs to distribute.  Results come back in submission order,
        exactly as from :func:`~repro.engine.batch.run_batch`.
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port (``start()``
        returns the bound address).  Bind to ``127.0.0.1`` (the default)
        unless remote workers are expected — the protocol is pickled
        frames inside one trust domain, so only expose the port to hosts
        you would run code from.
    lease_timeout:
        Seconds a leased job may go without a result or heartbeat before
        it is requeued for another worker.  Workers heartbeat at a third
        of this interval (told to them in the handshake), so only a dead
        or wedged worker trips it.
    warmup:
        Optional picklable zero-argument callable shipped to each worker
        in the handshake and run once before its first job — the remote
        analogue of ``run_batch``'s per-worker warmup.
    seed_store:
        When True (the default) and a result store is active, every
        remote worker's handshake is followed by a ``store_seed`` stream:
        the store's rows (current kernel versions only, chunked) land in
        the worker's in-memory seed tier, so hosts without a shared
        filesystem start as warm as the coordinator.  Seeding is
        read-only; the single-writer invariant is untouched.
    remote_loads:
        Whether workers may resolve store misses with ``store_load``
        round trips against this coordinator's store mid-run (results
        banked by *other* workers get reused before being recomputed).
        ``None`` (default) follows ``seed_store``.
    seed_versions:
        Optional explicit ``{kernel: version}`` filter for the seed
        stream; ``None`` seeds every kernel registered in this process at
        its current version — which covers exactly the kernels the queued
        task set can call, since jobs only reach registered kernels.
    reductions:
        Optional two-phase plan (:class:`~repro.engine.batch.Reduction`):
        each reduction fires *in this process* — the store-writing parent
        — the moment the last of its input jobs completes, while other
        workers keep pulling phase-1 jobs.  Workers never see reductions,
        so the wire protocol is untouched.
    log:
        Optional callable receiving one-line progress strings (worker
        connects/disconnects, requeues); silent when ``None``.
    """

    def __init__(
        self,
        tasks: Sequence[Job],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 60.0,
        wait_delay: float = 0.25,
        warmup: Callable[[], object] | None = None,
        seed_store: bool = True,
        remote_loads: bool | None = None,
        seed_versions: Mapping[str, str] | None = None,
        reductions: Sequence[Reduction] = (),
        log: Callable[[str], None] | None = None,
    ):
        if lease_timeout <= 0:
            raise DistError(f"lease_timeout must be positive, got {lease_timeout}")
        self._tasks = list(tasks)
        self._reductions = _ReductionState(len(self._tasks), reductions)
        self._reductions_pending = len(self._reductions.reductions)
        self._host = host
        self._port = port
        self._lease_timeout = lease_timeout
        self._wait_delay = wait_delay
        self._warmup = warmup
        self._seed_store = bool(seed_store)
        self._remote_loads = (
            self._seed_store if remote_loads is None else bool(remote_loads)
        )
        self._seed_versions = (
            dict(seed_versions) if seed_versions is not None else None
        )
        self._log = log or (lambda message: None)

        self._lock = threading.Lock()
        self._pending: deque[int] = deque(range(len(self._tasks)))
        self._leases: dict[int, _Lease] = {}
        self._outcomes: list[JobResult | JobFailure | None] = [None] * len(
            self._tasks
        )
        self._remaining = len(self._tasks)
        self._done = threading.Event()
        if self._remaining == 0:
            self._done.set()
        self._workers_seen: set[str] = set()
        self._worker_info: dict[str, _WorkerInfo] = {}
        self._rows_seeded = 0
        self._loads_served = 0
        self._requeues = 0
        self._owner_counter = 0
        # Stats deltas produced in *other* processes — the only ones this
        # process must absorb into its cache/store totals at the end (an
        # in-process worker's activity is already in the live counters).
        self._remote_cache_delta = CacheStats()
        self._remote_store_delta = None
        self._store = None
        self._owns_store = False
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._listener is None:
            raise DistError("coordinator not started")
        return self._listener.getsockname()[:2]

    @property
    def requeues(self) -> int:
        """Jobs requeued after a worker died or went silent."""
        with self._lock:
            return self._requeues

    @property
    def rows_seeded(self) -> int:
        """Store rows streamed to connecting workers (all handshakes)."""
        with self._lock:
            return self._rows_seeded

    @property
    def loads_served(self) -> int:
        """``store_load`` requests answered with a row (remote-tier hits)."""
        with self._lock:
            return self._loads_served

    def status_snapshot(self) -> dict:
        """The machine-readable state behind ``dist status`` probes."""
        now = time.monotonic()
        with self._lock:
            return {
                "version": PROTOCOL_VERSION,
                "jobs": len(self._tasks),
                "completed": len(self._tasks) - self._remaining,
                "queue_depth": len(self._pending),
                "leases": len(self._leases),
                "requeues": self._requeues,
                "seed_store": self._seed_store,
                "remote_loads": self._remote_loads,
                "rows_seeded": self._rows_seeded,
                "loads_served": self._loads_served,
                "reductions_total": len(self._reductions.reductions),
                "reductions_done": (
                    len(self._reductions.reductions)
                    - self._reductions_pending
                ),
                "workers": [
                    info.snapshot(name, now)
                    for name, info in sorted(self._worker_info.items())
                ],
            }

    def metrics_snapshot(self) -> dict:
        """The coordinator-side metrics threaded onto the batch result.

        A subset of :meth:`status_snapshot` that stays meaningful after
        the run: per-worker throughput plus the seed/serve/requeue
        counters.  :class:`~repro.dist.executor.DistExecutor` attaches it
        to ``BatchResult.dist_metrics`` so experiment footers and
        ``sweep --json`` can report cluster behaviour without a live
        probe.
        """
        now = time.monotonic()
        with self._lock:
            return {
                "requeues": self._requeues,
                "rows_seeded": self._rows_seeded,
                "loads_served": self._loads_served,
                "workers": [
                    info.snapshot(name, now)
                    for name, info in sorted(self._worker_info.items())
                ],
            }

    def start(self) -> tuple[str, int]:
        """Bind, listen, and start serving in background threads."""
        if self._listener is not None:
            return self.address
        from ..engine.batch import _active_store

        self._store = _active_store()
        if self._store is not None:
            # Own anything already pending so per-job absorbs attribute
            # rows to the jobs that produced them (mirrors run_batch).
            self._store.flush()
            # Mark this process as the store's writer so an *in-process*
            # worker (threaded tests, single-host convenience) does not
            # flip the shared store into deferred-write worker mode and
            # stall the per-job flushes.
            self._store.coordinator_owned += 1
            self._owns_store = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self._host, self._port))
        except OSError as exc:
            listener.close()
            raise DistError(
                f"cannot bind coordinator to {self._host}:{self._port}: {exc}"
            ) from exc
        listener.listen(32)
        listener.settimeout(0.2)
        self._listener = listener
        accept = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        monitor = threading.Thread(
            target=self._monitor_loop, name="dist-monitor", daemon=True
        )
        self._threads = [accept, monitor]
        # The live coordinator is the process's dist-metrics source; a
        # later batch's coordinator simply replaces the provider.
        METRICS.register_stats("dist", self.metrics_snapshot)
        accept.start()
        monitor.start()
        self._log(f"coordinator listening on {self.address[0]}:{self.address[1]}")
        return self.address

    def serve(self, *, on_error: str = "raise") -> BatchResult:
        """Block until every job has a result, then finalize the batch.

        Identical post-processing to :func:`~repro.engine.batch.run_batch`:
        merged statistics are absorbed into this process's cache/store and
        the ``on_error`` policy is applied to any failures.
        """
        self.start()
        try:
            self._done.wait()
        finally:
            self.close()
        with self._lock:
            outcomes = list(self._outcomes)
            reduction_outcomes = list(self._reductions.outcomes)
            workers = max(1, len(self._workers_seen))
            remote_cache = self._remote_cache_delta
            remote_store = self._remote_store_delta
        # Absorb only the activity that happened in *other* processes:
        # an in-process worker already mutated the live counters, and
        # run_batch's serial path likewise never absorbs its own deltas.
        # (Reductions ran in this process, so finalize merges their
        # deltas into the result without absorbing them — same rule.)
        KERNEL_CACHE.absorb(remote_cache)
        if self._store is not None and remote_store is not None:
            self._store.absorb_stats(remote_store)
        result = finalize_outcomes(
            [o for o in outcomes if o is not None],
            workers=workers,
            store=self._store,
            on_error=on_error,
            absorb=False,
            reduction_outcomes=reduction_outcomes,
        )
        return replace(result, dist_metrics=self.metrics_snapshot())

    def close(self) -> None:
        """Stop accepting and wake the serving threads."""
        self._closed = True
        if self._owns_store and self._store is not None:
            self._store.coordinator_owned -= 1
            self._owns_store = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Background threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: shutting down
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{addr[0]}:{addr[1]}"),
                name=f"dist-conn-{addr[1]}",
                daemon=True,
            )
            handler.start()

    def _monitor_loop(self) -> None:
        """Requeue jobs whose lease expired (dead or silent worker)."""
        interval = min(1.0, self._lease_timeout / 4)
        while not self._closed and not self._done.is_set():
            now = time.monotonic()
            with self._lock:
                expired = [
                    index
                    for index, lease in self._leases.items()
                    if lease.deadline < now
                ]
                for index in expired:
                    del self._leases[index]
                    self._pending.appendleft(index)
                    self._requeues += 1
            for index in expired:
                TRACER.instant("dist:requeue", cat="dist", index=index)
                self._log(
                    f"requeued job {index} after {self._lease_timeout:.0f}s "
                    "without a heartbeat"
                )
            self._done.wait(timeout=interval)

    # ------------------------------------------------------------------
    # Per-connection protocol
    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket, peer: str) -> None:
        with self._lock:
            self._owner_counter += 1
            owner = self._owner_counter
        held: set[int] = set()
        worker_name = peer
        try:
            message = recv_message(conn)
            if message is None:
                return
            kind, payload = message
            if kind == DIST_STATUS:
                self._answer_status(conn, payload)
                return
            if kind != "hello" or not isinstance(payload, dict):
                send_message(conn, "reject", {"reason": "expected hello"})
                return
            version = payload.get("version")
            if version != PROTOCOL_VERSION:
                send_message(
                    conn,
                    "reject",
                    {
                        "reason": f"protocol version {version} != "
                        f"{PROTOCOL_VERSION}"
                    },
                )
                return
            worker_name = str(payload.get("worker") or peer)
            local = (
                payload.get("host") == socket.gethostname()
                and payload.get("pid") == os.getpid()
            )
            # Seeding and remote loads target *remote* workers: an
            # in-process worker already reads this very store directly.
            seed = self._seed_store and self._store is not None and not local
            remote = (
                self._remote_loads and self._store is not None and not local
            )
            with self._lock:
                self._workers_seen.add(worker_name)
                info = self._worker_info.setdefault(
                    worker_name, _WorkerInfo(connected_at=time.monotonic())
                )
            send_message(
                conn,
                "welcome",
                {
                    "version": PROTOCOL_VERSION,
                    "jobs": len(self._tasks),
                    "warmup": self._warmup,
                    "heartbeat": self._lease_timeout / 3,
                    "seed": {"enabled": seed, "remote": remote},
                    # Observability: the coordinator's wall clock (the
                    # worker's clock-offset reference point) and whether
                    # the worker should buffer + ship trace spans.
                    "now": time.time(),
                    "trace": TRACER.enabled,
                },
            )
            self._log(f"worker {worker_name} connected")
            if seed:
                with TRACER.span(
                    "dist:seed_stream", cat="dist", worker=worker_name
                ) as sp:
                    seeded = self._stream_seed(conn)
                    sp.set(rows=seeded)
                with self._lock:
                    self._rows_seeded += seeded
                    info.seeded_rows += seeded
                self._log(
                    f"seeded {seeded} store row(s) to worker {worker_name}"
                )
            while True:
                message = recv_message(conn)
                if message is None:
                    return  # worker died: finally-block requeues
                kind, payload = message
                with self._lock:
                    info.last_seen = time.monotonic()
                if kind == "heartbeat":
                    TRACER.instant(
                        "dist:heartbeat", cat="dist", worker=worker_name,
                        index=payload.get("index"),
                    )
                    self._extend_lease(owner, payload.get("index"))
                    continue
                if kind == STORE_LOAD:
                    self._answer_load(conn, payload, info)
                    continue
                if kind == "delta":
                    self._import_delta(payload, local)
                    continue
                if kind == "bye":
                    return
                if kind == "result":
                    index = payload["index"]
                    outcome = payload["outcome"]
                    accepted = self._complete(index, outcome, local)
                    held.discard(index)
                    if accepted:
                        # Dropped duplicates (post-requeue replays) must
                        # not inflate the status probe's throughput.
                        with self._lock:
                            if isinstance(outcome, JobFailure):
                                info.failed += 1
                            else:
                                info.completed += 1
                elif kind != "next":
                    raise ProtocolError(
                        f"unexpected frame {kind!r} from {worker_name}"
                    )
                reply_kind, reply_payload = self._assign(owner, held)
                send_message(conn, reply_kind, reply_payload)
                if reply_kind == "done":
                    self._drain_farewell(conn, local)
                    return
        except (ProtocolError, OSError) as exc:
            self._log(f"worker {worker_name} connection error: {exc}")
        finally:
            self._release(owner, held, worker_name)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------
    # Queue state transitions (all under the lock)
    # ------------------------------------------------------------------
    def _assign(self, owner: int, held: set[int]) -> tuple[str, dict]:
        with self._lock:
            if self._remaining == 0:
                return "done", {}
            if self._pending:
                index = self._pending.popleft()
                self._leases[index] = _Lease(
                    owner=owner,
                    deadline=time.monotonic() + self._lease_timeout,
                )
                held.add(index)
                TRACER.instant(
                    "dist:lease", cat="dist", index=index, owner=owner,
                    job=self._tasks[index].name,
                )
                return "job", {"index": index, "job": self._tasks[index]}
            return "wait", {"delay": self._wait_delay}

    def _extend_lease(self, owner: int, index: object) -> None:
        with self._lock:
            lease = self._leases.get(index) if isinstance(index, int) else None
            if lease is not None and lease.owner == owner:
                lease.deadline = time.monotonic() + self._lease_timeout

    def _complete(
        self, index: int, outcome: JobResult | JobFailure, local: bool
    ) -> bool:
        """Record one result; False when a duplicate was dropped."""
        if not isinstance(index, int) or not 0 <= index < len(self._tasks):
            raise ProtocolError(f"result for unknown job index {index!r}")
        with self._lock:
            self._leases.pop(index, None)
            if self._outcomes[index] is not None:
                return False  # duplicate of a requeued job: first result won
            try:
                # The job may have been requeued and be waiting for the
                # next worker; this result arrived first, so withdraw it.
                self._pending.remove(index)
            except ValueError:
                pass
            self._outcomes[index] = outcome
            self._remaining -= 1
            # Under the same lock as the outcome write, so a result can
            # unblock each reduction exactly once even with several
            # connection handlers completing jobs concurrently.
            ready = self._reductions.ready_after(index)
            if not local and isinstance(outcome, JobResult):
                self._remote_cache_delta = self._remote_cache_delta.merge(
                    outcome.stats
                )
                if outcome.store_stats is not None:
                    self._remote_store_delta = (
                        outcome.store_stats
                        if self._remote_store_delta is None
                        else self._remote_store_delta.merge(outcome.store_stats)
                    )
        # Persist outside the queue lock: the store has its own lock, and
        # a slow flush must not stall assignment to other workers.
        if isinstance(outcome, JobResult):
            # Worker spans shipped inside the result join this process's
            # buffer — the only one the trace file is written from.
            TRACER.absorb(outcome.trace_events)
        if self._store is not None and isinstance(outcome, JobResult):
            self._store.absorb_touches(outcome.store_touches)
            if outcome.store_rows:
                self._store.absorb_rows(outcome.store_rows)
                self._store.flush()
        for rid in ready:
            self._run_reduction(rid)
        self._maybe_done()
        return True

    def _run_reduction(self, rid: int) -> None:
        """Fire one ready reduction in this (the coordinator's) process.

        Runs on the connection-handler thread that delivered the last
        input — cheap by contract (reductions are pure merges), and
        executing here is what makes "fires as the last sub-shard lands"
        literal rather than a post-batch sweep.  The reduction's store
        writes are flushed immediately, so a coordinator killed later has
        already banked every reduced row.
        """
        reduction = self._reductions.reductions[rid]
        with self._lock:
            inputs = [self._outcomes[i] for i in reduction.over]
        outcome = fire_reduction(reduction, inputs)
        if isinstance(outcome, JobResult):
            # The reduction ran here, so this re-absorbs our own drained
            # spans — a harmless round trip that keeps one code path.
            TRACER.absorb(outcome.trace_events)
        if self._store is not None and isinstance(outcome, JobResult):
            self._store.absorb_touches(outcome.store_touches)
            if outcome.store_rows:
                self._store.absorb_rows(outcome.store_rows)
                self._store.flush()
        with self._lock:
            self._reductions.outcomes[rid] = outcome
            self._reductions_pending -= 1
        TRACER.instant("dist:reduction", cat="dist", reduction=reduction.name)
        self._log(f"reduction {reduction.name} fired")

    def _maybe_done(self) -> None:
        """Signal completion once every job *and* every reduction is in.

        Called after job completions and reduction firings alike: two
        handlers may race to deliver the last results, and whichever
        records the final missing piece trips the event.
        """
        with self._lock:
            done = self._remaining == 0 and self._reductions_pending == 0
        if done:
            self._done.set()

    def _release(self, owner: int, held: set[int], worker: str) -> None:
        """Requeue every job this connection still holds (worker died)."""
        requeued = []
        with self._lock:
            for index in held:
                lease = self._leases.get(index)
                if lease is not None and lease.owner == owner:
                    del self._leases[index]
                    self._pending.appendleft(index)
                    self._requeues += 1
                    requeued.append(index)
        for index in requeued:
            self._log(f"requeued job {index} after {worker} disconnected")

    def _drain_farewell(self, conn: socket.socket, local: bool) -> None:
        """After ``done``: read the worker's final ``delta``/``bye``.

        The worker answers ``done`` with any store rows it still holds
        outside a job (warmup strays) and a ``bye``; closing before
        reading them would discard the rows and hand the worker an
        ECONNRESET instead of a clean goodbye.  A wedged worker must not
        hold the handler hostage, hence the short timeout.
        """
        try:
            conn.settimeout(5.0)
            while True:
                message = recv_message(conn)
                if message is None:
                    return
                kind, payload = message
                if kind == "delta":
                    self._import_delta(payload, local)
                elif kind == "bye":
                    return
        except (ProtocolError, OSError):
            return

    # ------------------------------------------------------------------
    # Store data plane (seeding + remote loads) and the status probe
    # ------------------------------------------------------------------
    def _stream_seed(self, conn: socket.socket) -> int:
        """Stream the store's relevant rows to a fresh worker; row count.

        Chunked by the store's :meth:`~repro.store.ResultStore.export_seed`
        so a huge store becomes many modest frames — the store lock and
        this connection's send buffer are held per chunk, never for the
        whole file.  The final chunk carries ``done=True`` so the worker
        knows when the job conversation may begin.
        """
        seeded = 0
        for chunk in self._store.export_seed(self._seed_versions):
            send_message(conn, STORE_SEED, {"rows": chunk, "done": False})
            seeded += len(chunk)
        send_message(conn, STORE_SEED, {"rows": (), "done": True})
        return seeded

    def _answer_load(
        self, conn: socket.socket, payload: object, info: _WorkerInfo
    ) -> None:
        """Serve one ``store_load``: a worker's store miss, mid-job.

        Read-only: the row (pending overlay included, so results banked
        by other workers moments ago count) ships back verbatim, or
        ``None`` for a miss and the worker computes as usual.
        """
        row = None
        if self._store is not None and isinstance(payload, dict):
            kernel = payload.get("kernel")
            version = payload.get("version")
            key_hash = payload.get("key_hash")
            if (
                isinstance(kernel, str)
                and isinstance(version, str)
                and isinstance(key_hash, str)
            ):
                row = self._store.load_row(kernel, version, key_hash)
        send_message(conn, STORE_LOAD_RESULT, {"row": row})
        if row is not None:
            with self._lock:
                self._loads_served += 1
                info.loads_served += 1

    def _answer_status(self, conn: socket.socket, payload: object) -> None:
        """Serve a ``status`` probe (first frame of its own connection)."""
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != PROTOCOL_VERSION:
            send_message(
                conn,
                "reject",
                {
                    "reason": f"protocol version {version} != "
                    f"{PROTOCOL_VERSION}"
                },
            )
            return
        send_message(conn, DIST_STATUS_REPLY, self.status_snapshot())

    def _import_delta(self, payload: object, local: bool) -> None:
        """Absorb stray store rows/touches a worker produced outside jobs.

        A local (in-process) worker's statistics already live in this
        store's counters, so only its rows and touches are taken.
        """
        if self._store is not None:
            # import_delta validates the payload type itself.
            self._store.import_delta(payload, stats=not local)
