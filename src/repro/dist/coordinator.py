"""TCP work-queue coordinator: the parent side of a distributed batch.

The coordinator owns a batch of :class:`~repro.engine.batch.Job`\\ s and
serves them, one at a time, to any worker that connects
(``python -m repro worker --connect HOST:PORT``).  Semantically it plays
exactly the role the parent process plays under
:func:`~repro.engine.batch.run_batch`:

* it is the **only SQLite writer** — each job result arrives with the
  worker's drained store rows, and the coordinator absorbs and flushes
  them the moment the result lands, so a run killed at any point (worker
  or coordinator) has already persisted every finished job;
* it merges every worker's cache/store statistics deltas into this
  process's totals, so ``cache-stats`` and experiment footers observe the
  whole cluster's work;
* results are collected by submission index and finalized through the
  same :func:`~repro.engine.batch.finalize_outcomes` path as the serial
  and pool drivers, which is what pins serial == pool == dist.

Delivery is at-least-once: a job leased to a worker that disconnects or
stops heartbeating is requeued for the next worker.  Jobs are pure and
results content-addressed, so replays are harmless — the first result for
an index wins and late duplicates are dropped.

Scheduling is FIFO over the submitted task list, so submission order *is*
priority order: the sweep planner exploits this by emitting its jobs
heaviest-first (estimated cost descending), which keeps every worker busy
on the expensive tail instead of stranding one worker on a giant class
while the rest drain trivia.  Two-phase plans (``reductions=``) fire each
reduction in this process the moment its last input job lands; see
:class:`~repro.engine.batch.Reduction`.

Concurrency model (since the :mod:`repro.serve` arc): one
``selectors``-based event loop thread multiplexes every connection —
worker frames, status probes, seed streaming, and any *frontend*
listeners (the HTTP query service) — over non-blocking sockets with
per-connection read/write buffers.  The thread-per-connection design it
replaced spent one OS thread per worker; the event loop spends one,
total, which is what lets a long-lived coordinator also carry thousands
of short query connections.  Lease expiry (the old monitor thread) rides
the loop's select timeout.  All queue state transitions still happen
under one lock, so the public snapshot/probe surface is unchanged.

Two additions for the serve arc, both off by default:

* ``persistent=True`` keeps the queue open when it drains — idle workers
  poll (``wait``) instead of being released (``done``), and
  :meth:`Coordinator.submit` enqueues new jobs at any time;
* ``frontends=[(host, port, factory)]`` binds extra listener sockets
  whose connections speak *your* protocol: ``factory()`` returns a
  per-connection handler with ``feed(data) -> bytes`` and a ``done``
  flag.  The HTTP front end of :mod:`repro.serve` is one of these; the
  coordinator knows nothing about HTTP.
"""

from __future__ import annotations

import os
import selectors
import socket
import threading
import time
from collections import deque
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field, replace

from ..engine.batch import (
    BatchResult,
    Job,
    JobFailure,
    JobResult,
    Reduction,
    _ReductionState,
    finalize_outcomes,
    fire_reduction,
)
from ..engine.cache import KERNEL_CACHE, CacheStats
from ..errors import DistError
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from .protocol import (
    DIST_STATUS,
    DIST_STATUS_REPLY,
    MAX_FRAME,
    PROTOCOL_VERSION,
    STORE_LOAD,
    STORE_LOAD_RESULT,
    STORE_SEED,
    ProtocolError,
    _HEADER,
    decode_message,
    encode_message,
)

__all__ = ["Coordinator"]

#: Seed streaming back-pressure: the loop tops a connection's write
#: buffer up with more seed chunks only while it holds less than this.
_SEED_LOW_WATER = 1 << 18

#: Seconds a post-``done`` connection may take to deliver its farewell
#: ``delta``/``bye`` before being closed anyway (wedged worker).
_FAREWELL_GRACE = 5.0

#: Seconds :meth:`Coordinator.close` lets in-flight farewells and write
#: buffers finish before force-closing every connection.
_CLOSE_GRACE = 1.5

#: Cost-scaled lease bounds.  A job's lease is the base ``lease_timeout``
#: scaled by its cost estimate relative to the batch median, clamped to
#: this band: cheap jobs are reclaimed from a dead worker in a quarter of
#: the fixed timeout, and a genuinely heavy sub-shard gets up to 8x
#: before the coordinator calls its worker dead.  The advertised
#: heartbeat shrinks to a third of the *smallest* possible lease, so a
#: live-but-slow worker always lands several heartbeats per lease.
_MIN_LEASE_SCALE = 0.25
_MAX_LEASE_SCALE = 8.0


@dataclass
class _Lease:
    """One outstanding job assignment: who holds it, until when, and the
    (cost-scaled) timeout a heartbeat renews it by."""

    owner: int
    deadline: float
    timeout: float


@dataclass
class _WorkerInfo:
    """Per-worker accounting behind the ``dist status`` probe."""

    connected_at: float
    completed: int = 0
    failed: int = 0
    seeded_rows: int = 0
    loads_served: int = 0
    last_seen: float = field(default=0.0)

    def snapshot(self, name: str, now: float) -> dict:
        elapsed = max(now - self.connected_at, 1e-9)
        return {
            "worker": name,
            "completed": self.completed,
            "failed": self.failed,
            "seeded_rows": self.seeded_rows,
            "loads_served": self.loads_served,
            "elapsed": elapsed,
            "jobs_per_minute": 60.0 * self.completed / elapsed,
            "idle": now - max(self.last_seen, self.connected_at),
        }


class _Conn:
    """One multiplexed connection: socket, buffers, protocol state.

    ``kind`` starts as ``"dist"`` (frame protocol: a worker or a status
    probe — distinguished by its first frame) or ``"frontend"`` (owned by
    a frontend handler).  The per-connection state that used to live in
    ``_serve_connection``'s stack frame lives here instead.
    """

    __slots__ = (
        "sock", "peer", "kind", "inbuf", "outbuf", "owner", "held",
        "worker_name", "local", "info", "seed_iter", "seeded",
        "handshaken", "draining", "deadline", "close_after_flush",
        "frontend",
    )

    def __init__(self, sock: socket.socket, peer: str, kind: str):
        self.sock = sock
        self.peer = peer
        self.kind = kind
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.owner = 0
        self.held: set[int] = set()
        self.worker_name = peer
        self.local = False
        self.info: _WorkerInfo | None = None
        self.seed_iter = None
        self.seeded = 0
        self.handshaken = False
        self.draining = False
        self.deadline: float | None = None
        self.close_after_flush = False
        self.frontend = None


class Coordinator:
    """Serve a batch of jobs to TCP workers and collect their results.

    Parameters
    ----------
    tasks:
        The jobs to distribute.  Results come back in submission order,
        exactly as from :func:`~repro.engine.batch.run_batch`.
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port (``start()``
        returns the bound address).  Bind to ``127.0.0.1`` (the default)
        unless remote workers are expected — the protocol is pickled
        frames inside one trust domain, so only expose the port to hosts
        you would run code from.
    lease_timeout:
        Seconds a leased job may go without a result or heartbeat before
        it is requeued for another worker.  Workers heartbeat at a third
        of this interval (told to them in the handshake), so only a dead
        or wedged worker trips it.
    warmup:
        Optional picklable zero-argument callable shipped to each worker
        in the handshake and run once before its first job — the remote
        analogue of ``run_batch``'s per-worker warmup.
    seed_store:
        When True (the default) and a result store is active, every
        remote worker's handshake is followed by a ``store_seed`` stream:
        the store's rows (current kernel versions only, chunked) land in
        the worker's in-memory seed tier, so hosts without a shared
        filesystem start as warm as the coordinator.  Seeding is
        read-only; the single-writer invariant is untouched.  A worker
        whose ``hello`` carries a ``seed_digest`` (per-kernel content
        digests of the rows it already holds) is seeded *incrementally*:
        kernels whose digest matches this store's are skipped entirely,
        so a reconnecting worker pays only for rows it does not have.
    remote_loads:
        Whether workers may resolve store misses with ``store_load``
        round trips against this coordinator's store mid-run (results
        banked by *other* workers get reused before being recomputed).
        ``None`` (default) follows ``seed_store``.
    seed_versions:
        Optional explicit ``{kernel: version}`` filter for the seed
        stream; ``None`` seeds every kernel registered in this process at
        its current version — which covers exactly the kernels the queued
        task set can call, since jobs only reach registered kernels.
    reductions:
        Optional two-phase plan (:class:`~repro.engine.batch.Reduction`):
        each reduction fires *in this process* — the store-writing parent
        — the moment the last of its input jobs completes, while other
        workers keep pulling phase-1 jobs.  Workers never see reductions,
        so the wire protocol is untouched.
    persistent:
        Keep serving when the queue drains: workers are parked on
        ``wait`` instead of released with ``done``, and
        :meth:`submit` may enqueue jobs at any time.  ``serve()`` never
        returns in this mode; the owner drives lifecycle via
        ``start()``/``close()`` and consumes results through
        ``on_complete``.  This is the engine of ``python -m repro serve``.
    on_complete:
        Optional ``(index, outcome)`` callback fired (on the event-loop
        thread, after the store flush) for every *accepted* completion —
        dropped duplicates do not fire it.
    frontends:
        Extra listeners: ``(host, port, factory)`` triples.  Accepted
        connections call ``handler = factory()`` and feed it raw bytes;
        whatever ``handler.feed(data)`` returns is written back, and the
        connection closes once ``handler.done`` is true and the buffer
        drains.  See :mod:`repro.serve` for the HTTP frontend.
    completed:
        Submission indices already completed by an interrupted earlier
        run (from a checkpoint).  They are never dispatched to workers;
        ``start()`` replays them *in this process*, where the warm store
        that banked them makes each a pure hit, so reductions and result
        assembly see real outcomes without recomputing a kernel or
        paying a worker round trip.  Batch mode only.
    checkpoint:
        Optional :class:`~repro.dist.checkpoint.CheckpointWriter`.
        Completions, requeue counts, and (in persistent mode) the
        submitted-but-unfinished job objects are recorded as they
        happen — throttled — and the final snapshot is flushed at
        ``close()``, so a killed coordinator leaves a resumable file
        next to the store.
    log:
        Optional callable receiving one-line progress strings (worker
        connects/disconnects, requeues); silent when ``None``.

    Lease sizing: when any task carries a ``cost`` estimate (the sweep
    planner sets them), each job's lease is ``lease_timeout`` scaled by
    its cost relative to the batch median, clamped to
    [``0.25x``, ``8x``] — so a dying worker's cheap jobs re-lease long
    before the fixed timeout while a heavy sub-shard is not falsely
    requeued.  Cost-less batches keep the fixed timeout exactly.
    """

    def __init__(
        self,
        tasks: Sequence[Job],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 60.0,
        wait_delay: float = 0.25,
        warmup: Callable[[], object] | None = None,
        seed_store: bool = True,
        remote_loads: bool | None = None,
        seed_versions: Mapping[str, str] | None = None,
        reductions: Sequence[Reduction] = (),
        persistent: bool = False,
        on_complete: Callable[[int, object], object] | None = None,
        frontends: Sequence[tuple] = (),
        completed=(),
        checkpoint=None,
        log: Callable[[str], None] | None = None,
    ):
        if lease_timeout <= 0:
            raise DistError(f"lease_timeout must be positive, got {lease_timeout}")
        self._tasks = list(tasks)
        self._reductions = _ReductionState(len(self._tasks), reductions)
        self._reductions_pending = len(self._reductions.reductions)
        self._host = host
        self._port = port
        self._lease_timeout = lease_timeout
        self._wait_delay = wait_delay
        self._warmup = warmup
        self._seed_store = bool(seed_store)
        self._remote_loads = (
            self._seed_store if remote_loads is None else bool(remote_loads)
        )
        self._seed_versions = (
            dict(seed_versions) if seed_versions is not None else None
        )
        self._persistent = bool(persistent)
        self._on_complete = on_complete
        self._frontend_specs = list(frontends)
        self._checkpoint = checkpoint
        self._log = log or (lambda message: None)

        completed_set = frozenset(completed)
        if completed_set and self._persistent:
            raise DistError(
                "completed= is batch-mode resume state; a persistent "
                "coordinator rehydrates via submit() instead"
            )
        for index in completed_set:
            if not 0 <= index < len(self._tasks):
                raise DistError(
                    f"completed index {index} out of range for "
                    f"{len(self._tasks)} task(s)"
                )
        self._replay = sorted(completed_set)
        # Cost-scaled leases: the batch median is the reference point, so
        # "heavy" and "cheap" are relative to this plan, not absolute.
        costs = sorted(
            cost
            for cost in (getattr(t, "cost", None) for t in self._tasks)
            if cost is not None and cost > 0
        )
        self._cost_ref = costs[len(costs) // 2] if costs else None
        self._heartbeat = (
            self._lease_timeout / 3
            if self._cost_ref is None
            else self._lease_timeout * _MIN_LEASE_SCALE / 3
        )

        self._lock = threading.Lock()
        self._pending: deque[int] = deque(
            index
            for index in range(len(self._tasks))
            if index not in completed_set
        )
        self._leases: dict[int, _Lease] = {}
        self._outcomes: list[JobResult | JobFailure | None] = [None] * len(
            self._tasks
        )
        self._remaining = len(self._tasks)
        self._done = threading.Event()
        if self._remaining == 0 and not self._persistent:
            self._done.set()
        self._workers_seen: set[str] = set()
        self._worker_info: dict[str, _WorkerInfo] = {}
        self._rows_seeded = 0
        self._loads_served = 0
        self._requeues = 0
        self._respawns = 0
        self._replayed = 0
        self._owner_counter = 0
        # Stats deltas produced in *other* processes — the only ones this
        # process must absorb into its cache/store totals at the end (an
        # in-process worker's activity is already in the live counters).
        self._remote_cache_delta = CacheStats()
        self._remote_store_delta = None
        self._store = None
        self._owns_store = False
        self._listener: socket.socket | None = None
        self._frontend_listeners: list[tuple[socket.socket, object]] = []
        self._selector: selectors.BaseSelector | None = None
        self._conns: set[_Conn] = set()
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._loop_thread: threading.Thread | None = None
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._listener is None:
            raise DistError("coordinator not started")
        return self._listener.getsockname()[:2]

    @property
    def frontend_addresses(self) -> list[tuple[str, int]]:
        """Bound ``(host, port)`` of each frontend listener, in order."""
        return [sock.getsockname()[:2] for sock, _ in self._frontend_listeners]

    @property
    def alive(self) -> bool:
        """True while the event loop is serving (started, not closing)."""
        thread = self._loop_thread
        return (
            thread is not None
            and thread.is_alive()
            and not self._closing
            and not self._closed
        )

    @property
    def requeues(self) -> int:
        """Jobs requeued after a worker died or went silent."""
        with self._lock:
            return self._requeues

    @property
    def respawns(self) -> int:
        """Worker connections that announced themselves as supervisor
        respawns (``hello`` carried a ``respawn`` generation)."""
        with self._lock:
            return self._respawns

    @property
    def replayed(self) -> int:
        """Checkpoint-completed jobs replayed in-process at start()."""
        with self._lock:
            return self._replayed

    @property
    def rows_seeded(self) -> int:
        """Store rows streamed to connecting workers (all handshakes)."""
        with self._lock:
            return self._rows_seeded

    @property
    def loads_served(self) -> int:
        """``store_load`` requests answered with a row (remote-tier hits)."""
        with self._lock:
            return self._loads_served

    def status_snapshot(self) -> dict:
        """The machine-readable state behind ``dist status`` probes.

        Registered with :data:`~repro.obs.metrics.METRICS` as the
        ``dist_status`` stats provider, so the TCP ``status`` probe, the
        serve layer's ``GET /v1/status``, and ``METRICS.snapshot()`` all
        expose this one shape.
        """
        now = time.monotonic()
        with self._lock:
            return {
                "version": PROTOCOL_VERSION,
                "jobs": len(self._tasks),
                "completed": len(self._tasks) - self._remaining,
                "queue_depth": len(self._pending),
                "leases": len(self._leases),
                "requeues": self._requeues,
                "respawns": self._respawns,
                "replayed": self._replayed,
                "lease_scaling": self._cost_ref is not None,
                "seed_store": self._seed_store,
                "remote_loads": self._remote_loads,
                "rows_seeded": self._rows_seeded,
                "loads_served": self._loads_served,
                "reductions_total": len(self._reductions.reductions),
                "reductions_done": (
                    len(self._reductions.reductions)
                    - self._reductions_pending
                ),
                "workers": [
                    info.snapshot(name, now)
                    for name, info in sorted(self._worker_info.items())
                ],
            }

    def metrics_snapshot(self) -> dict:
        """The coordinator-side metrics threaded onto the batch result.

        A subset of :meth:`status_snapshot` that stays meaningful after
        the run: per-worker throughput plus the seed/serve/requeue
        counters.  :class:`~repro.dist.executor.DistExecutor` attaches it
        to ``BatchResult.dist_metrics`` so experiment footers and
        ``sweep --json`` can report cluster behaviour without a live
        probe.
        """
        now = time.monotonic()
        with self._lock:
            return {
                "requeues": self._requeues,
                "respawns": self._respawns,
                "replayed": self._replayed,
                "rows_seeded": self._rows_seeded,
                "loads_served": self._loads_served,
                "workers": [
                    info.snapshot(name, now)
                    for name, info in sorted(self._worker_info.items())
                ],
            }

    def start(self) -> tuple[str, int]:
        """Bind, listen, and start the event loop in one background thread."""
        if self._listener is not None:
            return self.address
        from ..engine.batch import _active_store

        self._store = _active_store()
        if self._store is not None:
            # Own anything already pending so per-job absorbs attribute
            # rows to the jobs that produced them (mirrors run_batch).
            self._store.flush()
            # Mark this process as the store's writer so an *in-process*
            # worker (threaded tests, single-host convenience) does not
            # flip the shared store into deferred-write worker mode and
            # stall the per-job flushes.
            self._store.coordinator_owned += 1
            self._owns_store = True
        self._listener = self._bind(self._host, self._port, "coordinator")
        try:
            for spec_host, spec_port, factory in self._frontend_specs:
                self._frontend_listeners.append(
                    (self._bind(spec_host, spec_port, "frontend"), factory)
                )
        except DistError:
            self.close()
            raise
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._wake_r, selectors.EVENT_READ, ("wake",))
        self._selector.register(
            self._listener, selectors.EVENT_READ, ("accept", "dist", None)
        )
        for sock, factory in self._frontend_listeners:
            self._selector.register(
                sock, selectors.EVENT_READ, ("accept", "frontend", factory)
            )
        # The live coordinator is the process's dist-metrics and
        # dist-status source; a later batch's coordinator simply
        # replaces the providers.
        METRICS.register_stats("dist", self.metrics_snapshot)
        METRICS.register_stats("dist_status", self.status_snapshot)
        self._loop_thread = threading.Thread(
            target=self._loop, name="dist-loop", daemon=True
        )
        self._loop_thread.start()
        self._log(f"coordinator listening on {self.address[0]}:{self.address[1]}")
        if self._replay:
            self._replay_completed()
        return self.address

    def _replay_completed(self) -> None:
        """Re-land checkpoint-completed jobs in this process.

        Against the warm store that banked them each replay is a pure
        hit: accounting (values for reductions, rows for assembly)
        without kernel recomputation.  Workers connecting meanwhile only
        ever see the genuinely remaining jobs — replayed indices were
        never put on the pending queue.
        """
        from ..engine.batch import execute_job

        for index in self._replay:
            outcome = execute_job(self._tasks[index])
            if isinstance(outcome, JobFailure):
                outcome = replace(outcome, index=index)
            self._complete(index, outcome, True)
        with self._lock:
            self._replayed = len(self._replay)
        TRACER.instant(
            "dist:replay", cat="dist", jobs=len(self._replay)
        )
        self._log(
            f"replayed {len(self._replay)} checkpointed job(s) "
            "against the warm store"
        )

    def _bind(self, host: str, port: int, label: str) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
        except OSError as exc:
            sock.close()
            raise DistError(
                f"cannot bind {label} to {host}:{port}: {exc}"
            ) from exc
        sock.listen(128)
        sock.setblocking(False)
        return sock

    def serve(self, *, on_error: str = "raise") -> BatchResult:
        """Block until every job has a result, then finalize the batch.

        Identical post-processing to :func:`~repro.engine.batch.run_batch`:
        merged statistics are absorbed into this process's cache/store and
        the ``on_error`` policy is applied to any failures.  A
        ``persistent`` coordinator never completes its queue, so ``serve``
        refuses it rather than blocking forever.
        """
        if self._persistent:
            raise DistError(
                "a persistent coordinator has no batch end; "
                "drive it via start()/submit()/close()"
            )
        self.start()
        try:
            self._done.wait()
        finally:
            self.close()
        with self._lock:
            outcomes = list(self._outcomes)
            reduction_outcomes = list(self._reductions.outcomes)
            workers = max(1, len(self._workers_seen))
            remote_cache = self._remote_cache_delta
            remote_store = self._remote_store_delta
        # Absorb only the activity that happened in *other* processes:
        # an in-process worker already mutated the live counters, and
        # run_batch's serial path likewise never absorbs its own deltas.
        # (Reductions ran in this process, so finalize merges their
        # deltas into the result without absorbing them — same rule.)
        KERNEL_CACHE.absorb(remote_cache)
        if self._store is not None and remote_store is not None:
            self._store.absorb_stats(remote_store)
        result = finalize_outcomes(
            [o for o in outcomes if o is not None],
            workers=workers,
            store=self._store,
            on_error=on_error,
            absorb=False,
            reduction_outcomes=reduction_outcomes,
        )
        return replace(result, dist_metrics=self.metrics_snapshot())

    def submit(self, job: Job) -> int:
        """Enqueue one job on a live coordinator; returns its index.

        The serve layer's miss path.  Only meaningful before ``close()``;
        on a non-persistent coordinator the job must land before the
        batch completes or it will never be assigned.
        """
        if self._closing or self._closed:
            raise DistError("coordinator is closed")
        with self._lock:
            index = len(self._tasks)
            self._tasks.append(job)
            self._outcomes.append(None)
            self._remaining += 1
            self._pending.append(index)
        self._record_pending()
        self._wake()
        return index

    def _record_pending(self) -> None:
        """Checkpoint the submitted-but-unfinished jobs (persistent mode).

        Batch-mode coordinators re-derive their remaining work from the
        plan, so only a persistent queue — whose jobs arrived over HTTP
        and exist nowhere else — needs the job objects themselves
        persisted.
        """
        if self._checkpoint is None or not self._persistent:
            return
        with self._lock:
            live = sorted(set(self._pending) | set(self._leases))
            jobs = tuple(self._tasks[i] for i in live)
        self._checkpoint.record_pending(jobs)

    def close(self) -> None:
        """Stop listening, drain in-flight farewells, stop the loop."""
        self._closing = True
        if self._checkpoint is not None:
            try:
                self._checkpoint.flush()
            except OSError as exc:  # pragma: no cover - disk full etc.
                self._log(f"final checkpoint write failed: {exc}")
        if self._owns_store and self._store is not None:
            self._store.coordinator_owned -= 1
            self._owns_store = False
        thread = self._loop_thread
        if thread is not None and thread.is_alive():
            self._wake()
            thread.join(timeout=_CLOSE_GRACE + 2.0)
        elif self._selector is not None and not self._closed:
            # start() succeeded but the loop never ran (or already died):
            # release the sockets directly.
            self._teardown()
        if self._loop_thread is None:
            # Never started: close whatever start() half-built (bind
            # failures land here via start()'s error path).
            for sock in [self._listener] + [
                s for s, _ in self._frontend_listeners
            ]:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover - best effort
                        pass
            self._frontend_listeners.clear()
        self._closed = True

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _wake(self) -> None:
        wake = self._wake_w
        if wake is not None:
            try:
                wake.send(b"x")
            except OSError:  # pragma: no cover - loop already gone
                pass

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        try:
            self._loop_body()
        finally:
            self._teardown()

    def _loop_body(self) -> None:
        assert self._selector is not None
        close_deadline: float | None = None
        listeners_open = True
        while True:
            now = time.monotonic()
            if self._closing:
                if listeners_open:
                    listeners_open = False
                    self._close_listeners()
                    close_deadline = now + _CLOSE_GRACE
                    # Idle pollers on a finished batch deserve a proper
                    # "done" instead of a cut connection; draining
                    # connections keep the loop alive (bounded by the
                    # grace) until their farewell delta/bye lands.
                    self._broadcast_done()
                    for conn in list(self._conns):
                        if conn.draining:
                            continue
                        if conn.outbuf:
                            conn.close_after_flush = True
                            self._flush_conn(conn)
                        else:
                            self._drop(conn, None)
                if not self._conns or now >= close_deadline:
                    return
            try:
                events = self._selector.select(self._loop_timeout(now))
            except OSError:  # pragma: no cover - selector torn down
                return
            for key, mask in events:
                tag = key.data
                if tag[0] == "wake":
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                elif tag[0] == "accept":
                    self._accept(key.fileobj, tag[1], tag[2])
                else:
                    conn = tag[1]
                    if conn not in self._conns:
                        continue  # dropped by an earlier event this round
                    if mask & selectors.EVENT_READ:
                        self._on_readable(conn)
                    if conn in self._conns and mask & selectors.EVENT_WRITE:
                        self._flush_conn(conn)
            self._expire_leases()
            self._expire_farewells()
            self._broadcast_done()

    def _loop_timeout(self, now: float) -> float:
        timeout = min(1.0, self._lease_timeout / 4)
        for conn in self._conns:
            if conn.deadline is not None:
                timeout = min(timeout, conn.deadline - now)
        if self._closing:
            timeout = min(timeout, 0.05)
        return max(0.01, timeout)

    def _close_listeners(self) -> None:
        for sock in [self._listener] + [s for s, _ in self._frontend_listeners]:
            if sock is None:
                continue
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def _teardown(self) -> None:
        for conn in list(self._conns):
            self._drop(conn, None)
        self._close_listeners()
        for sock in (self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best effort
                    pass
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:  # pragma: no cover - best effort
                pass

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _accept(self, listener, kind: str, factory) -> None:
        while True:
            try:
                sock, addr = listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us: shutting down
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP/odd platforms
                pass
            conn = _Conn(sock, f"{addr[0]}:{addr[1]}", kind)
            if kind == "frontend":
                try:
                    conn.frontend = factory()
                except Exception as exc:
                    self._log(f"frontend handler factory failed: {exc}")
                    sock.close()
                    continue
            else:
                with self._lock:
                    self._owner_counter += 1
                    conn.owner = self._owner_counter
            self._conns.add(conn)
            self._selector.register(
                sock, selectors.EVENT_READ, ("conn", conn)
            )

    def _update_interest(self, conn: _Conn) -> None:
        events = selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, ("conn", conn))
        except (KeyError, ValueError, OSError):  # pragma: no cover
            pass

    def _drop(self, conn: _Conn, reason: str | None) -> None:
        """Unregister, close, and release a connection's leases."""
        if conn not in self._conns:
            return
        self._conns.discard(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
        if reason:
            self._log(f"worker {conn.worker_name} connection error: {reason}")
        if conn.kind == "dist":
            self._release(conn.owner, conn.held, conn.worker_name)

    def _on_readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._drop(conn, str(exc))
            return
        if not data:
            self._drop(conn, None)  # peer closed: _release requeues
            return
        if conn.kind == "frontend":
            self._feed_frontend(conn, data)
            return
        conn.inbuf += data
        while conn in self._conns:
            header = _HEADER.size
            if len(conn.inbuf) < header:
                return
            (length,) = _HEADER.unpack(conn.inbuf[:header])
            if length > MAX_FRAME:
                self._drop(conn, f"frame length {length} exceeds cap")
                return
            if len(conn.inbuf) < header + length:
                return
            blob = bytes(conn.inbuf[header : header + length])
            del conn.inbuf[: header + length]
            try:
                kind, payload = decode_message(blob)
                self._on_frame(conn, kind, payload)
            except ProtocolError as exc:
                self._drop(conn, str(exc))
                return

    def _feed_frontend(self, conn: _Conn, data: bytes) -> None:
        try:
            response = conn.frontend.feed(data)
        except Exception as exc:
            self._drop(conn, f"frontend handler failed: {exc}")
            return
        if response:
            conn.outbuf += response
        if getattr(conn.frontend, "done", False):
            conn.close_after_flush = True
        self._flush_conn(conn)

    def _send(self, conn: _Conn, kind: str, payload: object = None) -> None:
        if conn.seed_iter is not None and kind in ("job", "wait", "done"):
            # Directives must trail the whole seed stream on the wire:
            # the worker reads seed frames to completion before its first
            # "next", so anything else interleaved would desync it.
            self._pump_seed(conn, force=True)
        conn.outbuf += encode_message(kind, payload)
        self._flush_conn(conn)

    def _flush_conn(self, conn: _Conn) -> None:
        if conn not in self._conns:
            return
        self._pump_seed(conn)
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._drop(conn, f"send failed: {exc}")
                return
            if sent <= 0:  # pragma: no cover - defensive
                break
            del conn.outbuf[:sent]
            if not conn.outbuf:
                self._pump_seed(conn)
        if not conn.outbuf and conn.close_after_flush:
            self._drop(conn, None)
            return
        self._update_interest(conn)

    def _pump_seed(self, conn: _Conn, *, force: bool = False) -> None:
        """Top the write buffer up from the connection's seed stream.

        Chunked and back-pressured: the store is locked per chunk (inside
        ``export_seed``) and chunks are only materialised while the write
        buffer is below the low-water mark, so one slow worker neither
        holds the store nor balloons coordinator memory.
        """
        while conn.seed_iter is not None and (
            force or len(conn.outbuf) < _SEED_LOW_WATER
        ):
            try:
                chunk = next(conn.seed_iter)
            except StopIteration:
                chunk = None
            except Exception as exc:  # store torn down mid-stream
                self._log(f"seed stream to {conn.worker_name} failed: {exc}")
                chunk = None
            if chunk is None:
                conn.seed_iter = None
                conn.outbuf += encode_message(
                    STORE_SEED, {"rows": (), "done": True}
                )
                with self._lock:
                    self._rows_seeded += conn.seeded
                    if conn.info is not None:
                        conn.info.seeded_rows += conn.seeded
                TRACER.instant(
                    "dist:seed_stream", cat="dist",
                    worker=conn.worker_name, rows=conn.seeded,
                )
                self._log(
                    f"seeded {conn.seeded} store row(s) to worker "
                    f"{conn.worker_name}"
                )
                return
            conn.outbuf += encode_message(
                STORE_SEED, {"rows": chunk, "done": False}
            )
            conn.seeded += len(chunk)

    # ------------------------------------------------------------------
    # Frame dispatch (the old per-connection thread, as a state machine)
    # ------------------------------------------------------------------
    def _on_frame(self, conn: _Conn, kind: str, payload: object) -> None:
        if not conn.handshaken:
            self._on_first_frame(conn, kind, payload)
            return
        if conn.info is not None:
            with self._lock:
                conn.info.last_seen = time.monotonic()
        if conn.draining:
            # After ``done`` only the farewell matters; anything else
            # (late heartbeats, a duplicate result's next poll) is noise.
            if kind == "delta":
                self._import_delta(payload, conn.local)
            elif kind == "bye":
                self._drop(conn, None)
            return
        if kind == "heartbeat":
            TRACER.instant(
                "dist:heartbeat", cat="dist", worker=conn.worker_name,
                index=payload.get("index") if isinstance(payload, dict) else None,
            )
            if isinstance(payload, dict):
                self._extend_lease(conn.owner, payload.get("index"))
            return
        if kind == STORE_LOAD:
            self._answer_load(conn, payload)
            return
        if kind == "delta":
            self._import_delta(payload, conn.local)
            return
        if kind == "bye":
            self._drop(conn, None)
            return
        if kind == "result":
            if not isinstance(payload, dict):
                raise ProtocolError("result payload must be a mapping")
            index = payload["index"]
            outcome = payload["outcome"]
            accepted = self._complete(index, outcome, conn.local)
            conn.held.discard(index)
            if accepted and conn.info is not None:
                # Dropped duplicates (post-requeue replays) must not
                # inflate the status probe's throughput.
                with self._lock:
                    if isinstance(outcome, JobFailure):
                        conn.info.failed += 1
                    else:
                        conn.info.completed += 1
        elif kind != "next":
            raise ProtocolError(
                f"unexpected frame {kind!r} from {conn.worker_name}"
            )
        reply_kind, reply_payload = self._assign(conn.owner, conn.held)
        self._send(conn, reply_kind, reply_payload)
        if reply_kind == "done":
            conn.draining = True
            conn.deadline = time.monotonic() + _FAREWELL_GRACE

    def _on_first_frame(self, conn: _Conn, kind: str, payload: object) -> None:
        if kind == DIST_STATUS:
            self._answer_status(conn, payload)
            conn.close_after_flush = True
            self._flush_conn(conn)
            return
        if kind != "hello" or not isinstance(payload, dict):
            self._send(conn, "reject", {"reason": "expected hello"})
            conn.close_after_flush = True
            self._flush_conn(conn)
            return
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            self._send(
                conn,
                "reject",
                {
                    "reason": f"protocol version {version} != "
                    f"{PROTOCOL_VERSION}"
                },
            )
            conn.close_after_flush = True
            self._flush_conn(conn)
            return
        conn.worker_name = str(payload.get("worker") or conn.peer)
        conn.local = (
            payload.get("host") == socket.gethostname()
            and payload.get("pid") == os.getpid()
        )
        # Seeding and remote loads target *remote* workers: an
        # in-process worker already reads this very store directly.
        seed = self._seed_store and self._store is not None and not conn.local
        remote = self._remote_loads and self._store is not None and not conn.local
        respawn = payload.get("respawn")
        respawned = isinstance(respawn, int) and respawn > 0
        with self._lock:
            self._workers_seen.add(conn.worker_name)
            if respawned:
                self._respawns += 1
            conn.info = self._worker_info.setdefault(
                conn.worker_name, _WorkerInfo(connected_at=time.monotonic())
            )
        conn.handshaken = True
        self._send(
            conn,
            "welcome",
            {
                "version": PROTOCOL_VERSION,
                "jobs": len(self._tasks),
                "warmup": self._warmup,
                "heartbeat": self._heartbeat,
                "seed": {"enabled": seed, "remote": remote},
                # Observability: the coordinator's wall clock (the
                # worker's clock-offset reference point) and whether
                # the worker should buffer + ship trace spans.
                "now": time.time(),
                "trace": TRACER.enabled,
            },
        )
        if respawned:
            self._log(
                f"worker {conn.worker_name} connected "
                f"(supervisor respawn, generation {respawn})"
            )
        else:
            self._log(f"worker {conn.worker_name} connected")
        if seed:
            versions, skipped = self._seed_plan(payload.get("seed_digest"))
            if skipped:
                self._log(
                    f"worker {conn.worker_name}: {skipped} seed tier(s) "
                    "already current, skipped"
                )
            if versions is None or versions:
                conn.seed_iter = iter(self._store.export_seed(versions))
            else:
                conn.seed_iter = iter(())  # digest says: nothing to send
            self._flush_conn(conn)  # starts pumping the stream

    def _seed_plan(self, digests: object) -> tuple[dict | None, int]:
        """What to stream given the worker's ``seed_digest`` (if any).

        Returns ``(versions, skipped)``: a ``{kernel: (versions,)}``
        mapping restricted to the tiers whose content differs from the
        worker's (``None`` when the worker sent no digest — stream the
        default plan), plus the number of matching tiers skipped.  A
        mismatched tier streams in full; ``import_seed_rows`` dedups on
        the worker, so over-sending costs bandwidth, never correctness.
        """
        if not isinstance(digests, dict) or self._store is None:
            return self._seed_versions, 0
        mine = self._store.seed_digest(self._seed_versions)
        keep: dict[str, list[str]] = {}
        skipped = 0
        for (kernel, version), digest in sorted(mine.items()):
            if digests.get((kernel, version)) == digest:
                skipped += 1
                continue
            keep.setdefault(kernel, []).append(version)
        return {k: tuple(v) for k, v in keep.items()}, skipped

    # ------------------------------------------------------------------
    # Queue state transitions (all under the lock)
    # ------------------------------------------------------------------
    def _lease_timeout_for(self, index: int) -> float:
        """Cost-scaled lease for one job (call under the lock).

        With no cost metadata anywhere in the batch this is exactly the
        fixed ``lease_timeout``.  Otherwise the job's estimate relative
        to the batch median scales it within
        [``_MIN_LEASE_SCALE``, ``_MAX_LEASE_SCALE``], floored at three
        advertised heartbeats so a lease can never expire between a live
        worker's heartbeats.
        """
        base = self._lease_timeout
        if self._cost_ref is None:
            return base
        cost = getattr(self._tasks[index], "cost", None)
        if cost is None or cost <= 0:
            return base
        scale = min(max(cost / self._cost_ref, _MIN_LEASE_SCALE), _MAX_LEASE_SCALE)
        return max(base * scale, 3 * self._heartbeat)

    def _assign(self, owner: int, held: set[int]) -> tuple[str, dict]:
        with self._lock:
            if self._remaining == 0 and not self._persistent:
                return "done", {}
            if self._persistent and self._closing:
                return "done", {}
            if self._pending:
                index = self._pending.popleft()
                timeout = self._lease_timeout_for(index)
                self._leases[index] = _Lease(
                    owner=owner,
                    deadline=time.monotonic() + timeout,
                    timeout=timeout,
                )
                held.add(index)
                TRACER.instant(
                    "dist:lease", cat="dist", index=index, owner=owner,
                    job=self._tasks[index].name, timeout=round(timeout, 3),
                )
                return "job", {"index": index, "job": self._tasks[index]}
            return "wait", {"delay": self._wait_delay}

    def _extend_lease(self, owner: int, index: object) -> None:
        with self._lock:
            lease = self._leases.get(index) if isinstance(index, int) else None
            if lease is not None and lease.owner == owner:
                lease.deadline = time.monotonic() + lease.timeout

    def _complete(
        self, index: int, outcome: JobResult | JobFailure, local: bool
    ) -> bool:
        """Record one result; False when a duplicate was dropped."""
        if not isinstance(index, int) or not 0 <= index < len(self._tasks):
            raise ProtocolError(f"result for unknown job index {index!r}")
        with self._lock:
            self._leases.pop(index, None)
            if self._outcomes[index] is not None:
                return False  # duplicate of a requeued job: first result won
            try:
                # The job may have been requeued and be waiting for the
                # next worker; this result arrived first, so withdraw it.
                self._pending.remove(index)
            except ValueError:
                pass
            self._outcomes[index] = outcome
            self._remaining -= 1
            # Under the same lock as the outcome write, so a result can
            # unblock each reduction exactly once even with several
            # completions landing in one loop iteration.
            ready = self._reductions.ready_after(index)
            if not local and isinstance(outcome, JobResult):
                if self._persistent:
                    # No batch end will absorb the accumulated deltas, so
                    # fold remote activity into the live totals now —
                    # /v1/metrics must reflect work the moment it lands.
                    KERNEL_CACHE.absorb(outcome.stats)
                    if outcome.store_stats is not None and self._store is not None:
                        self._store.absorb_stats(outcome.store_stats)
                else:
                    self._remote_cache_delta = self._remote_cache_delta.merge(
                        outcome.stats
                    )
                    if outcome.store_stats is not None:
                        self._remote_store_delta = (
                            outcome.store_stats
                            if self._remote_store_delta is None
                            else self._remote_store_delta.merge(
                                outcome.store_stats
                            )
                        )
        # Persist outside the queue lock: the store has its own lock, and
        # a slow flush must not stall a status probe mid-snapshot.
        if isinstance(outcome, JobResult):
            # Worker spans shipped inside the result join this process's
            # buffer — the only one the trace file is written from.
            TRACER.absorb(outcome.trace_events)
        if self._store is not None and isinstance(outcome, JobResult):
            self._store.absorb_touches(outcome.store_touches)
            if outcome.store_rows:
                self._store.absorb_rows(outcome.store_rows)
                self._store.flush()
        if self._checkpoint is not None:
            # After the store flush on purpose: a checkpoint must never
            # claim a completion whose rows a crash could still lose.
            if isinstance(outcome, JobResult):
                self._checkpoint.record_done(self._tasks[index].name)
            self._record_pending()
        for rid in ready:
            self._run_reduction(rid)
        self._maybe_done()
        if self._on_complete is not None:
            try:
                self._on_complete(index, outcome)
            except Exception as exc:  # observers must not kill the loop
                self._log(f"on_complete callback failed: {exc}")
        return True

    def _run_reduction(self, rid: int) -> None:
        """Fire one ready reduction in this (the coordinator's) process.

        Runs on the event-loop thread the moment the last input lands —
        cheap by contract (reductions are pure merges), and executing
        here is what makes "fires as the last sub-shard lands" literal
        rather than a post-batch sweep.  The reduction's store writes are
        flushed immediately, so a coordinator killed later has already
        banked every reduced row.
        """
        reduction = self._reductions.reductions[rid]
        with self._lock:
            inputs = [self._outcomes[i] for i in reduction.over]
        outcome = fire_reduction(reduction, inputs)
        if isinstance(outcome, JobResult):
            # The reduction ran here, so this re-absorbs our own drained
            # spans — a harmless round trip that keeps one code path.
            TRACER.absorb(outcome.trace_events)
        if self._store is not None and isinstance(outcome, JobResult):
            self._store.absorb_touches(outcome.store_touches)
            if outcome.store_rows:
                self._store.absorb_rows(outcome.store_rows)
                self._store.flush()
        with self._lock:
            self._reductions.outcomes[rid] = outcome
            self._reductions_pending -= 1
        TRACER.instant("dist:reduction", cat="dist", reduction=reduction.name)
        self._log(f"reduction {reduction.name} fired")

    def _maybe_done(self) -> None:
        """Signal completion once every job *and* every reduction is in."""
        if self._persistent:
            return  # a service's queue drains and refills; no batch end
        with self._lock:
            done = self._remaining == 0 and self._reductions_pending == 0
        if done:
            self._done.set()

    def _broadcast_done(self) -> None:
        """Tell parked workers the batch finished without waiting for
        their next poll.

        Only idle connections (no held leases) are told: a worker still
        computing a requeued duplicate keeps its request/response stream
        intact and learns ``done`` as the piggybacked reply to its
        result, exactly as before.  A persistent coordinator never
        finishes a batch, so its workers are told ``done`` only when the
        service itself is closing.
        """
        finished = self._done.is_set() and not self._persistent
        if not (finished or (self._persistent and self._closing)):
            return
        for conn in list(self._conns):
            if (
                conn.kind == "dist"
                and conn.handshaken
                and not conn.draining
                and not conn.close_after_flush
                and not conn.held
            ):
                self._send(conn, "done", {})
                conn.draining = True
                conn.deadline = time.monotonic() + _FAREWELL_GRACE

    def _expire_leases(self) -> None:
        """Requeue jobs whose lease expired (dead or silent worker)."""
        if self._done.is_set():
            return
        now = time.monotonic()
        with self._lock:
            expired = [
                (index, lease.timeout)
                for index, lease in self._leases.items()
                if lease.deadline < now
            ]
            for index, _ in expired:
                del self._leases[index]
                self._pending.appendleft(index)
                self._requeues += 1
            requeues = self._requeues
        for index, timeout in expired:
            TRACER.instant("dist:requeue", cat="dist", index=index)
            self._log(
                f"requeued job {index} after {timeout:.1f}s "
                "without a heartbeat"
            )
        if expired and self._checkpoint is not None:
            self._checkpoint.record_requeues(requeues)

    def _expire_farewells(self) -> None:
        """Close post-``done`` connections whose farewell never came."""
        now = time.monotonic()
        for conn in list(self._conns):
            if conn.draining and conn.deadline is not None and now >= conn.deadline:
                self._drop(conn, None)

    def _release(self, owner: int, held: set[int], worker: str) -> None:
        """Requeue every job this connection still holds (worker died)."""
        requeued = []
        with self._lock:
            for index in held:
                lease = self._leases.get(index)
                if lease is not None and lease.owner == owner:
                    del self._leases[index]
                    self._pending.appendleft(index)
                    self._requeues += 1
                    requeued.append(index)
            requeues = self._requeues
        for index in requeued:
            self._log(f"requeued job {index} after {worker} disconnected")
        if requeued and self._checkpoint is not None:
            self._checkpoint.record_requeues(requeues)

    # ------------------------------------------------------------------
    # Store data plane (remote loads) and the status probe
    # ------------------------------------------------------------------
    def _answer_load(self, conn: _Conn, payload: object) -> None:
        """Serve one ``store_load``: a worker's store miss, mid-job.

        Read-only: the row (pending overlay included, so results banked
        by other workers moments ago count) ships back verbatim, or
        ``None`` for a miss and the worker computes as usual.
        """
        row = None
        if self._store is not None and isinstance(payload, dict):
            kernel = payload.get("kernel")
            version = payload.get("version")
            key_hash = payload.get("key_hash")
            if (
                isinstance(kernel, str)
                and isinstance(version, str)
                and isinstance(key_hash, str)
            ):
                row = self._store.load_row(kernel, version, key_hash)
        self._send(conn, STORE_LOAD_RESULT, {"row": row})
        if row is not None:
            with self._lock:
                self._loads_served += 1
                if conn.info is not None:
                    conn.info.loads_served += 1

    def _answer_status(self, conn: _Conn, payload: object) -> None:
        """Serve a ``status`` probe (first frame of its own connection)."""
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != PROTOCOL_VERSION:
            self._send(
                conn,
                "reject",
                {
                    "reason": f"protocol version {version} != "
                    f"{PROTOCOL_VERSION}"
                },
            )
            return
        self._send(conn, DIST_STATUS_REPLY, self.status_snapshot())

    def _import_delta(self, payload: object, local: bool) -> None:
        """Absorb stray store rows/touches a worker produced outside jobs.

        A local (in-process) worker's statistics already live in this
        store's counters, so only its rows and touches are taken.
        """
        if self._store is not None:
            # import_delta validates the payload type itself.
            self._store.import_delta(payload, stats=not local)
