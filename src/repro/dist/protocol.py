"""Wire protocol of the distributed work queue.

Everything on the wire is a length-prefixed *frame*: a 4-byte big-endian
payload length followed by a pickled ``(kind, payload)`` pair.  Pickle is
acceptable here for the same reason it is in the result store: the
coordinator and its workers are one trust domain (the same checkout, the
same operator), and the protocol is a private transport between them —
never expose a coordinator port to machines you would not run code from.

The conversation, after a version handshake, is worker-driven::

    worker                          coordinator
    ------                          -----------
    hello {version, worker}    ->
                               <-   welcome {version, jobs, warmup}
    next {}                    ->
                               <-   job {index, job} | wait {delay} | done {}
    heartbeat {index}          ->   (one-way, extends the job's lease)
    result {index, outcome}    ->
                               <-   job | wait | done      (piggybacked next)
    delta {rows, stats}        ->   (one-way, stray store rows, e.g. warmup's)
    bye {}                     ->   (one-way, then close)

``result`` replies double as the next directive so a busy worker pays one
round trip per job.  Heartbeats are fire-and-forget and never answered,
which keeps the request/response streams aligned even though a worker's
heartbeat thread interleaves them with the main loop's requests (sends are
serialised by a per-socket lock on the worker side).
"""

from __future__ import annotations

import pickle
import socket
import struct

from ..errors import EngineError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "ProtocolError",
    "send_message",
    "recv_message",
    "request",
]

#: Bumped on any incompatible change; the handshake rejects mismatches
#: outright rather than guessing at cross-version semantics.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame (a pickled job or result).  Generously
#: above anything the sweeps ship, and low enough that a corrupt or
#: malicious length prefix cannot trigger a giant allocation.
MAX_FRAME = 1 << 28

_HEADER = struct.Struct(">I")


class ProtocolError(EngineError):
    """A malformed, oversized, or wrong-version frame."""


def send_message(sock: socket.socket, kind: str, payload: object = None) -> None:
    """Pickle and send one ``(kind, payload)`` frame."""
    blob = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME:
        raise ProtocolError(
            f"refusing to send {len(blob)}-byte frame (kind {kind!r})"
        )
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF.

    EOF mid-message is a torn frame and raises; EOF on a frame boundary is
    how a killed worker (or a finished coordinator) normally looks.
    """
    chunks = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received:
                raise ProtocolError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> tuple[str, object] | None:
    """Receive one frame; ``None`` means the peer closed the connection."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME}")
    blob = _recv_exact(sock, length)
    if blob is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        kind, payload = pickle.loads(blob)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(kind, str):
        raise ProtocolError(f"frame kind must be a string, got {type(kind)}")
    return kind, payload


def request(
    sock: socket.socket, kind: str, payload: object = None
) -> tuple[str, object]:
    """Send one frame and block for the reply (client-side helper)."""
    send_message(sock, kind, payload)
    reply = recv_message(sock)
    if reply is None:
        raise ProtocolError(f"peer closed while awaiting reply to {kind!r}")
    return reply
