"""Wire protocol of the distributed work queue.

Everything on the wire is a length-prefixed *frame*: a 4-byte big-endian
payload length followed by a pickled ``(kind, payload)`` pair.  Pickle is
acceptable here for the same reason it is in the result store: the
coordinator and its workers are one trust domain (the same checkout, the
same operator), and the protocol is a private transport between them —
never expose a coordinator port to machines you would not run code from.

The conversation, after a version handshake, is worker-driven::

    worker                          coordinator
    ------                          -----------
    hello {version, worker,
           seed_digest?}       ->
                               <-   welcome {version, jobs, warmup, seed,
                                    now, trace}
                               <-   store_seed {rows, done}*  (warm start,
                                    zero or more chunks, last has done=True;
                                    tiers whose seed_digest matched the
                                    coordinator's are skipped entirely)
    next {}                    ->
                               <-   job {index, job} | wait {delay} | done {}
    heartbeat {index}          ->   (one-way, extends the job's lease)
    store_load {kernel, ...}   ->   (mid-job store miss, remote tier)
                               <-   store_load_result {row | None}
    result {index, outcome}    ->
                               <-   job | wait | done      (piggybacked next)
    delta {rows, stats}        ->   (one-way, stray store rows, e.g. warmup's)
    bye {}                     ->   (one-way, then close)

``result`` replies double as the next directive so a busy worker pays one
round trip per job.  Heartbeats are fire-and-forget and never answered,
which keeps the request/response streams aligned even though a worker's
heartbeat thread interleaves them with the main loop's requests (sends are
serialised by a per-socket lock on the worker side).  ``store_load``
requests only ever happen while a job (or warmup) is computing — the main
loop is then blocked inside ``execute_job`` and not reading the socket —
so their replies cannot race the job/wait/done stream.

A second, trivial conversation supports observability: a probe client's
*first* frame may be ``status {version}`` instead of ``hello``, answered
with one ``status_reply {...}`` (queue depth, leases, per-worker
throughput, seed/serve counters) after which the connection closes.  That
is what ``python -m repro dist status HOST:PORT`` speaks.

Tracing rides the existing frames rather than adding new ones: the
``welcome`` carries ``now`` (the coordinator's wall clock, the reference
for the worker's NTP-midpoint clock-offset estimate) and ``trace`` (tell
the worker to buffer spans), and a traced worker's spans ship home inside
each ``result``'s ``JobResult.trace_events`` — exactly like its banked
store rows, so the coordinator stays the trace file's single writer.
Dict payloads may grow keys without a version bump (readers ``get`` what
they know); ``PROTOCOL_VERSION`` changes only when existing semantics do.
"""

from __future__ import annotations

import pickle
import socket
import struct

from ..errors import EngineError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "STORE_SEED",
    "STORE_LOAD",
    "STORE_LOAD_RESULT",
    "DIST_STATUS",
    "DIST_STATUS_REPLY",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
    "request",
]

#: Bumped on any incompatible change; the handshake rejects mismatches
#: outright rather than guessing at cross-version semantics.  v2 added
#: the store data plane (seed streaming, remote loads) and the status
#: probe.
PROTOCOL_VERSION = 2

#: Frame kinds of the store data plane and the status probe.  The job
#: frames (``hello``/``welcome``/``next``/``job``/``result``/...) predate
#: these constants and stay literal strings at their call sites.
STORE_SEED = "store_seed"
STORE_LOAD = "store_load"
STORE_LOAD_RESULT = "store_load_result"
DIST_STATUS = "status"
DIST_STATUS_REPLY = "status_reply"

#: Upper bound on a single frame (a pickled job or result).  Generously
#: above anything the sweeps ship, and low enough that a corrupt or
#: malicious length prefix cannot trigger a giant allocation.
MAX_FRAME = 1 << 28

_HEADER = struct.Struct(">I")


class ProtocolError(EngineError):
    """A malformed, oversized, or wrong-version frame."""


def encode_message(kind: str, payload: object = None) -> bytes:
    """One ``(kind, payload)`` frame as wire bytes (header + pickle).

    The building block shared by the blocking :func:`send_message` and
    the coordinator's event loop (which appends frames to per-connection
    write buffers instead of calling ``sendall``).
    """
    blob = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME:
        raise ProtocolError(
            f"refusing to send {len(blob)}-byte frame (kind {kind!r})"
        )
    return _HEADER.pack(len(blob)) + blob


def decode_message(blob: bytes) -> tuple[str, object]:
    """Decode one frame *payload* (header already stripped and checked)."""
    try:
        kind, payload = pickle.loads(blob)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(kind, str):
        raise ProtocolError(f"frame kind must be a string, got {type(kind)}")
    return kind, payload


def send_message(sock: socket.socket, kind: str, payload: object = None) -> None:
    """Pickle and send one ``(kind, payload)`` frame."""
    sock.sendall(encode_message(kind, payload))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF.

    EOF mid-message is a torn frame and raises; EOF on a frame boundary is
    how a killed worker (or a finished coordinator) normally looks.
    """
    chunks = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received:
                raise ProtocolError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> tuple[str, object] | None:
    """Receive one frame; ``None`` means the peer closed the connection."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME}")
    blob = _recv_exact(sock, length)
    if blob is None:
        raise ProtocolError("connection closed between header and payload")
    return decode_message(blob)


def request(
    sock: socket.socket, kind: str, payload: object = None
) -> tuple[str, object]:
    """Send one frame and block for the reply (client-side helper)."""
    send_message(sock, kind, payload)
    reply = recv_message(sock)
    if reply is None:
        raise ProtocolError(f"peer closed while awaiting reply to {kind!r}")
    return reply
