"""repro — a full reproduction of Shimi & Castañeda (PODC 2020):
*K-set agreement bounds in round-based models through combinatorial topology*.

The library provides, from scratch:

* :mod:`repro.graphs` — communication graphs, families, upward closures,
  symmetric closures, the graph path product;
* :mod:`repro.combinatorics` — domination / equal-domination / covering /
  distributed-domination / max-covering numbers and covering sequences;
* :mod:`repro.topology` — simplexes, complexes, pseudospheres, homology,
  nerves, shellability, uninterpreted complexes and their interpretations;
* :mod:`repro.models` — oblivious and closed-above round-based models,
  Heard-Of predicates, adversaries, multi-round products;
* :mod:`repro.agreement` — the k-set agreement task, oblivious algorithms
  (MinOfDominatingSet, FloodMin), execution engine;
* :mod:`repro.bounds` — every bound theorem of the paper as an executable
  function with provenance;
* :mod:`repro.verification` — exhaustive algorithm verification and exact
  one-round solvability search (the ground truth for the bounds);
* :mod:`repro.analysis` — the experiment tables (E1..E14) reproducing every
  figure and worked example of the paper.

Quickstart
----------
>>> from repro import bound_report
>>> from repro.graphs import wheel, symmetric_closure
>>> report = bound_report(symmetric_closure([wheel(4)]))
>>> report.best_upper.k, report.best_lower.k, report.tight
(3, 2, True)
"""

from .agreement import FloodMin, KSetAgreement, MinOfDominatingSet, execute
from .bounds import Bound, BoundKind, BoundReport, bound_report
from .graphs import Digraph
from .models import ClosedAboveModel, simple_closed_above, symmetric_closed_above
from .verification import decide_one_round_solvability, verify_algorithm

__version__ = "1.0.0"

__all__ = [
    "Digraph",
    "ClosedAboveModel",
    "simple_closed_above",
    "symmetric_closed_above",
    "FloodMin",
    "MinOfDominatingSet",
    "KSetAgreement",
    "execute",
    "Bound",
    "BoundKind",
    "BoundReport",
    "bound_report",
    "decide_one_round_solvability",
    "verify_algorithm",
    "__version__",
]
