"""repro — a full reproduction of Shimi & Castañeda (PODC 2020):
*K-set agreement bounds in round-based models through combinatorial topology*.

The library provides, from scratch:

* :mod:`repro.graphs` — communication graphs, families, upward closures,
  symmetric closures, the graph path product;
* :mod:`repro.combinatorics` — domination / equal-domination / covering /
  distributed-domination / max-covering numbers and covering sequences;
* :mod:`repro.topology` — simplexes, complexes, pseudospheres, homology,
  nerves, shellability, uninterpreted complexes and their interpretations;
* :mod:`repro.models` — oblivious and closed-above round-based models,
  Heard-Of predicates, adversaries, multi-round products;
* :mod:`repro.agreement` — the k-set agreement task, oblivious algorithms
  (MinOfDominatingSet, FloodMin), execution engine;
* :mod:`repro.bounds` — every bound theorem of the paper as an executable
  function with provenance;
* :mod:`repro.verification` — exhaustive algorithm verification and exact
  one-round solvability search (the ground truth for the bounds), with
  pluggable CSP compute backends (``REPRO_CSP_BACKEND``: the default
  ``bitset`` bitmask search, the ``reference`` baseline, optional
  ``sat`` via `python-sat`, and a ``check`` cross-check mode);
* :mod:`repro.engine` — the shared compute layer: canonical graph keys and
  interning, the process-global :class:`~repro.engine.cache.KernelCache`
  that memoizes the hot kernels across call sites, and the
  ``multiprocessing`` batch driver behind every parallel workload;
* :mod:`repro.store` — the persistent second tier: a SQLite-backed,
  content-addressed result store (``REPRO_STORE=rw``) that warm-starts
  fresh processes from everything earlier processes computed, with
  per-kernel implementation versioning;
* :mod:`repro.dist` — distributed execution: a TCP work-queue
  coordinator plus ``python -m repro worker`` processes behind the same
  executor protocol as the serial and pool paths, with the store as the
  cluster-wide warm-start substrate — streamed over the wire to remote
  hosts at handshake (store seeding) and served on demand mid-run
  (remote loads), no shared filesystem required;
* :mod:`repro.analysis` — the experiment tables (E1..E16) reproducing every
  figure and worked example of the paper, plus the sharded resumable
  solvability sweeps (``python -m repro sweep``).

Architecture: the engine layer
------------------------------
All expensive quantities route through a handful of kernels (domination /
covering numbers, homology ranks, the solvability CSP), each decorated
with :func:`~repro.engine.cache.cached_kernel`.  Kernel results are
memoized under canonical keys — isomorphism-invariant for small graphs,
so a whole symmetric orbit shares one cache entry for label-invariant
numbers; exact adjacency otherwise — and the cache can be disabled at any
time (``repro.engine.cache_disabled()`` or ``REPRO_NO_CACHE=1``) with
identical results.  Kernel misses fall through to the persistent result
store when it is enabled (``REPRO_STORE=rw``), so reruns in new
processes start warm; results carry per-kernel implementation versions,
and the store can be switched off per block with
``repro.store.disabled()`` — again with identical results.  Batch
workloads fan out with
:func:`repro.engine.run_batch`, which keeps the serial ``jobs=1`` path as
the reference semantics: :func:`repro.bounds.bound_report_many` batches
bound reports over many models, and ``python -m repro experiments
--jobs N`` runs the experiment tables on worker processes with merged
cache statistics (``python -m repro cache-stats`` probes cache health).

Quickstart
----------
>>> from repro import bound_report
>>> from repro.graphs import wheel, symmetric_closure
>>> report = bound_report(symmetric_closure([wheel(4)]))
>>> report.best_upper.k, report.best_lower.k, report.tight
(3, 2, True)

Batch variant (identical results for any ``jobs``)::

    from repro import bound_report_many
    from repro.graphs import cycle, wheel
    reports = bound_report_many([[cycle(4)], [wheel(5)]], jobs=4)
"""

from .agreement import FloodMin, KSetAgreement, MinOfDominatingSet, execute
from .bounds import Bound, BoundKind, BoundReport, bound_report, bound_report_many
from .config import (
    ExecutorConfig,
    ServeConfig,
    StoreConfig,
    SweepConfig,
    config_fingerprint,
)
from .engine import Job, KernelCache, run_batch
from .graphs import Digraph
from .models import ClosedAboveModel, simple_closed_above, symmetric_closed_above
from .verification import decide_one_round_solvability, verify_algorithm

__version__ = "1.10.0"

__all__ = [
    "Digraph",
    "ClosedAboveModel",
    "simple_closed_above",
    "symmetric_closed_above",
    "FloodMin",
    "MinOfDominatingSet",
    "KSetAgreement",
    "execute",
    "Bound",
    "BoundKind",
    "BoundReport",
    "bound_report",
    "bound_report_many",
    "Job",
    "KernelCache",
    "run_batch",
    "ExecutorConfig",
    "StoreConfig",
    "SweepConfig",
    "ServeConfig",
    "config_fingerprint",
    "decide_one_round_solvability",
    "verify_algorithm",
    "__version__",
]
