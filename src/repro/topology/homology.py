"""Simplicial homology: boundary matrices, ranks, reduced Betti numbers.

Used to *measure* the connectivity claims of the paper (Lemma 4.7, Cor 4.9,
Thm 4.12): a complex is homologically ``k``-connected when its reduced Betti
numbers vanish in degrees ``0..k``.  For the complexes this paper manipulates
(pseudospheres and their unions/intersections — wedges of spheres up to
homotopy, and shellable complexes) homological and topological connectivity
coincide, so the machine check is faithful; see EXPERIMENTS.md for the
caveat discussion.

Two exact backends are provided and cross-checked in the tests:

* GF(2) — bitmask Gaussian elimination, fast, the default;
* rationals — fraction-free integer elimination (no floating point), slower,
  immune to the (here absent) torsion blind spot of GF(2).
"""

from __future__ import annotations

from fractions import Fraction

from ..engine.cache import cached_kernel
from ..errors import TopologyError
from .complexes import SimplicialComplex
from .simplex import Simplex, stable_key

__all__ = [
    "boundary_matrix_gf2",
    "rank_gf2",
    "betti_numbers",
    "reduced_betti_numbers",
    "homological_connectivity",
    "is_homologically_k_connected",
]


def _indexed_simplices(complex_: SimplicialComplex) -> list[dict[Simplex, int]]:
    """Index the ``d``-simplexes of each dimension ``0..dim``."""
    levels: list[dict[Simplex, int]] = [
        {} for _ in range(complex_.dimension + 1)
    ]
    for s in complex_.simplices():
        level = levels[s.dimension]
        level[s] = len(level)
    # Re-index deterministically for reproducible matrices.
    for d, level in enumerate(levels):
        ordered = sorted(level, key=lambda s: stable_key(s.vertices))
        levels[d] = {s: i for i, s in enumerate(ordered)}
    return levels


def boundary_matrix_gf2(
    complex_: SimplicialComplex, dimension: int
) -> list[int]:
    """The GF(2) boundary map ``∂_d: C_d -> C_{d-1}`` as bitmask columns.

    Column ``j`` is the bitmask (over ``(d-1)``-simplex indices) of the
    boundary of the ``j``-th ``d``-simplex.  ``∂_0`` maps every vertex to the
    (rank-1) augmentation, represented as bit 0 set for every vertex.
    """
    if dimension < 0 or dimension > complex_.dimension:
        raise TopologyError(
            f"dimension {dimension} out of range for a complex of "
            f"dimension {complex_.dimension}"
        )
    levels = _indexed_simplices(complex_)
    if dimension == 0:
        return [1] * len(levels[0])
    lower = levels[dimension - 1]
    columns = []
    upper = sorted(levels[dimension], key=levels[dimension].get)
    for s in upper:
        col = 0
        for face in s.boundary():
            col |= 1 << lower[face]
        columns.append(col)
    return columns


def rank_gf2(columns: list[int]) -> int:
    """Rank of a GF(2) matrix given as bitmask columns."""
    pivots: list[int] = []
    rank = 0
    for col in columns:
        for p in pivots:
            low = p & -p
            if col & low:
                col ^= p
        if col:
            pivots.append(col)
            rank += 1
    return rank


@cached_kernel(
    name="betti_numbers",
    key=lambda complex_, field="gf2": (complex_, field),
)
def betti_numbers(
    complex_: SimplicialComplex, field: str = "gf2"
) -> tuple[int, ...]:
    """Unreduced Betti numbers ``(b_0, ..., b_dim)`` over the chosen field.

    Memoized in the kernel cache: complexes hash by their facet set, so
    repeated connectivity checks of one uninterpreted complex — and of
    equal complexes rebuilt at different call sites — rank once.
    """
    if complex_.is_empty():
        return ()
    dim = complex_.dimension
    counts = complex_.simplex_counts()
    ranks = [0] * (dim + 2)  # ranks[d] = rank ∂_d for d in 1..dim
    if field == "gf2":
        for d in range(1, dim + 1):
            ranks[d] = rank_gf2(boundary_matrix_gf2(complex_, d))
    elif field == "rational":
        for d in range(1, dim + 1):
            ranks[d] = _rank_rational(complex_, d)
    else:
        raise TopologyError(f"unknown field {field!r}; use 'gf2' or 'rational'")
    betti = []
    for d in range(dim + 1):
        betti.append(counts[d] - ranks[d] - ranks[d + 1])
    return tuple(betti)


def reduced_betti_numbers(
    complex_: SimplicialComplex, field: str = "gf2"
) -> tuple[int, ...]:
    """Reduced Betti numbers: ``b̃_0 = b_0 - 1``, ``b̃_d = b_d`` for ``d ≥ 1``."""
    betti = betti_numbers(complex_, field)
    if not betti:
        return ()
    return (betti[0] - 1, *betti[1:])


def homological_connectivity(
    complex_: SimplicialComplex, field: str = "gf2"
) -> float:
    """The largest ``k`` with ``b̃_0 = ... = b̃_k = 0``.

    Conventions: the empty complex returns ``-2`` (not even non-empty); a
    disconnected complex returns ``-1`` (non-empty only); a complex whose
    reduced homology vanishes everywhere returns ``math.inf`` (homologically
    contractible — e.g. a cone or a single simplex).
    """
    import math

    if complex_.is_empty():
        return -2
    reduced = reduced_betti_numbers(complex_, field)
    for degree, b in enumerate(reduced):
        if b != 0:
            return degree - 1
    return math.inf


def is_homologically_k_connected(
    complex_: SimplicialComplex, k: int, field: str = "gf2"
) -> bool:
    """True iff reduced homology vanishes in degrees ``0..k``.

    ``k = -1`` only asks for non-emptiness, matching the paper's usage.
    """
    if k <= -2:
        return True
    if complex_.is_empty():
        return False
    if k == -1:
        return True
    return homological_connectivity(complex_, field) >= k


# ----------------------------------------------------------------------
# Rational backend (exact, fraction-based)
# ----------------------------------------------------------------------

def _boundary_matrix_signed(
    complex_: SimplicialComplex, dimension: int
) -> list[list[int]]:
    """Signed integer boundary matrix (rows: (d-1)-simplexes, cols: d)."""
    levels = _indexed_simplices(complex_)
    lower = levels[dimension - 1]
    upper = sorted(levels[dimension], key=levels[dimension].get)
    rows = len(lower)
    matrix = [[0] * len(upper) for _ in range(rows)]
    for j, s in enumerate(upper):
        ordered = sorted(s.vertices, key=stable_key)
        for drop in range(len(ordered)):
            face = Simplex(v for i, v in enumerate(ordered) if i != drop)
            matrix[lower[face]][j] = (-1) ** drop
    return matrix


def _rank_rational(complex_: SimplicialComplex, dimension: int) -> int:
    """Exact rank of ``∂_d`` over the rationals via Gaussian elimination."""
    matrix = [
        [Fraction(x) for x in row]
        for row in _boundary_matrix_signed(complex_, dimension)
    ]
    if not matrix or not matrix[0]:
        return 0
    rows, cols = len(matrix), len(matrix[0])
    rank = 0
    pivot_row = 0
    for col in range(cols):
        pivot = next(
            (r for r in range(pivot_row, rows) if matrix[r][col] != 0), None
        )
        if pivot is None:
            continue
        matrix[pivot_row], matrix[pivot] = matrix[pivot], matrix[pivot_row]
        head = matrix[pivot_row][col]
        for r in range(pivot_row + 1, rows):
            if matrix[r][col] != 0:
                factor = matrix[r][col] / head
                matrix[r] = [
                    a - factor * b for a, b in zip(matrix[r], matrix[pivot_row])
                ]
        rank += 1
        pivot_row += 1
        if pivot_row == rows:
            break
    return rank
