"""Colored simplicial complexes (Def 4.2).

A complex is stored by its *facets* (inclusion-maximal simplexes); all other
simplexes are derived by downward closure on demand.  This keeps the huge
protocol complexes of closed-above models representable: a pseudosphere on
``n`` processes with ``v`` views each has ``v**n`` facets but astronomically
many faces.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from functools import cached_property

from ..errors import TopologyError
from .simplex import Simplex, stable_key

__all__ = ["SimplicialComplex"]


class SimplicialComplex:
    """An immutable simplicial complex given by its facets.

    >>> c = SimplicialComplex.from_simplices([Simplex([(0, 'a'), (1, 'b')])])
    >>> c.dimension
    1
    >>> c.is_pure()
    True
    """

    __slots__ = ("_facets", "_hash", "__dict__")

    def __init__(self, facets: Iterable[Simplex]):
        facets = frozenset(facets)
        # A facet can only be dominated by a strictly larger simplex, so when
        # all facets share a dimension (pure complexes — the common case for
        # pseudospheres and protocol complexes) no check is needed.
        by_dim: dict[int, list[Simplex]] = {}
        for f in facets:
            by_dim.setdefault(f.dimension, []).append(f)
        if len(by_dim) > 1:
            dims = sorted(by_dim)
            for d in dims[:-1]:
                larger = [g for e in dims if e > d for g in by_dim[e]]
                for f in by_dim[d]:
                    if any(f.is_face_of(g) for g in larger):
                        raise TopologyError(
                            "facet list contains a simplex dominated by "
                            "another; use from_simplices to normalise"
                        )
        self._facets = facets
        self._hash = hash(facets)

    @classmethod
    def from_simplices(cls, simplices: Iterable[Simplex]) -> "SimplicialComplex":
        """Build a complex from arbitrary simplexes, keeping the maximal ones."""
        pool = set(simplices)
        pool.discard(Simplex.empty())
        maximal: list[Simplex] = []
        larger: list[Simplex] = []  # strictly larger maximal simplexes only
        current_size = None
        for s in sorted(pool, key=lambda t: -len(t)):
            if current_size is not None and len(s) < current_size:
                larger = list(maximal)
            current_size = len(s)
            if not any(s.is_face_of(m) for m in larger):
                maximal.append(s)
        return cls(maximal)

    @classmethod
    def empty(cls) -> "SimplicialComplex":
        """The empty complex (no simplexes at all)."""
        return cls(())

    # ------------------------------------------------------------------
    @property
    def facets(self) -> frozenset[Simplex]:
        """The inclusion-maximal simplexes."""
        return self._facets

    def is_empty(self) -> bool:
        """True iff the complex has no simplexes."""
        return not self._facets

    @cached_property
    def dimension(self) -> int:
        """Maximum facet dimension; -1 for the empty complex."""
        if not self._facets:
            return -1
        return max(f.dimension for f in self._facets)

    def is_pure(self) -> bool:
        """True iff every facet has the same dimension (Def 4.2)."""
        if not self._facets:
            return True
        dims = {f.dimension for f in self._facets}
        return len(dims) == 1

    @cached_property
    def vertices(self) -> frozenset:
        """All (color, view) vertices."""
        verts: set = set()
        for f in self._facets:
            verts |= f.vertices
        return frozenset(verts)

    @cached_property
    def colors(self) -> frozenset:
        """All colors appearing in the complex."""
        return frozenset(c for c, _ in self.vertices)

    def simplices(self, dimension: int | None = None) -> Iterator[Simplex]:
        """All non-empty simplexes, optionally of a fixed dimension.

        Deduplicated across facets; yields in a deterministic order.
        """
        seen: set[Simplex] = set()
        for f in sorted(self._facets, key=lambda s: stable_key(s.vertices)):
            dims = range(f.dimension + 1) if dimension is None else (dimension,)
            for d in dims:
                for face in f.faces(d):
                    if face not in seen:
                        seen.add(face)
                        yield face

    def simplex_counts(self) -> tuple[int, ...]:
        """The f-vector ``(#0-simplexes, #1-simplexes, ...)``."""
        counts = [0] * (self.dimension + 1)
        for s in self.simplices():
            counts[s.dimension] += 1
        return tuple(counts)

    def euler_characteristic(self) -> int:
        """``Σ (-1)^d f_d`` (unreduced)."""
        return sum(
            (-1) ** d * count for d, count in enumerate(self.simplex_counts())
        )

    def contains_simplex(self, s: Simplex) -> bool:
        """Membership test (empty simplex belongs to any non-empty complex)."""
        if s.dimension == -1:
            return not self.is_empty()
        return any(s.is_face_of(f) for f in self._facets)

    # ------------------------------------------------------------------
    def skeleton(self, k: int) -> "SimplicialComplex":
        """The ``k``-skeleton: all simplexes of dimension at most ``k``."""
        if k < 0:
            return SimplicialComplex.empty()
        pieces: set[Simplex] = set()
        for f in self._facets:
            if f.dimension <= k:
                pieces.add(f)
            else:
                pieces.update(f.faces(k))
        return SimplicialComplex.from_simplices(pieces)

    def union(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """Union of complexes."""
        return SimplicialComplex.from_simplices(self._facets | other._facets)

    def intersection(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """Intersection of complexes (computed facet-pair-wise).

        The intersection of two complexes given by facets has as simplexes
        exactly the common faces; its facets are the maximal pairwise facet
        intersections.
        """
        pieces: set[Simplex] = set()
        for f in self._facets:
            for g in other._facets:
                common = f.intersection(g)
                if len(common):
                    pieces.add(common)
        return SimplicialComplex.from_simplices(pieces)

    def star(self, vertex) -> "SimplicialComplex":
        """The closed star of a vertex: facets containing it."""
        return SimplicialComplex.from_simplices(
            f for f in self._facets if vertex in f
        )

    def link(self, vertex) -> "SimplicialComplex":
        """The link of a vertex."""
        pieces = [
            Simplex(v for v in f.vertices if v != vertex)
            for f in self._facets
            if vertex in f
        ]
        return SimplicialComplex.from_simplices(p for p in pieces if len(p))

    def induced_by_facets(self, facets: Iterable[Simplex]) -> "SimplicialComplex":
        """Subcomplex generated by a subset of facets."""
        facets = list(facets)
        for f in facets:
            if f not in self._facets:
                raise TopologyError(f"{f!r} is not a facet of this complex")
        return SimplicialComplex.from_simplices(facets)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimplicialComplex):
            return NotImplemented
        return self._facets == other._facets

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._facets)

    def __iter__(self) -> Iterator[Simplex]:
        return iter(sorted(self._facets, key=lambda s: stable_key(s.vertices)))

    def __repr__(self) -> str:
        return (
            f"SimplicialComplex(dim={self.dimension}, "
            f"facets={len(self._facets)}, vertices={len(self.vertices)})"
        )
