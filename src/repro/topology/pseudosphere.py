"""Pseudospheres (Def 4.5) and their closure properties (Lemmas 4.6, 4.7).

The pseudosphere ``φ(Π; V_1, ..., V_n)`` has a vertex ``(P_i, v)`` for every
``v ∈ V_i`` and a simplex for every partial choice of at most one view per
process.  Pseudospheres are the building blocks of closed-above protocol
complexes: they are closed under intersection (component-wise, Lemma 4.6) and
``(m - 2)``-connected where ``m`` is the number of non-empty components
(Lemma 4.7) — topologically they are joins of discrete sets, i.e. wedges of
``(m-1)``-spheres.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from itertools import product

from ..engine.cache import cached_kernel
from ..errors import TopologyError
from .complexes import SimplicialComplex
from .simplex import Simplex

__all__ = [
    "Pseudosphere",
    "pseudosphere_complex",
    "predicted_connectivity",
]


class Pseudosphere:
    """A symbolic pseudosphere: processes plus one view set per process.

    Keeping pseudospheres symbolic (rather than as facet lists) makes
    intersections (Lemma 4.6) and connectivity predictions (Lemma 4.7) free;
    :meth:`to_complex` materialises the facets when homology is wanted.
    """

    __slots__ = ("_views",)

    def __init__(self, views: Mapping[Hashable, Iterable[Hashable]]):
        if not views:
            raise TopologyError("a pseudosphere needs at least one process")
        self._views: dict[Hashable, frozenset] = {
            process: frozenset(vs) for process, vs in views.items()
        }

    @classmethod
    def uniform(
        cls, processes: Sequence[Hashable], values: Iterable[Hashable]
    ) -> "Pseudosphere":
        """``φ(Π; V, ..., V)`` — e.g. the input complex ``Ψ(Π, [0, k])``."""
        values = frozenset(values)
        return cls({p: values for p in processes})

    # ------------------------------------------------------------------
    @property
    def processes(self) -> tuple:
        """The processes, in insertion order."""
        return tuple(self._views)

    def views_of(self, process) -> frozenset:
        """The view set ``V_i`` of a process."""
        try:
            return self._views[process]
        except KeyError:
            raise TopologyError(f"unknown process {process!r}") from None

    def nonempty_components(self) -> int:
        """Number of processes with a non-empty view set (Lemma 4.7's ``n``)."""
        return sum(1 for vs in self._views.values() if vs)

    def is_void(self) -> bool:
        """True iff every component is empty (the complex has no vertices)."""
        return self.nonempty_components() == 0

    def facet_count(self) -> int:
        """Number of facets of the materialised complex."""
        count = 1
        for vs in self._views.values():
            if vs:
                count *= len(vs)
        return count if self.nonempty_components() else 0

    # ------------------------------------------------------------------
    def intersection(self, other: "Pseudosphere") -> "Pseudosphere":
        """Component-wise intersection (Lemma 4.6).

        ``φ(Π; U_i) ∩ φ(Π; V_i) = φ(Π; U_i ∩ V_i)``; both sides must be over
        the same process set.
        """
        if set(self._views) != set(other._views):
            raise TopologyError(
                "pseudosphere intersection needs identical process sets"
            )
        return Pseudosphere(
            {p: self._views[p] & other._views[p] for p in self._views}
        )

    def predicted_connectivity(self) -> float:
        """Lemma 4.7: ``(m - 2)``-connected with ``m`` non-empty components.

        Degenerate cases follow the join structure: no non-empty component
        means the complex is empty (``-2`` by our convention), and a process
        with a *single* view makes the complex a cone, hence contractible
        (``inf``) — consistent with, and sharper than, the lemma.
        """
        import math

        m = self.nonempty_components()
        if m == 0:
            return -2
        if any(len(vs) == 1 for vs in self._views.values() if vs):
            return math.inf
        return m - 2

    def to_complex(self) -> SimplicialComplex:
        """Materialise the facets (one view per non-empty component).

        Memoized in the kernel cache under the canonical (sorted) view
        map, so equal pseudospheres built in any process order — and, via
        the persistent store, in any *process* — materialise once.
        """
        # Sorted by repr, like the pre-memoization code: processes and
        # views only need to be Hashable, not orderable.  Equal
        # pseudospheres canonicalise to one key; exotic payloads without
        # a stable repr merely miss the persistent tier (their keys are
        # unfingerprintable), they don't break.
        active = tuple(
            sorted(
                (
                    (p, tuple(sorted(vs, key=repr)))
                    for p, vs in self._views.items()
                    if vs
                ),
                key=repr,
            )
        )
        if not active:
            return SimplicialComplex.empty()
        return _materialise_pseudosphere(active)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pseudosphere):
            return NotImplemented
        return self._views == other._views

    def __hash__(self) -> int:
        return hash(frozenset(self._views.items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{p!r}: {sorted(vs, key=repr)!r}" for p, vs in self._views.items()
        )
        return f"Pseudosphere({{{inner}}})"


@cached_kernel(name="pseudosphere_complex", version="1")
def _materialise_pseudosphere(
    active: tuple[tuple[Hashable, tuple], ...]
) -> SimplicialComplex:
    """Facet enumeration behind :meth:`Pseudosphere.to_complex`.

    ``active`` is the canonicalised non-empty view map — a deterministic
    function of the pseudosphere, which is what makes it a valid cache
    (and store) key.  The returned complex is immutable and shared.
    """
    facets = []
    names = [p for p, _ in active]
    for choice in product(*(vs for _, vs in active)):
        facets.append(Simplex(zip(names, choice)))
    return SimplicialComplex.from_simplices(facets)


def pseudosphere_complex(
    processes: Sequence[Hashable],
    view_sets: Sequence[Iterable[Hashable]],
) -> SimplicialComplex:
    """Convenience: materialised ``φ(processes; view_sets)``."""
    if len(processes) != len(view_sets):
        raise TopologyError(
            f"{len(processes)} processes but {len(view_sets)} view sets"
        )
    return Pseudosphere(dict(zip(processes, view_sets))).to_complex()


def predicted_connectivity(view_sets: Sequence[Iterable[Hashable]]) -> float:
    """Lemma 4.7 prediction without building anything."""
    ps = Pseudosphere({i: vs for i, vs in enumerate(view_sets)})
    return ps.predicted_connectivity()
