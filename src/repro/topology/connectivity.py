"""High-level connectivity checks tying the paper's lemmas together.

* :func:`connectivity_of_closed_above` — Thm 4.12 / Cor 4.9, computed two
  ways: the paper's nerve-lemma route over the pseudosphere cover, and a
  direct homology computation on the materialised complex.
* :func:`verify_lemma_4_8` — machine check that the uninterpreted complex of
  ``↑G`` equals the predicted pseudosphere.
* :func:`agreement_impossibility_threshold` — the classical link between
  protocol-complex connectivity and k-set agreement ([15, Thm 10.3.1]):
  a ``k``-connected protocol complex forbids ``(k+1)``-set agreement.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import TopologyError
from ..graphs.digraph import Digraph
from .complexes import SimplicialComplex
from .homology import homological_connectivity
from .pseudosphere import Pseudosphere
from .uninterpreted import (
    closed_above_pseudosphere,
    closed_above_pseudosphere_cover,
    uninterpreted_complex_of_closed_above,
)

__all__ = [
    "connectivity_of_closed_above",
    "predicted_closed_above_connectivity",
    "verify_lemma_4_8",
    "agreement_impossibility_threshold",
]


def predicted_closed_above_connectivity(generators: Iterable[Digraph]) -> int:
    """Thm 4.12's claim: the uninterpreted complex is ``(n - 2)``-connected."""
    generators = tuple(generators)
    if not generators:
        raise TopologyError("need at least one generator")
    return generators[0].n - 2


def connectivity_of_closed_above(
    generators: Iterable[Digraph], method: str = "homology"
) -> float:
    """Measured connectivity of a closed-above model's uninterpreted complex.

    ``method="homology"`` materialises the complex and computes reduced
    Betti numbers; ``method="nerve"`` follows the paper's proof structure:
    every pairwise-and-deeper intersection of the generator pseudospheres is
    again a pseudosphere containing the clique view, so the nerve is a full
    simplex and the union inherits ``min`` connectivity of the pieces
    (Lemma 4.6 + Lemma 4.11).  The nerve route returns the *predicted* value
    after verifying the structural facts it relies on.
    """
    generators = tuple(generators)
    if method == "homology":
        complex_ = uninterpreted_complex_of_closed_above(generators)
        return homological_connectivity(complex_)
    if method == "nerve":
        cover = closed_above_pseudosphere_cover(generators)
        _verify_nerve_structure(cover)
        return min(ps.predicted_connectivity() for ps in cover)
    raise TopologyError(f"unknown method {method!r}; use 'homology' or 'nerve'")


def _verify_nerve_structure(cover: list[Pseudosphere]) -> None:
    """Check the two facts Thm 4.12's proof uses about the cover.

    (1) every intersection of cover elements is non-empty (it contains the
    clique view), hence the nerve is a simplex; (2) each intersection is a
    pseudosphere with every component non-empty.
    """
    from itertools import combinations

    k = len(cover)
    for size in range(1, k + 1):
        for index_set in combinations(range(k), size):
            section = cover[index_set[0]]
            for i in index_set[1:]:
                section = section.intersection(cover[i])
            if section.nonempty_components() != len(section.processes):
                raise TopologyError(
                    "closed-above cover intersection lost a component; "
                    "this contradicts Lemma 4.6 + the clique view argument"
                )


def verify_lemma_4_8(g: Digraph) -> bool:
    """Machine check of Lemma 4.8 on a concrete graph.

    Compares the pseudosphere ``φ(Π; {T ⊇ In_G(p)})`` against the complex
    whose facets are the uninterpreted simplexes of every ``H ∈ ↑G``
    (enumerated — keep ``n`` small).
    """
    from ..graphs.closure import iter_upward_closure
    from .uninterpreted import uninterpreted_simplex

    predicted = closed_above_pseudosphere(g).to_complex()
    enumerated = SimplicialComplex.from_simplices(
        uninterpreted_simplex(h) for h in iter_upward_closure(g)
    )
    return predicted == enumerated


def agreement_impossibility_threshold(complex_: SimplicialComplex) -> float:
    """Largest ``k`` such that ``k``-set agreement is ruled out.

    By [15, Thm 10.3.1], an ``l``-connected protocol complex (for the right
    input sphere) makes ``(l+1)``-set agreement unsolvable; this helper just
    converts a measured connectivity into that threshold: the returned value
    ``k`` means "``k``-set agreement and below are impossible".
    """
    connectivity = homological_connectivity(complex_)
    if connectivity == -2:
        return 0
    return connectivity + 1
