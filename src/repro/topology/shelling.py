"""Shellability of pure complexes (Sec 4.4, Lemma 4.15).

A pure ``d``-complex is *shellable* when its facets admit an order
``φ_1, ..., φ_r`` such that each ``(⋃_{i≤t} φ_i) ∩ φ_{t+1}`` is a pure
``(d-1)``-subcomplex of ``φ_{t+1}``'s boundary.  Shellable complexes are
wedges of ``d``-spheres up to homotopy, which is how the paper's Lemma 4.17
builds high connectivity.

The decision procedure is a depth-first search over facet orderings with
memoisation on the *set* of placed facets (whether a partial order extends
depends only on that set) — exponential in the worst case but fast for the
paper-sized complexes we check (Fig 4, boundaries of simplexes, small
pseudospheres).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..engine.cache import cached_kernel
from ..errors import TopologyError
from .complexes import SimplicialComplex
from .simplex import Simplex, stable_key

__all__ = [
    "is_valid_shelling_step",
    "is_shelling_order",
    "find_shelling_order",
    "is_shellable",
]


def _facet_intersection_faces(
    placed: Sequence[Simplex], new_facet: Simplex
) -> set[Simplex]:
    """Maximal faces of ``(⋃ placed) ∩ new_facet`` (pairwise intersections)."""
    pieces: list[Simplex] = []
    for f in placed:
        common = f.intersection(new_facet)
        if len(common):
            pieces.append(common)
    maximal: set[Simplex] = set()
    for p in pieces:
        if not any(p is not q and p.is_face_of(q) for q in pieces):
            maximal.add(p)
    return maximal


def is_valid_shelling_step(placed: Sequence[Simplex], new_facet: Simplex) -> bool:
    """Can ``new_facet`` extend a partial shelling of ``placed``?

    Requires ``(⋃ placed) ∩ new_facet`` to be non-empty, pure of dimension
    ``dim(new_facet) - 1``.  With no placed facets the step is trivially
    valid.
    """
    if not placed:
        return True
    maximal = _facet_intersection_faces(placed, new_facet)
    if not maximal:
        return False
    want = new_facet.dimension - 1
    return all(m.dimension == want for m in maximal)


def is_shelling_order(facets: Sequence[Simplex]) -> bool:
    """Check a full candidate order (Def of shellability, Sec 4.4)."""
    for t in range(1, len(facets)):
        if not is_valid_shelling_step(facets[:t], facets[t]):
            return False
    return True


def find_shelling_order(
    complex_: SimplicialComplex,
) -> list[Simplex] | None:
    """A shelling order of the complex, or None if it is not shellable.

    Raises :class:`TopologyError` on non-pure complexes (the paper only
    defines shellability for pure ones).  The search itself is memoized
    per complex (kernel ``shelling_order``) — including a stored ``None``
    for non-shellable complexes — so repeated checks and cross-process
    reruns skip the exponential DFS; a fresh list is returned each call.
    """
    if complex_.is_empty():
        return []
    if not complex_.is_pure():
        raise TopologyError("shellability is defined for pure complexes only")
    order = _shelling_order(complex_)
    return None if order is None else list(order)


@cached_kernel(
    name="shelling_order",
    key=lambda complex_: complex_,
    version="1",
)
def _shelling_order(
    complex_: SimplicialComplex,
) -> tuple[Simplex, ...] | None:
    """DFS core of :func:`find_shelling_order` on a pure, non-empty complex."""
    facets = sorted(complex_.facets, key=lambda s: stable_key(s.vertices))
    order: list[Simplex] = []
    dead: set[frozenset[Simplex]] = set()

    def extend(remaining: set[Simplex]) -> bool:
        if not remaining:
            return True
        key = frozenset(remaining)
        if key in dead:
            return False
        for f in sorted(remaining, key=lambda s: stable_key(s.vertices)):
            if is_valid_shelling_step(order, f):
                order.append(f)
                remaining.remove(f)
                if extend(remaining):
                    return True
                remaining.add(f)
                order.pop()
        dead.add(key)
        return False

    if extend(set(facets)):
        return tuple(order)
    return None


def is_shellable(complex_: SimplicialComplex) -> bool:
    """True iff the pure complex admits a shelling order."""
    return find_shelling_order(complex_) is not None
