"""Nerve complexes of covers (Def 4.10) and the nerve lemma (Lemma 4.11).

The nerve of a cover ``(C_i)`` has one vertex per cover element and a simplex
for every index set whose elements intersect non-trivially.  The nerve lemma
transfers connectivity between a complex and the nerve of a "nice" cover —
the paper's main tool for computing the connectivity of unions of
pseudospheres (Thm 4.12, Lemma 4.17).
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

from ..errors import TopologyError
from .complexes import SimplicialComplex
from .homology import is_homologically_k_connected
from .simplex import Simplex

__all__ = [
    "nerve_complex",
    "is_cover",
    "nerve_lemma_hypothesis_holds",
    "nerve_lemma_transfer",
]


def nerve_complex(cover: Sequence[SimplicialComplex]) -> SimplicialComplex:
    """The nerve ``N(C_i | I)`` of a cover (Def 4.10).

    Vertices are the cover indices ``0..len(cover)-1`` colored by themselves;
    ``J`` spans a simplex iff ``⋂_{i∈J} C_i ≠ ∅``.  Computing all ``2^|I|``
    intersections is exponential — covers here are small (one element per
    generator graph).
    """
    if not cover:
        raise TopologyError("a nerve needs a non-empty cover")
    simplices: list[Simplex] = []
    for size in range(1, len(cover) + 1):
        found_at_size = False
        for index_set in combinations(range(len(cover)), size):
            section = cover[index_set[0]]
            for i in index_set[1:]:
                section = section.intersection(cover[i])
                if section.is_empty():
                    break
            if not section.is_empty():
                simplices.append(Simplex((i, i) for i in index_set))
                found_at_size = True
        if not found_at_size:
            break  # larger intersections are subsets of some empty one
    return SimplicialComplex.from_simplices(simplices)


def is_cover(complex_: SimplicialComplex, cover: Sequence[SimplicialComplex]) -> bool:
    """True iff the union of the cover elements equals the complex."""
    if not cover:
        return complex_.is_empty()
    union = cover[0]
    for c in cover[1:]:
        union = union.union(c)
    return union == complex_


def nerve_lemma_hypothesis_holds(
    cover: Sequence[SimplicialComplex], k: int, field: str = "gf2"
) -> bool:
    """Check Lemma 4.11's hypothesis (homologically).

    Every non-empty intersection ``⋂_{i∈J} C_i`` must be
    ``(k - |J| + 1)``-connected.  Connectivity is verified homologically —
    see module docstring of :mod:`repro.topology.homology` for the caveat.
    """
    for size in range(1, len(cover) + 1):
        required = k - size + 1
        for index_set in combinations(range(len(cover)), size):
            section = cover[index_set[0]]
            for i in index_set[1:]:
                section = section.intersection(cover[i])
            if section.is_empty():
                continue
            if not is_homologically_k_connected(section, required, field):
                return False
    return True


def nerve_lemma_transfer(
    cover: Sequence[SimplicialComplex], k: int, field: str = "gf2"
) -> bool | None:
    """Apply the nerve lemma: is the union ``k``-connected?

    Returns the nerve's ``k``-connectivity verdict when the hypothesis holds,
    or None when the hypothesis fails (the lemma is silent then).
    """
    if not nerve_lemma_hypothesis_holds(cover, k, field):
        return None
    nerve = nerve_complex(cover)
    return is_homologically_k_connected(nerve, k, field)
