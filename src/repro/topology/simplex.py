"""Colored simplexes (Def 4.1).

A simplex is a set of *(color, view)* vertices with at most one view per
color.  Colors are process ids in this library; views are arbitrary hashable
payloads — bitmask-like ``frozenset[int]`` for uninterpreted views, or
``frozenset[(process, value)]`` pairs for interpreted ones.

Vertices have no intrinsic order; homology code orders them through
:func:`stable_key`, a deterministic recursive canonicalisation that works for
the nested frozensets/tuples our views are made of.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from itertools import combinations

from ..errors import TopologyError

__all__ = ["Vertex", "Simplex", "stable_key"]

Vertex = tuple[Hashable, Hashable]  # (color, view)


def stable_key(obj: Hashable):
    """A deterministic, order-defining key for nested hashable payloads.

    Handles ints, strings, None, tuples, and (frozen)sets recursively; mixed
    types are separated by type name so comparisons never fail.
    """
    if isinstance(obj, (frozenset, set)):
        inner = sorted((stable_key(x) for x in obj))
        return ("set", tuple(inner))
    if isinstance(obj, tuple):
        return ("tuple", tuple(stable_key(x) for x in obj))
    return (type(obj).__name__, obj)


class Simplex:
    """An immutable colored simplex: a chromatic set of (color, view) pairs.

    >>> s = Simplex([(0, "a"), (1, "b")])
    >>> s.dimension
    1
    >>> sorted(s.colors())
    [0, 1]
    """

    __slots__ = ("_vertices", "_by_color", "_hash")

    def __init__(self, vertices: Iterable[Vertex]):
        vs = frozenset(vertices)
        by_color: dict[Hashable, Hashable] = {}
        for color, view in vs:
            if color in by_color:
                raise TopologyError(
                    f"simplex is not chromatic: color {color!r} appears twice"
                )
            by_color[color] = view
        self._vertices = vs
        self._by_color = by_color
        self._hash = hash(vs)

    @classmethod
    def empty(cls) -> "Simplex":
        """The empty simplex (dimension -1)."""
        return cls(())

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> frozenset[Vertex]:
        """The vertex set."""
        return self._vertices

    @property
    def dimension(self) -> int:
        """``|σ| - 1``; the empty simplex has dimension -1."""
        return len(self._vertices) - 1

    def colors(self) -> frozenset:
        """The set of colors (process names) appearing in the simplex."""
        return frozenset(self._by_color)

    def views(self) -> frozenset:
        """The set of views appearing in the simplex."""
        return frozenset(self._by_color.values())

    def view_of(self, color) -> Hashable:
        """The view of the given color; raises if the color is absent."""
        try:
            return self._by_color[color]
        except KeyError:
            raise TopologyError(f"color {color!r} not in simplex") from None

    def has_color(self, color) -> bool:
        """Return True iff the simplex has a vertex of the given color."""
        return color in self._by_color

    # ------------------------------------------------------------------
    def faces(self, dimension: int | None = None) -> Iterator["Simplex"]:
        """All faces, or only those of a given dimension (``-1`` = empty)."""
        if dimension is None:
            for size in range(len(self._vertices) + 1):
                for combo in combinations(self._sorted_vertices(), size):
                    yield Simplex(combo)
            return
        size = dimension + 1
        if size < 0 or size > len(self._vertices):
            return
        for combo in combinations(self._sorted_vertices(), size):
            yield Simplex(combo)

    def boundary(self) -> Iterator["Simplex"]:
        """The codimension-1 faces."""
        yield from self.faces(self.dimension - 1)

    def is_face_of(self, other: "Simplex") -> bool:
        """Return True iff every vertex of self is a vertex of ``other``."""
        return self._vertices <= other._vertices

    def intersection(self, other: "Simplex") -> "Simplex":
        """The common face."""
        return Simplex(self._vertices & other._vertices)

    def union(self, other: "Simplex") -> "Simplex":
        """The join-as-a-set; raises if the result is not chromatic."""
        return Simplex(self._vertices | other._vertices)

    def without_color(self, color) -> "Simplex":
        """The face obtained by dropping the vertex of the given color."""
        return Simplex(v for v in self._vertices if v[0] != color)

    def _sorted_vertices(self) -> list[Vertex]:
        return sorted(self._vertices, key=stable_key)

    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._sorted_vertices())

    def __len__(self) -> int:
        return len(self._vertices)

    def __le__(self, other: "Simplex") -> bool:
        return self.is_face_of(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Simplex):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"({c!r}, {v!r})" for c, v in self._sorted_vertices())
        return f"Simplex([{inner}])"
