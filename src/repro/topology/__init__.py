"""Combinatorial topology toolkit (Sec 4 of the paper).

Simplexes and complexes (Defs 4.1/4.2), pseudospheres (Def 4.5, Lemmas
4.6/4.7), homology-based connectivity measurement, nerves (Def 4.10, Lemma
4.11), shellability (Sec 4.4), uninterpreted complexes of graphs and models
(Defs 4.3/4.4, Lemma 4.8) and their interpretation over inputs (Defs
4.13/4.14) — the one-round protocol complexes of oblivious algorithms.
"""

from .complexes import SimplicialComplex
from .connectivity import (
    agreement_impossibility_threshold,
    connectivity_of_closed_above,
    predicted_closed_above_connectivity,
    verify_lemma_4_8,
)
from .homology import (
    betti_numbers,
    boundary_matrix_gf2,
    homological_connectivity,
    is_homologically_k_connected,
    rank_gf2,
    reduced_betti_numbers,
)
from .interpretation import (
    graph_interpretation_complex,
    input_complex,
    input_pseudosphere,
    interpret_complex,
    interpret_simplex,
    one_round_protocol_complex,
)
from .nerve import (
    is_cover,
    nerve_complex,
    nerve_lemma_hypothesis_holds,
    nerve_lemma_transfer,
)
from .pseudosphere import Pseudosphere, predicted_connectivity, pseudosphere_complex
from .shelling import (
    find_shelling_order,
    is_shellable,
    is_shelling_order,
    is_valid_shelling_step,
)
from .simplex import Simplex, Vertex, stable_key
from .uninterpreted import (
    closed_above_pseudosphere,
    closed_above_pseudosphere_cover,
    uninterpreted_complex_of_closed_above,
    uninterpreted_complex_of_graphs,
    uninterpreted_simplex,
)

__all__ = [
    "SimplicialComplex",
    "Simplex",
    "Vertex",
    "stable_key",
    "Pseudosphere",
    "predicted_connectivity",
    "pseudosphere_complex",
    "betti_numbers",
    "boundary_matrix_gf2",
    "homological_connectivity",
    "is_homologically_k_connected",
    "rank_gf2",
    "reduced_betti_numbers",
    "is_cover",
    "nerve_complex",
    "nerve_lemma_hypothesis_holds",
    "nerve_lemma_transfer",
    "find_shelling_order",
    "is_shellable",
    "is_shelling_order",
    "is_valid_shelling_step",
    "closed_above_pseudosphere",
    "closed_above_pseudosphere_cover",
    "uninterpreted_complex_of_closed_above",
    "uninterpreted_complex_of_graphs",
    "uninterpreted_simplex",
    "graph_interpretation_complex",
    "input_complex",
    "input_pseudosphere",
    "interpret_complex",
    "interpret_simplex",
    "one_round_protocol_complex",
    "agreement_impossibility_threshold",
    "connectivity_of_closed_above",
    "predicted_closed_above_connectivity",
    "verify_lemma_4_8",
]
