"""Interpretation of uninterpreted complexes on inputs (Defs 4.13, 4.14).

An uninterpreted view (who I heard) turns into an *interpreted* oblivious
view (which ``(process, value)`` pairs I know) once an input simplex assigns
initial values.  The interpretation of the model's uninterpreted complex on
an input complex is exactly the one-round protocol complex of an oblivious
algorithm — the object Thm 5.4's connectivity argument runs on.

Interpreted views are ``frozenset[(process, value)]``; the input complexes
are pseudospheres ``Ψ(Π, values)`` (every process independently picks any
value) or sub-complexes thereof.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from ..errors import TopologyError
from ..graphs.digraph import Digraph
from .complexes import SimplicialComplex
from .pseudosphere import Pseudosphere
from .simplex import Simplex
from .uninterpreted import uninterpreted_simplex

__all__ = [
    "input_pseudosphere",
    "input_complex",
    "interpret_simplex",
    "interpret_complex",
    "one_round_protocol_complex",
    "graph_interpretation_complex",
]


def input_pseudosphere(n: int, values: Iterable[Hashable]) -> Pseudosphere:
    """``Ψ(Π, V)``: every process holds any value of ``V`` independently."""
    values = frozenset(values)
    if not values:
        raise TopologyError("need at least one input value")
    return Pseudosphere.uniform(tuple(range(n)), values)


def input_complex(n: int, values: Iterable[Hashable]) -> SimplicialComplex:
    """Materialised input pseudosphere."""
    return input_pseudosphere(n, values).to_complex()


def interpret_simplex(uninterpreted: Simplex, inputs: Simplex) -> Simplex:
    """``σ(τ)`` (Def 4.13): pair every heard process with its input value.

    ``uninterpreted`` has views ``frozenset[int]`` (heard processes);
    ``inputs`` colors every process of those views with an input value.  The
    result colors each process with the *oblivious* view
    ``{(q, value_q) | q heard}``.
    """
    vertices = []
    for process, heard in uninterpreted.vertices:
        if not isinstance(heard, frozenset):
            raise TopologyError(
                f"uninterpreted view of {process!r} must be a frozenset of "
                f"process ids, got {heard!r}"
            )
        view = frozenset((q, inputs.view_of(q)) for q in heard)
        vertices.append((process, view))
    return Simplex(vertices)


def interpret_complex(
    uninterpreted: SimplicialComplex, inputs: SimplicialComplex
) -> SimplicialComplex:
    """``A(I)`` (Def 4.14): union of facet-by-facet interpretations."""
    interpreted = []
    for tau in inputs.facets:
        for sigma in uninterpreted.facets:
            interpreted.append(interpret_simplex(sigma, tau))
    return SimplicialComplex.from_simplices(interpreted)


def graph_interpretation_complex(
    g: Digraph, inputs: SimplicialComplex
) -> SimplicialComplex:
    """``C_G(I)``: interpretation of a single graph on an input complex.

    This is the per-graph building block ``C_G(σ)`` of the Thm 5.4 proof.
    """
    sigma = uninterpreted_simplex(g)
    return SimplicialComplex.from_simplices(
        interpret_simplex(sigma, tau) for tau in inputs.facets
    )


def one_round_protocol_complex(
    graphs: Sequence[Digraph], inputs: SimplicialComplex
) -> SimplicialComplex:
    """One-round protocol complex of an oblivious model over given inputs.

    The model is given by the explicit set of allowed graphs (for
    closed-above models pass the generators *and* whatever supersets the
    analysis needs, or use the pseudosphere route of
    :mod:`repro.topology.uninterpreted` for the full ``↑S``).
    """
    if not graphs:
        raise TopologyError("need at least one graph")
    pieces = []
    for g in graphs:
        sigma = uninterpreted_simplex(g)
        for tau in inputs.facets:
            pieces.append(interpret_simplex(sigma, tau))
    return SimplicialComplex.from_simplices(pieces)
