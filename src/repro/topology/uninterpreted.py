"""Uninterpreted simplexes and complexes of graphs and models (Defs 4.3, 4.4).

The uninterpreted simplex of a graph ``G`` records who heard whom in a round
using ``G``: process ``p``'s view is ``In_G(p)`` (a ``frozenset`` of process
ids).  The uninterpreted complex of an oblivious model has one facet per
allowed graph.

For a *simple closed-above* model ``↑G`` the complex is exactly the
pseudosphere ``φ(Π; {T | In_G(p) ⊆ T ⊆ Π})`` (Lemma 4.8) — we build it
symbolically through :class:`~repro.topology.pseudosphere.Pseudosphere`
without enumerating ``↑G``.  General closed-above models give unions of such
pseudospheres, one per generator (proof of Thm 4.12).
"""

from __future__ import annotations

from collections.abc import Iterable

from .._bitops import bits_tuple, full_mask, iter_supersets
from ..errors import TopologyError
from ..graphs.digraph import Digraph
from .complexes import SimplicialComplex
from .pseudosphere import Pseudosphere
from .simplex import Simplex

__all__ = [
    "uninterpreted_simplex",
    "uninterpreted_complex_of_graphs",
    "closed_above_pseudosphere",
    "uninterpreted_complex_of_closed_above",
    "closed_above_pseudosphere_cover",
]


def uninterpreted_simplex(g: Digraph) -> Simplex:
    """``σ_G = {(p, In_G(p)) | p ∈ Π}`` (Def 4.3)."""
    return Simplex(
        (p, frozenset(bits_tuple(g.in_mask(p)))) for p in g.processes()
    )


def uninterpreted_complex_of_graphs(graphs: Iterable[Digraph]) -> SimplicialComplex:
    """Uninterpreted complex of an oblivious model given explicitly (Def 4.4).

    Facets are the uninterpreted simplexes of the allowed graphs.
    """
    graphs = tuple(graphs)
    if not graphs:
        raise TopologyError("an oblivious model needs at least one graph")
    return SimplicialComplex.from_simplices(
        uninterpreted_simplex(g) for g in graphs
    )


def closed_above_pseudosphere(g: Digraph) -> Pseudosphere:
    """The symbolic pseudosphere of ``↑G`` (Lemma 4.8).

    Process ``p`` may see any view ``T`` with ``In_G(p) ⊆ T ⊆ Π``.
    """
    universe = full_mask(g.n)
    views = {
        p: frozenset(
            frozenset(bits_tuple(t))
            for t in iter_supersets(g.in_mask(p), universe)
        )
        for p in g.processes()
    }
    return Pseudosphere(views)


def closed_above_pseudosphere_cover(
    generators: Iterable[Digraph],
) -> list[Pseudosphere]:
    """One pseudosphere per generator — the cover used in Thm 4.12's proof."""
    generators = tuple(generators)
    if not generators:
        raise TopologyError("a closed-above model needs at least one generator")
    return [closed_above_pseudosphere(g) for g in generators]


def uninterpreted_complex_of_closed_above(
    generators: Iterable[Digraph],
) -> SimplicialComplex:
    """Materialised uninterpreted complex of a closed-above model.

    The union of the generator pseudospheres; exponential in the number of
    missing edges, so intended for the small ``n`` of the experiments
    (``n ≤ 4`` comfortably, sparse ``n = 5`` at a stretch).
    """
    cover = closed_above_pseudosphere_cover(generators)
    result = cover[0].to_complex()
    for ps in cover[1:]:
        result = result.union(ps.to_complex())
    return result
