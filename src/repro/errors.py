"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "ProcessMismatchError",
    "ModelError",
    "TopologyError",
    "AlgorithmError",
    "VerificationError",
    "EngineError",
    "StoreError",
    "DistError",
    "ConfigError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class ProcessMismatchError(GraphError):
    """Raised when combining objects defined over different process sets."""


class ModelError(ReproError):
    """Raised for malformed communication models."""


class TopologyError(ReproError):
    """Raised for malformed simplexes/complexes or invalid topology ops."""


class AlgorithmError(ReproError):
    """Raised when an algorithm is run outside its contract."""


class VerificationError(ReproError):
    """Raised when a verification harness is misused."""


class EngineError(ReproError):
    """Raised by the compute engine (cache misuse, failed batch jobs)."""


class StoreError(ReproError):
    """Raised by the persistent result store (misuse, unwritable mode)."""


class DistError(EngineError):
    """Raised by the distributed executor (connection/handshake failures)."""


class ConfigError(ReproError):
    """Raised for invalid run-configuration values (:mod:`repro.config`)."""
