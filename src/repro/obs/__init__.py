"""repro.obs — unified tracing + metrics for every execution tier.

One import surface for the three observability pieces:

* :func:`span` / :func:`instant` / :data:`TRACER` — the structured
  tracing hot path (:mod:`repro.obs.trace`).  Disabled by default;
  enable with ``REPRO_TRACE=FILE``, ``--trace FILE`` on the CLIs, or
  :func:`configure_trace`.
* :data:`METRICS` — the process-global :class:`MetricsRegistry`
  (:mod:`repro.obs.metrics`).  The kernel cache, result store, and
  dist coordinator register their stats surfaces here so every
  ``--json`` output shares one shape.
* :func:`write_trace` / :func:`load_trace` / :func:`summarize_trace` —
  Chrome ``trace_event`` export and the offline aggregator behind
  ``python -m repro trace summary`` (:mod:`repro.obs.export`).

This module imports only the stdlib at module scope: the instrumented
layers (``engine.cache``, ``store.backend``, ``dist.*``) import *us*,
so the default stats providers below bind their imports lazily inside
the provider closures.
"""

from __future__ import annotations

import atexit
import os

from .trace import (
    TRACER,
    Tracer,
    TraceSpan,
    estimate_clock_offset,
    instant,
    span,
)
from .metrics import METRICS, Counter, Histogram, MetricsRegistry
from .export import (
    describe_summary,
    load_trace,
    summarize_events,
    summarize_trace,
    write_chrome_trace,
)

__all__ = [
    "TRACER",
    "Tracer",
    "TraceSpan",
    "span",
    "instant",
    "estimate_clock_offset",
    "METRICS",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "configure_trace",
    "trace_enabled",
    "write_trace",
    "write_chrome_trace",
    "load_trace",
    "summarize_trace",
    "summarize_events",
    "describe_summary",
]

#: Pid that called :func:`configure_trace` (or imported this module with
#: ``REPRO_TRACE`` set) — only that process may auto-export at exit, so
#: forked pool workers inheriting the atexit hook never race the parent
#: for the trace file (the single-writer invariant).
_owner_pid = os.getpid() if TRACER.enabled else None

#: Events already exported to the configured path.  Exports drain the
#: tracer, but atexit hooks registered by *other* layers (the store's
#: final flush) may record spans after an explicit :func:`write_trace`;
#: the exit-time re-export must extend the file's contents, not clobber
#: them with just the stragglers.
_exported: list = []


def configure_trace(path: str | None, *, enabled: bool = True) -> None:
    """Enable (or disable) tracing in this process, exporting to *path*.

    The calling process becomes the trace-file owner: it is the only
    one whose exit hook writes the file.  Workers never call this —
    they are switched on remotely (handshake flag) or inherit the
    enabled flag across ``fork`` and only ever buffer + ship.
    """
    global _owner_pid
    TRACER.enabled = enabled
    TRACER.path = path
    _owner_pid = os.getpid() if enabled else None
    _exported.clear()


def trace_enabled() -> bool:
    return TRACER.enabled


def write_trace(path: str | None = None) -> int:
    """Drain the tracer's buffer into the Chrome trace file.

    Uses the configured path when *path* is ``None``; returns the
    number of events now in the file (0 if tracing is off or no path is
    set — never raises for "nothing to do", so callers can invoke it
    unconditionally after a run).  Repeated writes to the configured
    path are cumulative: each rewrites the file with everything drained
    so far, so a late span recorded by another layer's exit hook extends
    the trace instead of replacing it.
    """
    target = path or TRACER.path
    if not target:
        return 0
    events = TRACER.drain()
    if path is None or path == TRACER.path:
        _exported.extend(events)
        return write_chrome_trace(target, _exported)
    return write_chrome_trace(target, events)


@atexit.register
def _export_at_exit() -> None:
    # Belt and braces for ``REPRO_TRACE=FILE python -m repro ...`` runs
    # that never reach an explicit write_trace (crash, early exit).  The
    # pid guard keeps forked children from clobbering the parent's file,
    # and an empty buffer (already exported, or a worker that shipped
    # everything home) writes nothing.
    if (
        TRACER.enabled
        and TRACER.path
        and os.getpid() == _owner_pid
        and TRACER.snapshot()
    ):
        try:
            write_trace()
        except OSError:
            pass


def _register_default_providers() -> None:
    # Lazy imports inside the closures: obs must stay import-light
    # because the layers being observed import obs at their own import.
    def _cache_stats() -> dict:
        from ..engine.cache import KERNEL_CACHE

        return KERNEL_CACHE.stats().as_dict()

    def _store_stats() -> dict:
        # The global store's session stats exist whether or not
        # persistence is on (mode "off" just reports zeros).
        from .. import store

        return store.RESULT_STORE.stats().as_dict()

    METRICS.register_stats("cache", _cache_stats)
    METRICS.register_stats("store", _store_stats)


_register_default_providers()
